"""Regenerate the mobility extension — PDR and discovery traffic vs speed.

Extension beyond the reconstructed paper figures: random-waypoint motion
breaks links, so delivery declines and route-repair traffic rises with
speed for every scheme.
"""

from repro.experiments.figures import ext_mobility

from benchmarks.conftest import regenerate


def bench_ext_mobility(benchmark):
    result = regenerate(benchmark, ext_mobility)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    static, fastest = result.rows[0], result.rows[-1]
    for proto in ("aodv", "nlr"):
        pdr = header_idx[f"{proto}_pdr"]
        assert static[pdr] > 0.9, f"{proto} lossy even when static"
        assert fastest[pdr] < static[pdr] + 1e-9, f"{proto} unaffected by motion"
    # Motion must raise AODV's discovery traffic (repairs after breaks).
    rreq = header_idx["aodv_rreq"]
    assert fastest[rreq] > static[rreq]
