"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_<figure>`` file regenerates exactly one table/figure of the
reconstructed evaluation (DESIGN.md §3).  The heavy sweeps are cached on
disk by :mod:`repro.experiments.cache`, so the first run pays the full
simulation cost and subsequent runs re-render from cache; either way the
rendered table is attached to the benchmark record via ``extra_info`` and
printed, so ``pytest benchmarks/ --benchmark-only`` reproduces the
evaluation tables end to end.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.figures import FigureResult


def regenerate(benchmark, figure_fn: Callable[[bool], FigureResult]) -> FigureResult:
    """Run one figure function under the benchmark harness (single round)."""
    result: FigureResult = benchmark.pedantic(
        figure_fn, kwargs={"quick": True}, rounds=1, iterations=1
    )
    rendered = result.render()
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["table"] = rendered
    print()
    print(rendered)
    assert result.rows, f"{result.name} produced no rows"
    return result
