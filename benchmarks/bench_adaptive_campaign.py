#!/usr/bin/env python
"""Adaptive campaign fabric benchmark → ``BENCH_pr8.json``.

Three claims of the campaign fabric, measured and gated:

1. **Sequential-CI early stopping saves replicate-seconds.**  A fig6-style
   protocol × load sweep runs twice from scratch: once at the full fixed
   seed budget, once under an :class:`~repro.exec.AdaptivePolicy`
   (``pdr`` half-width target).  Gate: the adaptive arm spends ≥ 30 %
   fewer replicate-seconds, and every cell's adaptively-stopped mean lies
   within the *declared* half-width of the full-budget mean (the adaptive
   runs are a seed-ladder prefix of the full ladder, so this is a direct
   accuracy audit, not a statistical hope).

2. **The warm work-stealing pool amortises worker startup.**  A burst of
   small campaigns — the replicate-wave / DSE-generation shape — runs on
   the fresh-pool backend (one pool construction + teardown per campaign)
   and on the persistent warm pool, twice: cold (its one-time spawn
   charged inside the window) and steady-state (workers already up, the
   sustained regime of a long sweep session).  Both speedups are
   recorded; on multi-core machines steady-state must exceed 1.05×.

3. **``--no-adaptive --backend pool`` stays byte-identical.**  The sweep's
   fixed-budget aggregate through the pool backend must equal the serial
   reference bit for bit.

The record deliberately does *not* use the ``baseline.py`` schema: its
sections are campaign-shaped, and keeping the schema distinct stops
``baseline.py``/``compare.py`` from auto-diffing against it.

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive_campaign.py
        [--quick] [--check] [--out DIR] [--rev LABEL]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.stats import mean_ci
from repro.exec import (
    AdaptivePolicy,
    ExecPolicy,
    run_adaptive_cells,
    run_configs,
    shutdown_shared_pools,
)
from repro.experiments.scenario import ScenarioConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "adaptive-campaign-1"

#: The declared precision contract the savings are bought against.
POLICY = AdaptivePolicy(metric="pdr", ci_halfwidth=0.02, min_reps=3, wave=2)


def _cpu_model() -> str:
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if line.startswith("model name"):
                return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "local"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# --------------------------------------------------------------------- #
# 1. Adaptive sweep vs full budget
# --------------------------------------------------------------------- #
def _sweep_cells(quick: bool) -> list[tuple[str, ScenarioConfig]]:
    """Fig6-flavoured protocol × offered-load grid (batched kernel on)."""
    base = ScenarioConfig(
        grid_nx=4, grid_ny=4, spacing_m=230.0, n_flows=6,
        flow_pattern="gateway", n_gateways=2,
        sim_time_s=8.0 if quick else 15.0, warmup_s=2.0, seed=500,
        batched_kernel=True,
    )
    rates = (20.0, 45.0) if quick else (20.0, 35.0, 45.0, 70.0)
    return [
        (f"{proto}@{rate:g}pps",
         replace(base, protocol=proto, flow_rate_pps=rate))
        for proto in ("aodv", "nlr")
        for rate in rates
    ]


def bench_adaptive_sweep(quick: bool) -> dict:
    cells = _sweep_cells(quick)
    budget = 6 if quick else 10
    # checkpoint=False keeps both arms honest: identical configs must not
    # serve each other's runs from the content-addressed cell store.
    policy = ExecPolicy(workers=1, checkpoint=False)

    full: dict[str, list] = {}
    t0 = time.perf_counter()
    for key, config in cells:
        configs = [replace(config, seed=config.seed + k) for k in range(budget)]
        full[key] = run_configs(f"bench-full-{key}", configs, policy)
    full_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = run_adaptive_cells(
        "bench-adaptive", cells, n_budget=budget, adaptive=POLICY,
        policy=policy,
    )
    adaptive_wall = time.perf_counter() - t0

    full_secs = sum(r.wallclock_s for runs in full.values() for r in runs)
    adaptive_secs = sum(
        r.wallclock_s for runs in report.results.values() for r in runs
    )
    per_cell = []
    max_dev = 0.0
    for key, _ in cells:
        full_mean = mean_ci([r.as_dict()["pdr"] for r in full[key]]).mean
        used = report.results[key]
        adaptive_mean = mean_ci([r.as_dict()["pdr"] for r in used]).mean
        dev = abs(adaptive_mean - full_mean)
        max_dev = max(max_dev, dev)
        per_cell.append({
            "cell": key,
            "n_used": len(used),
            "n_budget": budget,
            "full_mean_pdr": round(full_mean, 6),
            "adaptive_mean_pdr": round(adaptive_mean, 6),
            "abs_deviation": round(dev, 6),
        })
    return {
        "policy": POLICY.describe(),
        "declared_halfwidth": POLICY.ci_halfwidth,
        "cells": len(cells),
        "budget_per_cell": budget,
        "full_replicates": budget * len(cells),
        "adaptive_replicates": report.replicates_used,
        "full_replicate_seconds": round(full_secs, 3),
        "adaptive_replicate_seconds": round(adaptive_secs, 3),
        "full_wall_s": round(full_wall, 3),
        "adaptive_wall_s": round(adaptive_wall, 3),
        "saved_replicate_seconds_fraction": round(
            1.0 - adaptive_secs / full_secs, 4),
        "saved_replicates_fraction": round(
            1.0 - report.replicates_used / (budget * len(cells)), 4),
        "max_mean_deviation": round(max_dev, 6),
        "waves": report.waves,
        "per_cell": per_cell,
        "decisions": [d.to_dict() for d in report.decisions],
    }


# --------------------------------------------------------------------- #
# 2. Warm pool vs fresh pool on a burst of small campaigns
# --------------------------------------------------------------------- #
def bench_warm_pool(quick: bool, workers: int) -> dict:
    n_campaigns = 4 if quick else 6
    base = ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=3.0, warmup_s=1.0, seed=700, batched_kernel=True,
    )
    bursts = [
        [replace(base, seed=base.seed + 10 * c + k) for k in range(workers)]
        for c in range(n_campaigns)
    ]

    def run_burst(backend: str) -> float:
        t0 = time.perf_counter()
        for c, configs in enumerate(bursts):
            run_configs(
                f"bench-{backend}-{c}", configs,
                ExecPolicy(workers=workers, backend=backend,
                           checkpoint=False),
            )
        return time.perf_counter() - t0

    pool_wall = run_burst("pool")
    shutdown_shared_pools()  # cold arm pays its one spawn in-window
    cold_wall = run_burst("warm")
    steady_wall = run_burst("warm")  # workers already up from cold arm
    shutdown_shared_pools()
    return {
        "campaigns": n_campaigns,
        "cells_per_campaign": workers,
        "workers": workers,
        "pool_wall_s": round(pool_wall, 3),
        "warm_cold_wall_s": round(cold_wall, 3),
        "warm_steady_wall_s": round(steady_wall, 3),
        "cold_speedup": round(pool_wall / cold_wall, 3),
        "steady_speedup": round(pool_wall / steady_wall, 3),
    }


# --------------------------------------------------------------------- #
# 3. Fixed-budget byte-identity through the pool backend
# --------------------------------------------------------------------- #
def bench_identity(quick: bool, workers: int) -> dict:
    cells = _sweep_cells(quick)
    configs = [replace(c, seed=c.seed + k) for _, c in cells for k in (0, 1)]
    serial = run_configs(
        "bench-ident-serial", configs, ExecPolicy(checkpoint=False)
    )
    pool = run_configs(
        "bench-ident-pool", configs,
        ExecPolicy(workers=workers, backend="pool", checkpoint=False),
    )
    a = json.dumps([r.as_dict() for r in serial], sort_keys=True)
    b = json.dumps([r.as_dict() for r in pool], sort_keys=True)
    return {"cells": len(configs), "pool_matches_serial": a == b}


# --------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller sweep (CI mode)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 if any gate fails")
    ap.add_argument("--rev", default=None, help="label (default: git rev)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT,
                    help="directory for the record (default: repo root)")
    ap.add_argument("--name", default="BENCH_pr8.json",
                    help="record file name")
    args = ap.parse_args(argv)

    cores = _available_cores()
    workers = min(4, max(2, cores))
    print(f"adaptive campaign benchmark: quick={args.quick} "
          f"workers={workers} ({cores} cores visible)")

    print("  [1/3] adaptive sweep vs full budget ...", flush=True)
    sweep = bench_adaptive_sweep(args.quick)
    print(f"        {sweep['adaptive_replicates']}/{sweep['full_replicates']}"
          f" replicates, {sweep['saved_replicate_seconds_fraction']:.0%} "
          f"replicate-seconds saved, max mean deviation "
          f"{sweep['max_mean_deviation']:.4f}")

    print("  [2/3] warm pool vs fresh pool ...", flush=True)
    warm = bench_warm_pool(args.quick, workers)
    print(f"        pool {warm['pool_wall_s']}s vs warm "
          f"{warm['warm_steady_wall_s']}s steady "
          f"({warm['warm_cold_wall_s']}s cold) → "
          f"{warm['steady_speedup']}× steady, "
          f"{warm['cold_speedup']}× cold")

    print("  [3/3] fixed-budget pool byte-identity ...", flush=True)
    identity = bench_identity(args.quick, workers)
    print(f"        identical: {identity['pool_matches_serial']}")

    record = {
        "schema": SCHEMA,
        "rev": args.rev or _git_rev(),
        "quick": args.quick,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "cpu": _cpu_model(),
        "cores": cores,
        "sweep": sweep,
        "warm_pool": warm,
        "identity": identity,
        "derived": {
            "replicate_seconds_saved": sweep[
                "saved_replicate_seconds_fraction"],
            "warm_pool_steady_speedup": warm["steady_speedup"],
        },
    }
    args.out.mkdir(parents=True, exist_ok=True)
    out_path = args.out / args.name
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    failures: list[str] = []
    if sweep["saved_replicate_seconds_fraction"] < 0.30:
        failures.append(
            f"adaptive stopping saved only "
            f"{sweep['saved_replicate_seconds_fraction']:.0%} "
            "replicate-seconds (< 30% floor)"
        )
    if sweep["max_mean_deviation"] > POLICY.ci_halfwidth:
        failures.append(
            f"adaptive mean drifted {sweep['max_mean_deviation']:.4f} "
            f"from the full-budget mean (> declared "
            f"{POLICY.ci_halfwidth} half-width)"
        )
    if not identity["pool_matches_serial"]:
        failures.append("pool backend aggregate diverged from serial")
    if cores >= 2 and warm["steady_speedup"] < 1.05:
        failures.append(
            f"warm pool steady-state speedup {warm['steady_speedup']}× "
            f"below 1.05× on a {cores}-core machine"
        )
    if failures:
        print("\nGATE FAILURES:")
        for msg in failures:
            print(f"  - {msg}")
        return 1 if args.check else 0
    print("\nall gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
