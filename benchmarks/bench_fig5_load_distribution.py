"""Regenerate Fig 5 — forwarding-load distribution across mesh routers.

Expectation: NLR spreads forwarding over more routers than shortest-hop
AODV at the congested reference point — higher Jain index, lower top-3
concentration.
"""

from repro.experiments.figures import fig5_load_distribution

from benchmarks.conftest import regenerate


def bench_fig5_load_distribution(benchmark):
    result = regenerate(benchmark, fig5_load_distribution)
    by_proto = {row[0]: row for row in result.rows}
    jain_col = result.headers.index("jain_index")
    top3_col = result.headers.index("top3_share")
    assert by_proto["nlr"][jain_col] > by_proto["aodv"][jain_col]
    assert by_proto["nlr"][top3_col] < by_proto["aodv"][top3_col]
