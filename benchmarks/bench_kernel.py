"""Micro-benchmarks of the simulator substrate itself.

These are conventional pytest-benchmark measurements (many rounds) of the
hot paths the figure sweeps stress: event-heap throughput, timer churn,
channel dispatch, a full DCF unicast exchange, and a small end-to-end
scenario per protocol.
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.mac.csma import CsmaMac, MacConfig
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.rng import RandomStreams


def bench_engine_event_throughput(benchmark):
    """Schedule + execute 50k no-op events."""

    def run():
        sim = Simulator()
        fn = lambda: None  # noqa: E731
        for k in range(50_000):
            sim.schedule(k * 1e-6, fn)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 50_000


def bench_engine_cancel_heavy(benchmark):
    """Half the scheduled events are cancelled before running."""

    def run():
        sim = Simulator()
        fn = lambda: None  # noqa: E731
        handles = [sim.schedule(k * 1e-6, fn) for k in range(20_000)]
        for h in handles[::2]:
            h.cancel()
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def bench_timer_restart_churn(benchmark):
    """Restart a timer 20k times (the MAC's dominant timer pattern)."""

    def run():
        sim = Simulator()
        t = Timer(sim, lambda: None)
        for _ in range(20_000):
            t.restart(1.0)
        t.cancel()
        return sim.pending

    benchmark(run)


def bench_engine_schedule_cb_fanout(benchmark):
    """Handle-less fan-out scheduling (the channel's rx event pattern).

    ``schedule_cb`` reuses pooled entry lists and skips handle
    allocation — the scalar-engine micro-fix this rides against the
    plain ``schedule`` fan-out measured by ``bench_engine_event_throughput``.
    """

    def run():
        sim = Simulator()
        fn = lambda: None  # noqa: E731
        for k in range(50_000):
            sim.schedule_cb(k * 1e-6, fn)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 50_000


def bench_engine_block_fanout(benchmark):
    """50k logical events delivered as 1k 50-receiver block events."""

    def run():
        sim = Simulator()
        sim.enable_batching()
        fn = lambda: None  # noqa: E731
        for k in range(1_000):
            sim.schedule_block(k * 1e-6, 50, fn)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 50_000


def bench_channel_dispatch(benchmark):
    """1k broadcast dispatches across a 49-node mesh (cached plan path)."""
    from repro.phy.frame import PhyFrame

    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False)
    rs = RandomStreams(1)
    for i in range(49):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
        ch.register(r, (230.0 * (i % 7), 230.0 * (i // 7)))

    def run():
        for _ in range(1_000):
            frame = PhyFrame(
                payload=None, bits=4096, rate_bps=11e6, preamble_s=192e-6,
                tx_power_w=PhyConfig().tx_power_w, tx_node=24,
            )
            ch.transmit(24, frame)
        # drain the generated rx events
        sim.run()
        return ch.transmissions

    benchmark(run)


def _mesh_channel(nx: int, spacing_m: float, spatial: bool) -> Channel:
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False,
                 spatial_index=spatial)
    rs = RandomStreams(1)
    for i in range(nx * nx):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
        ch.register(r, (spacing_m * (i % nx), spacing_m * (i // nx)))
    return ch


@pytest.mark.parametrize("spatial", [True, False],
                         ids=["spatial", "exhaustive"])
def bench_channel_dispatch_cold_n400(benchmark, spatial):
    """Fresh dispatch plans for all 400 nodes (the post-invalidation cost)."""
    ch = _mesh_channel(20, 300.0, spatial)
    power = PhyConfig().tx_power_w

    def run():
        ch._invalidate_all()
        for tx in range(400):
            ch._dispatch_plan(tx, power)
        return len(ch._dispatch_cache)

    assert benchmark(run) == 400


@pytest.mark.parametrize("spatial", [True, False],
                         ids=["spatial", "exhaustive"])
def bench_channel_dispatch_mobile_n400(benchmark, spatial):
    """One node roams a 400-node mesh; every node re-plans each step.

    The spatial path's incremental invalidation keeps plans outside the
    mover's neighbourhood cached; the exhaustive path rebuilds all 400.
    """
    import numpy as np

    ch = _mesh_channel(20, 300.0, spatial)
    power = PhyConfig().tx_power_w
    rng = np.random.default_rng(5)
    for tx in range(400):
        ch._dispatch_plan(tx, power)

    def run():
        mover = int(rng.integers(400))
        ch.set_position(mover, tuple(rng.uniform(0.0, 300.0 * 19, 2)))
        for tx in range(400):
            ch._dispatch_plan(tx, power)
        return len(ch._dispatch_cache)

    assert benchmark(run) == 400


def bench_dcf_unicast_exchange(benchmark):
    """100 acknowledged unicast frames between two DCF MACs."""

    def run():
        sim = Simulator()
        ch = Channel(sim, TwoRayGround(), propagation_delay=False)
        rs = RandomStreams(2)
        macs = []
        for i, pos in enumerate([(0.0, 0.0), (150.0, 0.0)]):
            radio = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
            ch.register(radio, pos)
            # queue must hold the whole burst (default drop-tail is 50)
            macs.append(
                CsmaMac(
                    sim, radio, MacConfig(queue_capacity=128),
                    rs.stream(f"m{i}"),
                )
            )
        delivered = []
        macs[1].rx_upper_callback = lambda p, s, i: delivered.append(p)
        for k in range(100):
            macs[0].send(k, 1, 512)
        sim.run()
        return len(delivered)

    assert benchmark(run) == 100


@pytest.mark.parametrize("protocol", ["aodv", "nlr", "oracle"])
def bench_small_scenario(benchmark, protocol):
    """End-to-end 3×3 scenario (8 s simulated) per protocol."""
    config = ScenarioConfig(
        protocol=protocol, grid_nx=3, grid_ny=3, n_flows=2,
        flow_rate_pps=5.0, sim_time_s=8.0, warmup_s=1.0, seed=3,
    )

    def run():
        return run_scenario(config).pdr

    pdr = benchmark.pedantic(run, rounds=2, iterations=1)
    assert pdr > 0.9
