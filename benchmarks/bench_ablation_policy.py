"""Regenerate Ablation B — mechanism split of the contribution.

Variants: full NLR; nlr-noprob (load-aware selection only, blind floods);
nlr-noselect (damped floods only, first-reply selection); plain AODV.
Expectation: nlr-noprob pays more RREQ overhead than full NLR (no
damping); each single mechanism keeps part of the benefit.
"""

from repro.experiments.figures import ablation_policy

from benchmarks.conftest import regenerate


def bench_ablation_policy(benchmark):
    result = regenerate(benchmark, ablation_policy)
    by_variant = {row[0]: row for row in result.rows}
    rreq = result.headers.index("rreq_tx")
    pdr = result.headers.index("pdr")
    jain = result.headers.index("jain")
    assert by_variant["nlr-noprob"][rreq] >= by_variant["nlr"][rreq]
    for variant in ("nlr", "nlr-noprob", "nlr-noselect"):
        assert (
            by_variant[variant][pdr] >= by_variant["aodv"][pdr] - 0.05
            or by_variant[variant][jain] >= by_variant["aodv"][jain]
        ), variant
