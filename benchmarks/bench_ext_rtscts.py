"""Regenerate the RTS/CTS extension — handshake cost at the reference point.

With ns-2's 550 m carrier-sense parameterisation no hidden pairs exist
within unicast reach, so the four-way handshake is pure overhead here; the
MAC unit tests cover the shrunk-carrier-sense regime where RTS/CTS earns
its keep.
"""

from repro.experiments.figures import ext_rtscts

from benchmarks.conftest import regenerate


def bench_ext_rtscts(benchmark):
    result = regenerate(benchmark, ext_rtscts)
    by_scheme = {row[0]: row for row in result.rows}
    pdr = result.headers.index("pdr")
    for scheme in ("aodv", "nlr"):
        base = by_scheme[scheme][pdr]
        with_rts = by_scheme[f"{scheme}+rts"][pdr]
        # the handshake must not *improve* things in a hidden-free mesh,
        # beyond replication noise
        assert with_rts <= base + 0.05, scheme
