"""Regenerate Ablation A — which cross-layer load ingredients matter.

Variants: full NLR; queue-signal-only (β=1); busy-ratio-only (β=0);
own-load-only (α=1, no neighbourhood aggregation); plain AODV.
Expectation: every NLR variant delivers at least AODV's level at the
congested reference point, and the full blend is not dominated by either
single-signal variant.
"""

from repro.experiments.figures import ablation_metric

from benchmarks.conftest import regenerate


def bench_ablation_metric(benchmark):
    result = regenerate(benchmark, ablation_metric)
    by_variant = {row[0]: row for row in result.rows}
    pdr = result.headers.index("pdr")
    jain = result.headers.index("jain")
    for variant in ("nlr", "nlr-queue", "nlr-busy", "nlr-own"):
        # No variant may be dominated by AODV: it must hold delivery within
        # noise or beat AODV's load-spreading.
        assert (
            by_variant[variant][pdr] >= by_variant["aodv"][pdr] - 0.05
            or by_variant[variant][jain] >= by_variant["aodv"][jain]
        ), variant
