#!/usr/bin/env python3
"""DSE surrogate-pruning benchmark: evaluations saved vs full factorial.

Screens the bundled NLR tuning slice twice — once evaluating every
factorial cell, once with the ridge surrogate pruning cells predicted
below the quantile — and records how many simulations the surrogate
saved, alongside the invariants that make the saving trustworthy:

* the reported best cell (point, fitness) is identical in both runs;
* the prune log lists as pruned exactly ``design − evaluated`` cells,
  each with ``predicted < threshold``.

The record lands in the repo's perf trajectory as
``BENCH_dse_<rev>[-quick].json``; ``--check`` turns the invariants into
exit-code gates (CI runs ``--quick --check``).

Run:
    python benchmarks/bench_dse_pruning.py --quick --check --out bench-out
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SCHEMA = "repro-bench-dse/1"


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "local"


def build_space():
    from repro.dse import ContinuousDim, ParameterSpace

    # The NLR gossip-curve slice of the bundled example space: enough
    # interaction structure that a degree-2 surrogate has something to
    # learn, small enough that the full factorial stays benchmarkable.
    return ParameterSpace(
        "nlr-prune-bench",
        [
            ContinuousDim("gamma", "nlr.gamma", 0.0, 1.0),
            ContinuousDim("p_min", "nlr.p_min", 0.1, 0.8),
            ContinuousDim("queue_weight", "nlr.queue_weight", 0.0, 1.0),
        ],
    )


def build_base():
    from repro.experiments.scenario import ScenarioConfig

    # Loaded enough that parameter points actually score differently.
    return ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=4,
        flow_rate_pps=20.0, sim_time_s=10.0, warmup_s=2.0, seed=3,
    )


def run_pair(levels: int, quantile: float, scratch: Path) -> dict:
    from repro.dse import ScreenSettings, run_screening

    results = {}
    for mode, settings in (
        ("full", ScreenSettings(levels=levels, surrogate=False, seed=5)),
        ("pruned", ScreenSettings(levels=levels, prune_quantile=quantile,
                                  seed=5)),
    ):
        # Separate cell caches: shared checkpoints would zero the pruned
        # run's simulation count and fake the saving.
        os.environ["REPRO_CACHE_DIR"] = str(scratch / mode)
        t0 = time.perf_counter()
        res = run_screening(build_space(), build_base(), settings)
        results[mode] = {
            "result": res,
            "wall_s": round(time.perf_counter() - t0, 3),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="3 factorial levels instead of 4 (CI mode)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 when a pruning invariant fails")
    ap.add_argument("--quantile", type=float, default=0.25,
                    help="prune quantile (default 0.25)")
    ap.add_argument("--rev", default=None,
                    help="label (default: git short rev)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT,
                    help="directory for BENCH_dse_<rev>.json")
    args = ap.parse_args(argv)

    levels = 3 if args.quick else 4
    rev = args.rev or _git_rev()
    print(f"dse pruning bench: rev={rev} levels={levels} "
          f"quantile={args.quantile}")

    with tempfile.TemporaryDirectory(prefix="bench-dse-") as scratch:
        pair = run_pair(levels, args.quantile, Path(scratch))

    full, pruned = pair["full"]["result"], pair["pruned"]["result"]
    saved = full.simulations_run - pruned.simulations_run
    record = {
        "schema": SCHEMA,
        "rev": rev,
        "quick": args.quick,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "levels": levels,
        "quantile": args.quantile,
        "design_size": full.design_size,
        "simulations_full": full.simulations_run,
        "simulations_pruned_run": pruned.simulations_run,
        "evaluations_pruned": pruned.evaluations_pruned,
        "evaluations_saved": saved,
        "saved_fraction": round(saved / full.simulations_run, 4),
        "wall_s_full": pair["full"]["wall_s"],
        "wall_s_pruned": pair["pruned"]["wall_s"],
        "best_point_full": full.best.point,
        "best_point_pruned": pruned.best.point,
        "best_fitness_full": full.best.fitness,
        "best_fitness_pruned": pruned.best.fitness,
    }

    print(f"  design: {full.design_size} cells")
    print(f"  simulations: full={full.simulations_run} "
          f"pruned-run={pruned.simulations_run} "
          f"(saved {saved}, {record['saved_fraction']:.0%})")
    print(f"  wall: full={record['wall_s_full']}s "
          f"pruned={record['wall_s_pruned']}s")
    print(f"  best fitness: full={full.best.fitness:.6g} "
          f"pruned={pruned.best.fitness:.6g}")

    suffix = "-quick" if args.quick else ""
    out_path = args.out / f"BENCH_dse_{rev}{suffix}.json"
    args.out.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    failures = []
    if pruned.evaluations_pruned == 0:
        failures.append("surrogate pruned nothing — no saving to report")
    if saved != pruned.evaluations_pruned:
        failures.append(
            f"saved {saved} != pruned {pruned.evaluations_pruned} — "
            "a pruned cell was simulated anyway"
        )
    if len(pruned.evaluated) != full.design_size - pruned.evaluations_pruned:
        failures.append("evaluated + pruned does not cover the design")
    for d in pruned.prune_log:
        if d.pruned != (d.predicted < d.threshold):
            failures.append(f"quantile invariant violated at {d.point}")
            break
    if pruned.best.key != full.best.key:
        failures.append(
            f"pruning changed the best cell: {pruned.best.point} "
            f"vs {full.best.point}"
        )
    elif pruned.best.fitness != full.best.fitness:
        failures.append("pruning changed the best cell's fitness")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1 if args.check else 0
    print("all pruning invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
