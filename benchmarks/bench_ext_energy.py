"""Regenerate the energy extension — communication energy and lifetime.

Extension beyond the reconstructed figures: per-node radio energy
metering turns the Fig 5 fairness result into a network-lifetime result
(first-node-death convention).
"""

from repro.experiments.figures import ext_energy

from benchmarks.conftest import regenerate


def bench_ext_energy(benchmark):
    result = regenerate(benchmark, ext_energy)
    by_proto = {row[0]: row for row in result.rows}
    peak = result.headers.index("busiest_node_J")
    jain = result.headers.index("jain_energy")
    lifetime = result.headers.index("lifetime_s")
    # NLR spreads energy: fairer consumption, cooler busiest node, longer
    # first-node-death lifetime than shortest-hop AODV.
    assert by_proto["nlr"][jain] > by_proto["aodv"][jain]
    assert by_proto["nlr"][peak] < by_proto["aodv"][peak]
    assert by_proto["nlr"][lifetime] > by_proto["aodv"][lifetime]
