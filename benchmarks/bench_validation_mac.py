"""Regenerate the MAC validation — simulator vs Bianchi's DCF model.

The credibility check underneath every routing figure: n saturated
stations around one sink, measured aggregate throughput against the
analytical saturation curve.
"""

from repro.experiments.figures import validation_mac

from benchmarks.conftest import regenerate


def bench_validation_mac(benchmark):
    result = regenerate(benchmark, validation_mac)
    err = result.headers.index("error_pct")
    sim_col = result.headers.index("simulated_mbps")
    for row in result.rows:
        assert abs(row[err]) < 8.0, f"model deviation too large at n={row[0]}"
        assert row[sim_col] > 2.0  # sane absolute throughput (Mb/s)
    # throughput declines from its small-n region toward large n
    assert result.rows[-1][sim_col] < result.rows[1][sim_col] + 0.2
