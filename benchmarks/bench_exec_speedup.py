"""Executor benchmark: parallel campaign speedup + byte-identical output.

Runs one quick-mode multi-cell sweep (2 protocols × 2 offered loads ×
2 seeds = 8 independent cells) twice — serially and through a worker
pool — and records the wall-clock ratio.  Two invariants are asserted:

* the parallel aggregate is **byte-identical** to the serial one (the
  executor's core guarantee: results are reassembled in task order, and
  fixed-seed runs are bit-deterministic across processes);
* on a machine with enough cores, the pool is genuinely faster (the
  speedup assertion is skipped on starved CI boxes — a 1-core runner
  can only demonstrate correctness, not parallelism).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace

from repro.exec import ExecPolicy, run_configs
from repro.experiments.scenario import ScenarioConfig


def _grid() -> list[ScenarioConfig]:
    base = ScenarioConfig(
        grid_nx=4, grid_ny=4, spacing_m=230.0, n_flows=6,
        flow_pattern="gateway", n_gateways=2,
        sim_time_s=12.0, warmup_s=2.0, seed=900,
    )
    return [
        replace(base, protocol=proto, flow_rate_pps=rate, seed=base.seed + k)
        for proto in ("aodv", "nlr")
        for rate in (30.0, 60.0)
        for k in range(2)
    ]


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def bench_exec_speedup(benchmark):
    configs = _grid()
    cores = _available_cores()
    workers = min(4, max(2, cores))

    t0 = time.perf_counter()
    serial = run_configs("bench-serial", configs, ExecPolicy(checkpoint=False))
    serial_s = time.perf_counter() - t0

    durations: list[float] = []

    def timed_parallel():
        t = time.perf_counter()
        results = run_configs(
            "bench-parallel", configs,
            ExecPolicy(workers=workers, checkpoint=False),
        )
        durations.append(time.perf_counter() - t)
        return results

    parallel = benchmark.pedantic(timed_parallel, rounds=1, iterations=1)
    parallel_s = durations[0]

    blob_serial = json.dumps([r.as_dict() for r in serial], sort_keys=True)
    blob_parallel = json.dumps([r.as_dict() for r in parallel], sort_keys=True)
    assert blob_serial == blob_parallel, (
        "parallel aggregate diverged from serial"
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["cells"] = len(configs)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\n{len(configs)} cells: serial {serial_s:.2f}s, "
        f"{workers} workers {parallel_s:.2f}s → {speedup:.2f}× "
        f"({cores} cores visible)"
    )
    if cores >= 4 and workers >= 4:
        assert speedup >= 2.5, (
            f"expected ≥2.5× with {workers} workers on {cores} cores, "
            f"got {speedup:.2f}×"
        )
    elif cores >= 2:
        assert speedup >= 1.2, (
            f"expected ≥1.2× with {workers} workers on {cores} cores, "
            f"got {speedup:.2f}×"
        )
