"""Regenerate Fig 6 — delivery and delay vs network size.

Shares the Fig 4 size sweep (cached).  Expectation: delivery stays usable
at every evaluated size, delay grows with size for every scheme (longer
paths, more contention).
"""

from repro.experiments.figures import fig6_scalability

from benchmarks.conftest import regenerate


def bench_fig6_scalability(benchmark):
    result = regenerate(benchmark, fig6_scalability)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    for proto in ("aodv", "nlr"):
        pdr_col = header_idx[f"{proto}_pdr"]
        for row in result.rows:
            assert row[pdr_col] > 0.5, f"{proto} unusable at {row[0]}"
        ms_col = header_idx[f"{proto}_ms"]
        assert result.rows[-1][ms_col] > result.rows[0][ms_col]
