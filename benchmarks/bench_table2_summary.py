"""Regenerate Table 2 — head-to-head summary at the reference point.

Expectation: the oracle bounds delivery from above with zero overhead;
NLR leads the on-demand schemes on the delivery/fairness combination;
plain AODV trails.
"""

from repro.experiments.figures import table2_summary

from benchmarks.conftest import regenerate


def bench_table2_summary(benchmark):
    result = regenerate(benchmark, table2_summary)
    by_proto = {row[0]: row for row in result.rows}
    pdr = result.headers.index("pdr")
    nrl = result.headers.index("nrl")
    jain = result.headers.index("jain")
    assert by_proto["oracle"][nrl] == 0.0
    assert by_proto["oracle"][pdr] >= by_proto["aodv"][pdr] - 0.05
    assert by_proto["nlr"][pdr] >= by_proto["aodv"][pdr] - 0.05
    assert by_proto["nlr"][jain] > by_proto["aodv"][jain]
