#!/usr/bin/env python
"""Diff two perf-baseline records (``BENCH_<rev>.json``).

``baseline.py`` auto-diffs against the most recent committed record; this
tool compares two *explicit* records — e.g. a CI artifact against the
committed baseline, or a scalar run against a batched run — and turns the
comparison into an exit code.

For every kernel present in **both** records it prints old/new wall time
and the wall ratio (new / old, so >1.0 means the candidate is slower),
plus throughput where both sides report a ``*_per_s`` key.  Derived
speedup ratios are compared side by side.

Gates::

    --fail-above 1.25        exit 1 if any shared kernel's wall ratio
                             exceeds 1.25; applied only when both records
                             were produced on the same CPU model (wall
                             times are meaningless across machines)
    --min-derived KEY:VAL    exit 1 if the candidate's derived ratio KEY
                             is below VAL (repeatable); dimensionless, so
                             it is enforced regardless of CPU

``old`` may also be a *directory* (e.g. the repo root): the newest
committed ``BENCH_*.json`` in it with the same ``--quick`` mode as the
candidate is picked automatically — which is how CI diffs a fresh rerun
against whatever baseline the tree ships without hard-coding a revision.

Usage::

    python benchmarks/compare.py BENCH_old.json BENCH_new.json \
        [--fail-above 1.25] [--min-derived sinr_slot_speedup:3.0]
    python benchmarks/compare.py . /tmp/BENCH_ci-quick.json --fail-above 1.6
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_record(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    if "kernels" not in data:
        raise SystemExit(f"{path}: not a baseline record (no 'kernels' key)")
    return data


def newest_baseline(directory: Path, new: dict, new_path: Path) -> Path:
    """Newest comparable ``BENCH_*.json`` in ``directory`` (auto-old mode).

    Comparable means: parseable, a baseline record (has ``kernels``),
    same ``quick`` mode as the candidate, and not the candidate file
    itself.  Newest is by the embedded ``generated_utc`` stamp, not file
    mtime, so fresh checkouts behave.
    """
    candidates: list[tuple[str, Path]] = []
    for path in directory.glob("BENCH_*.json"):
        if path.resolve() == new_path.resolve():
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if "kernels" not in data:
            continue  # e.g. campaign-fabric records — different shape
        if bool(data.get("quick")) != bool(new.get("quick")):
            continue
        candidates.append((data.get("generated_utc", ""), path))
    if not candidates:
        raise SystemExit(
            f"no comparable BENCH_*.json found in {directory} "
            f"(quick={bool(new.get('quick'))})"
        )
    return max(candidates)[1]


def _throughput(entry: dict) -> tuple[str, float] | None:
    for key, val in entry.items():
        if key.endswith("_per_s"):
            return key, val
    return None


def compare(
    old: dict, new: dict, fail_above: float | None,
    min_derived: dict[str, float],
) -> list[str]:
    """Print the comparison table; return the failure messages."""
    failures: list[str] = []
    same_cpu = old.get("cpu") == new.get("cpu") and old.get("cpu")
    same_mode = bool(old.get("quick")) == bool(new.get("quick"))
    print(f"old: rev {old.get('rev', '?')}  quick={bool(old.get('quick'))}  "
          f"({old.get('generated_utc', '?')})")
    print(f"new: rev {new.get('rev', '?')}  quick={bool(new.get('quick'))}  "
          f"({new.get('generated_utc', '?')})")
    if not same_cpu:
        print("different CPU models — wall-ratio gate skipped")
    if not same_mode:
        print("WARNING: records use different --quick modes; wall ratios "
              "compare different workload sizes")

    shared = [k for k in new["kernels"] if k in old["kernels"]]
    only_old = sorted(set(old["kernels"]) - set(new["kernels"]))
    only_new = sorted(set(new["kernels"]) - set(old["kernels"]))
    print(f"\n{'kernel':<24}{'old wall':>12}{'new wall':>12}{'ratio':>8}"
          f"{'throughput':>24}")
    for name in shared:
        o, n = old["kernels"][name], new["kernels"][name]
        ratio = n["wall_s"] / o["wall_s"]
        tp = ""
        ot, nt = _throughput(o), _throughput(n)
        if ot and nt and ot[0] == nt[0]:
            tp = f"{ot[1]:,.0f} → {nt[1]:,.0f}"
        print(f"{name:<24}{o['wall_s']:>12.4f}{n['wall_s']:>12.4f}"
              f"{ratio:>7.2f}x{tp:>24}")
        if fail_above is not None and same_cpu and same_mode \
                and ratio > fail_above:
            failures.append(
                f"{name}: wall ratio {ratio:.2f}x exceeds {fail_above:.2f}x"
            )
    for name in only_old:
        print(f"{name:<24}{old['kernels'][name]['wall_s']:>12.4f}"
              f"{'--':>12}{'gone':>8}")
    for name in only_new:
        print(f"{name:<24}{'--':>12}{new['kernels'][name]['wall_s']:>12.4f}"
              f"{'new':>8}")

    old_derived = old.get("derived", {})
    new_derived = new.get("derived", {})
    if old_derived or new_derived:
        print(f"\n{'derived ratio':<24}{'old':>12}{'new':>12}")
        for name in sorted(set(old_derived) | set(new_derived)):
            o = old_derived.get(name)
            n = new_derived.get(name)
            ostr = f"{o:.2f}x" if o is not None else "--"
            nstr = f"{n:.2f}x" if n is not None else "--"
            print(f"{name:<24}{ostr:>12}{nstr:>12}")
    for key, floor in min_derived.items():
        val = new_derived.get(key)
        if val is None:
            failures.append(f"derived ratio {key!r} missing from new record")
        elif val < floor:
            failures.append(
                f"derived ratio {key}: {val:.2f}x below floor {floor:.2f}x"
            )
    return failures


def _parse_min_derived(specs: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    for spec in specs:
        key, sep, val = spec.partition(":")
        if not sep or not key:
            raise SystemExit(
                f"--min-derived expects KEY:VALUE, got {spec!r}")
        try:
            out[key] = float(val)
        except ValueError:
            raise SystemExit(
                f"--min-derived {spec!r}: {val!r} is not a number")
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("old", type=Path,
                    help="baseline BENCH_*.json, or a directory to "
                         "auto-pick the newest comparable record from")
    ap.add_argument("new", type=Path, help="candidate BENCH_*.json")
    ap.add_argument("--fail-above", type=float, default=None, metavar="R",
                    help="exit 1 if any shared kernel's wall ratio "
                         "(new/old) exceeds R on the same CPU")
    ap.add_argument("--min-derived", action="append", default=[],
                    metavar="KEY:VAL",
                    help="exit 1 if the new record's derived ratio KEY "
                         "is below VAL (repeatable)")
    args = ap.parse_args(argv)

    new = load_record(args.new)
    old_path = args.old
    if old_path.is_dir():
        old_path = newest_baseline(old_path, new, args.new)
        print(f"auto-picked baseline: {old_path}")
    old = load_record(old_path)
    failures = compare(old, new, args.fail_above,
                       _parse_min_derived(args.min_derived))
    if failures:
        print("\nFAILURES:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
