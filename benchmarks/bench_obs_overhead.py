#!/usr/bin/env python
"""Observability overhead gate: disabled hooks must stay (nearly) free.

The obs subsystem touches two hot paths: the engine's run loop (profiler
hook) and every ``tracer.record`` call site.  Both are opt-in, and the
bargain is that *not* opting in costs nothing measurable.  This bench
holds that bargain to a number:

* ``dispatch`` — the standard channel-dispatch benchmark (1k broadcasts
  across a 49-node mesh, events drained through the engine) run twice per
  rep: once through the real ``Simulator.run`` with no profiler attached,
  once through an inline replica of the pre-observability run loop (the
  seed's instruction sequence).  The wall-clock ratio is the
  disabled-profiler overhead.
* ``tracer`` — a tight loop of ``record()`` calls against a disabled
  :class:`Tracer` vs a replica of the seed's disabled-path ``record``.

Timing estimator: reps run in adjacent current/seed pairs (order
alternating pair to pair) and the reported overhead is the **median of
per-pair wall-time ratios**.  Adjacent pairs see near-identical machine
state, so slow drift and throttling windows — which on shared CI boxes
dwarf the effect being measured — cancel out of each ratio; the median
discards the pairs a noise spike still split.  ``--check`` turns
overhead above ``--tolerance`` (default 2%) into a non-zero exit; the
record lands in the repo's ``BENCH_*`` perf trajectory as
``BENCH_obs_<rev>[-quick].json`` (its own schema tag, so
``baseline.py`` never diffs against it).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]
        [--check] [--tolerance 0.02] [--rev LABEL] [--out DIR]
"""

from __future__ import annotations

import argparse
import heapq
import json
import math
import platform
import statistics
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.phy.channel import Channel
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = "obs-1"

# Heap-entry slots / states, mirroring repro.sim.engine's layout.
_TIME, _PRIORITY, _SEQ, _STATE, _FN, _ARGS = range(6)
_PENDING, _FIRED, _CANCELLED = range(3)


# --------------------------------------------------------------------- #
# Seed replicas: the pre-observability instruction sequences
# --------------------------------------------------------------------- #
def seed_replica_run(
    sim: Simulator, until: float = math.inf, max_events: int | None = None
) -> None:
    """The engine run loop exactly as it was before the profiler hook.

    Instruction-for-instruction the seed's ``Simulator.run`` (including
    the ``budget`` bookkeeping), minus the hoisted profiler locals and
    the per-event ``if profiler is None`` branch.
    """
    sim._running = True
    sim._stopped = False
    budget = math.inf if max_events is None else max_events
    heap = sim._heap
    pop = heapq.heappop
    try:
        while heap and not sim._stopped and budget > 0:
            entry = pop(heap)
            if entry[_STATE] == _CANCELLED:
                sim._dead -= 1
                continue
            if entry[_TIME] > until:
                heapq.heappush(heap, entry)
                if math.isfinite(until):
                    sim._now = until
                break
            sim._now = entry[_TIME]
            entry[_STATE] = _FIRED
            fn = entry[_FN]
            args = entry[_ARGS]
            entry[_FN] = None
            entry[_ARGS] = ()
            fn(*args)
            sim._events_executed += 1
            budget -= 1
        else:
            if not heap and math.isfinite(until) and until > sim._now:
                sim._now = until
    finally:
        sim._running = False


class SeedTracer:
    """The seed Tracer's disabled path: plain class, same attribute set,
    same ``record`` prologue (no ``__slots__`` — the seed had none)."""

    def __init__(self) -> None:
        self.enabled = False
        self._categories = None
        self._sink = None
        self._max = 1_000_000
        self._records: list = []
        self.dropped = 0

    def record(self, time, category, node, event, **details) -> None:
        if not self.enabled:
            return
        raise AssertionError("seed replica is only exercised disabled")


# --------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------- #
def _paired_overhead(run_current, run_seed, pairs: int) -> dict:
    """Median of adjacent current/seed wall-time ratios.

    Each pair is an order-balanced quadruple — current, seed, seed,
    current (flipped on odd pairs) — with the min of the two runs per
    variant taken before the ratio, so a noise spike inside a pair has
    to hit both runs of a variant to bias that pair's ratio.
    """
    ratios = []
    cur_walls, seed_walls = [], []
    for i in range(pairs):
        if i % 2 == 0:
            c1 = run_current()
            s1 = run_seed()
            s2 = run_seed()
            c2 = run_current()
        else:
            s1 = run_seed()
            c1 = run_current()
            c2 = run_current()
            s2 = run_seed()
        a = min(c1, c2)
        b = min(s1, s2)
        cur_walls.append(a)
        seed_walls.append(b)
        ratios.append(a / b)
    ratios.sort()
    return {
        "wall_s_current": min(cur_walls),
        "wall_s_seed": min(seed_walls),
        "overhead": statistics.median(ratios) - 1.0,
        "overhead_spread": [ratios[0] - 1.0, ratios[-1] - 1.0],
    }


def _dispatch_workload(runner, broadcasts: int) -> int:
    """The standard dispatch benchmark: broadcasts drained via ``runner``."""
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False)
    rs = RandomStreams(1)
    for i in range(49):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
        ch.register(r, (230.0 * (i % 7), 230.0 * (i // 7)))
    power = PhyConfig().tx_power_w
    t0 = time.perf_counter()
    for _ in range(broadcasts):
        frame = PhyFrame(
            payload=None, bits=4096, rate_bps=11e6, preamble_s=192e-6,
            tx_power_w=power, tx_node=24,
        )
        ch.transmit(24, frame)
        runner(sim)
    wall = time.perf_counter() - t0
    return wall, sim.events_executed


def kernel_dispatch(quick: bool, pairs: int) -> dict:
    broadcasts = 250 if quick else 500
    events = {}

    def run_current() -> float:
        w, e = _dispatch_workload(lambda sim: sim.run(), broadcasts)
        events["current"] = e
        return w

    def run_seed() -> float:
        w, e = _dispatch_workload(seed_replica_run, broadcasts)
        events["seed"] = e
        return w

    out = _paired_overhead(run_current, run_seed, pairs)
    # Both loops must execute the identical event sequence.
    assert events["current"] == events["seed"], f"replica diverged: {events}"
    out.update(broadcasts=broadcasts, events=events["current"])
    return out


def kernel_tracer(quick: bool, pairs: int) -> dict:
    n = 80_000 if quick else 150_000
    current = Tracer()           # disabled: the default at every call site
    seed = SeedTracer()

    def loop(tracer) -> float:
        record = tracer.record
        t0 = time.perf_counter()
        for _ in range(n):
            record(0.0, "mac", 1, "data_tx", dst=2, bits=4096)
        return time.perf_counter() - t0

    out = _paired_overhead(lambda: loop(current), lambda: loop(seed), pairs)
    assert current.recorded == 0  # stayed disabled throughout
    out["calls"] = n
    return out


# --------------------------------------------------------------------- #
def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "local"


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller kernel sizes (CI mode)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 when overhead exceeds --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="maximum allowed disabled-path overhead (fraction)")
    ap.add_argument("--pairs", type=int, default=25,
                    help="current/seed timing pairs per kernel (median of "
                         "per-pair ratios is the overhead estimate)")
    ap.add_argument("--rev", default=None,
                    help="label (default: git short rev)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT,
                    help="directory for BENCH_obs_<rev>.json")
    args = ap.parse_args(argv)

    rev = args.rev or _git_rev()
    print(f"obs overhead gate: rev={rev} quick={args.quick} "
          f"tolerance={args.tolerance:.0%}")
    # Warm-up rep (allocator, imports) before anything is timed.
    kernel_dispatch(True, pairs=1)

    kernels = {
        "dispatch_profiler_off": kernel_dispatch(args.quick, args.pairs),
        "tracer_disabled": kernel_tracer(args.quick, args.pairs),
    }
    for name, k in kernels.items():
        lo, hi = k["overhead_spread"]
        print(f"  {name:<24} current={k['wall_s_current']:.4f}s "
              f"seed={k['wall_s_seed']:.4f}s "
              f"overhead={k['overhead']:+.2%} "
              f"(pair spread {lo:+.2%}..{hi:+.2%})")

    record = {
        "schema": SCHEMA,
        "rev": rev,
        "quick": args.quick,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "tolerance": args.tolerance,
        "kernels": kernels,
    }
    suffix = "-quick" if args.quick else ""
    out_path = args.out / f"BENCH_obs_{rev}{suffix}.json"
    args.out.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")

    over = {
        name: k["overhead"] for name, k in kernels.items()
        if k["overhead"] > args.tolerance
    }
    if over:
        for name, o in over.items():
            print(f"OVERHEAD GATE FAILED: {name} at {o:+.2%} "
                  f"(> {args.tolerance:.0%})")
        return 1 if args.check else 0
    print(f"disabled-path overhead within {args.tolerance:.0%} on all kernels")
    return 0


if __name__ == "__main__":
    sys.exit(main())
