"""Regenerate Table 1 — the fixed simulation parameters."""

from repro.experiments.figures import table1_parameters

from benchmarks.conftest import regenerate


def bench_table1_parameters(benchmark):
    result = regenerate(benchmark, table1_parameters)
    values = {row[0] for row in result.rows}
    assert "Transmission range" in values
    assert "NLR damping" in values
