#!/usr/bin/env python
"""Perf-regression baseline runner.

Executes the substrate kernels the figure sweeps stress (event heap, timer
churn, channel dispatch with/without the spatial index, mobility-driven
cache invalidation, busy-ratio tracking, and a fig-6-style end-to-end
scalability scenario at N ≥ 100 nodes), then emits ``BENCH_<rev>.json``
at the repo root with wall-clock, events/s, and peak RSS per kernel plus
machine-independent derived speedup ratios.

The emitted file is the perf trajectory: each run diffs against the most
recent comparable baseline (same ``--quick`` mode) and ``--check`` turns a
>``--tolerance`` regression into a non-zero exit for CI.  Wall-clock gates
only apply when the baseline was recorded on the same CPU model; across
machines only the derived speedup ratios (spatial vs exhaustive) are
gated, since those are dimensionless.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py [--quick] [--check]
        [--tolerance 0.25] [--ratio-tolerance 0.4] [--rev LABEL] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.mac.busy_monitor import BusyMonitor
from repro.phy.channel import Channel
from repro.phy.error_models import SinrThresholdErrorModel
from repro.phy.frame import PhyFrame
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.rng import RandomStreams

REPO_ROOT = Path(__file__).resolve().parent.parent
SCHEMA = 1


# --------------------------------------------------------------------- #
# Kernels
# --------------------------------------------------------------------- #
def _grid_channel(nx: int, ny: int, spacing: float, spatial: bool) -> Channel:
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False,
                 spatial_index=spatial)
    rs = RandomStreams(1)
    for i in range(nx * ny):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
        ch.register(r, (spacing * (i % nx), spacing * (i // nx)))
    return ch


def kernel_engine_events(quick: bool) -> dict:
    n = 50_000 if quick else 200_000
    fn = lambda: None  # noqa: E731
    t0 = time.perf_counter()
    sim = Simulator()
    for k in range(n):
        sim.schedule(k * 1e-6, fn)
    sim.run()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "events": n, "events_per_s": n / wall}


def kernel_timer_churn(quick: bool) -> dict:
    n = 20_000 if quick else 100_000
    t0 = time.perf_counter()
    sim = Simulator()
    t = Timer(sim, lambda: None)
    for _ in range(n):
        t.restart(1.0)
    t.cancel()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "restarts": n, "restarts_per_s": n / wall,
            "final_heap_len": len(sim._heap)}


def _kernel_dispatch(quick: bool, spatial: bool) -> dict:
    # Cold-plan regime: every plan rebuilt each round.  The exhaustive
    # path's single vectorised pass is hard to beat at small N (crossover
    # sits near N ≈ 500 on 2026 hardware), so this kernel measures the
    # asymptotic regime; the steady-state win is the mobility kernel below.
    nx = 40 if quick else 50
    rounds = 3 if quick else 5
    ch = _grid_channel(nx, nx, 300.0, spatial)
    power = PhyConfig().tx_power_w
    n = nx * nx
    t0 = time.perf_counter()
    for _ in range(rounds):
        ch._invalidate_all()
        for tx in range(n):
            ch._dispatch_plan(tx, power)
    wall = time.perf_counter() - t0
    plans = rounds * n
    return {"wall_s": wall, "nodes": n, "plans": plans,
            "plans_per_s": plans / wall}


def kernel_dispatch_spatial(quick: bool) -> dict:
    return _kernel_dispatch(quick, True)


def kernel_dispatch_exhaustive(quick: bool) -> dict:
    return _kernel_dispatch(quick, False)


def _kernel_mobility(quick: bool, spatial: bool) -> dict:
    # One node moves per round, then every node needs a dispatch plan:
    # incremental invalidation keeps plans outside the mover's
    # neighbourhood cached; the exhaustive path recomputes all of them.
    # This is the steady-state regime of a mesh with roaming clients.
    nx = 20
    rounds = 20 if quick else 60
    ch = _grid_channel(nx, nx, 300.0, spatial)
    power = PhyConfig().tx_power_w
    n = nx * nx
    rng = np.random.default_rng(5)
    for tx in range(n):
        ch._dispatch_plan(tx, power)  # warm cache
    t0 = time.perf_counter()
    for k in range(rounds):
        mover = int(rng.integers(n))
        ch.set_position(mover, tuple(rng.uniform(0.0, 300.0 * (nx - 1), 2)))
        for tx in range(n):
            ch._dispatch_plan(tx, power)
    wall = time.perf_counter() - t0
    plans = rounds * n
    return {"wall_s": wall, "nodes": n, "plan_lookups": plans,
            "lookups_per_s": plans / wall}


def kernel_mobility_spatial(quick: bool) -> dict:
    return _kernel_mobility(quick, True)


def kernel_mobility_exhaustive(quick: bool) -> dict:
    return _kernel_mobility(quick, False)


def kernel_busy_monitor(quick: bool) -> dict:
    n = 50_000 if quick else 200_000
    sim = Simulator()
    m = BusyMonitor(sim, window_s=1.0)
    t0 = time.perf_counter()
    now = 0.0
    busy = False
    for k in range(n):
        now += 0.0003
        sim._now = now
        busy = not busy
        m.on_medium_state(busy)
        m.busy_ratio()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "queries": n, "queries_per_s": n / wall}


def _run_fig6(config: ScenarioConfig) -> dict:
    t0 = time.perf_counter()
    result = run_scenario(config)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "nodes": config.node_count,
            "events": result.events_executed,
            "events_per_s": result.events_executed / wall,
            "pdr": result.pdr}


def _kernel_fig6(quick: bool, spatial: bool) -> dict:
    # Fig-6-style static scalability point at N = 100 (the acceptance
    # floor).  Static plans are fully cached in both channel paths, so
    # this pair is the determinism cross-check and the whole-simulator
    # events/s tracker, not a spatial-index showcase.  batched_kernel=True
    # matches what the figure sweeps now run; the fig6_e2e pair below
    # keeps the scalar engine as the cross-checked oracle.
    return _run_fig6(ScenarioConfig(
        protocol="nlr", grid_nx=10, grid_ny=10, spacing_m=200.0,
        n_flows=6, flow_rate_pps=2.0, flow_stagger_s=0.2,
        sim_time_s=4.0 if quick else 8.0, warmup_s=1.0, seed=42,
        spatial_index=spatial, batched_kernel=True,
    ))


def kernel_fig6_spatial(quick: bool) -> dict:
    return _kernel_fig6(quick, True)


def kernel_fig6_exhaustive(quick: bool) -> dict:
    return _kernel_fig6(quick, False)


def _kernel_fig6_scale(quick: bool, spatial: bool) -> dict:
    # End-to-end scalability regime: a static router backbone with a
    # roaming client (WMN clients over mesh routers).  Every mobility tick
    # the exhaustive path drops the whole dispatch cache; the grid drops
    # only plans near the mover.  Plan rebuilding is ~3–4× cheaper with
    # the index but only ~5% of e2e runtime at this N (the MAC dominates),
    # so the pair's wall ratio hovers near 1.0 — its real jobs are the
    # byte-determinism cross-check under mobility and tracking absolute
    # simulator throughput (events/s) at N ≥ 100.
    nx = 15 if quick else 20
    return _run_fig6(ScenarioConfig(
        protocol="nlr", grid_nx=nx, grid_ny=nx, spacing_m=200.0,
        n_flows=8, flow_rate_pps=4.0, flow_stagger_s=0.2,
        sim_time_s=3.0 if quick else 4.0, warmup_s=1.0, seed=42,
        mobility="rwp", mobile_fraction=0.005, speed_range=(2.0, 8.0),
        pause_s=0.5, mobility_update_s=0.1, spatial_index=spatial,
        batched_kernel=True,
    ))


def kernel_fig6_scale_spatial(quick: bool) -> dict:
    return _kernel_fig6_scale(quick, True)


def kernel_fig6_scale_exhaustive(quick: bool) -> dict:
    return _kernel_fig6_scale(quick, False)


def _kernel_sinr_slot(quick: bool, batched: bool) -> dict:
    # Single-slot fan-out kernel (DESIGN.md §8): one transmitter on a
    # 21×21 grid at 80 m spacing reaches ~416 concurrent receivers, so
    # every transmission is one rx_start block + one rx_end block.  With
    # propagation_delay off all receivers share a delay group, which is
    # the regime the vectorised SINR/capture kernel targets; the scalar
    # variant walks the same receivers one event at a time.  This is the
    # per-slot PHY cost in isolation — the ISSUE's ≥5× acceptance kernel.
    nx = 21
    rounds = 40 if quick else 200
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False,
                 batched=batched)
    rs = RandomStreams(1)
    for i in range(nx * nx):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"),
                  error_model=SinrThresholdErrorModel(10.0))
        ch.register(r, (80.0 * (i % nx), 80.0 * (i // nx)))
    tx = (nx * nx) // 2
    power = PhyConfig().tx_power_w
    frame = PhyFrame(payload=None, bits=4096, rate_bps=11e6,
                     preamble_s=192e-6, tx_power_w=power, tx_node=tx)
    ch._dispatch_plan(tx, power)  # warm the dispatch plan
    t0 = time.perf_counter()
    for _ in range(rounds):
        ch.transmit(tx, frame)
        sim.run()
    wall = time.perf_counter() - t0
    ev = sim.events_executed
    return {"wall_s": wall, "nodes": nx * nx, "events": ev,
            "events_per_s": ev / wall}


def kernel_sinr_slot_batched(quick: bool) -> dict:
    return _kernel_sinr_slot(quick, True)


def kernel_sinr_slot_scalar(quick: bool) -> dict:
    return _kernel_sinr_slot(quick, False)


def _kernel_fig6_batched(quick: bool, batched: bool) -> dict:
    # End-to-end batched-kernel pair: the whole simulator (CSMA MAC, NLR
    # routing, traffic) with ``batched_kernel`` toggled.  Zero propagation
    # delay keeps each fan-out in one delay group so block events actually
    # form; with per-receiver delays the groups are singletons and the
    # batched path degenerates to scalar dispatch (measured ~1.0×).  The
    # e2e win is smaller than the slot kernel's because MAC/routing logic
    # stays scalar — this pair tracks the realistic whole-run speedup and
    # doubles as the batched-vs-scalar byte-determinism gate.
    nx = 12 if quick else 21
    return _run_fig6(ScenarioConfig(
        protocol="nlr", grid_nx=nx, grid_ny=nx, spacing_m=200.0,
        n_flows=12 if quick else 20, flow_rate_pps=4.0,
        flow_start_s=0.2, flow_stagger_s=0.0,
        sim_time_s=1.5 if quick else 2.0, warmup_s=0.5, seed=42,
        propagation_delay=False, batched_kernel=batched,
    ))


def kernel_fig6_e2e_batched(quick: bool) -> dict:
    return _kernel_fig6_batched(quick, True)


def kernel_fig6_e2e_scalar(quick: bool) -> dict:
    return _kernel_fig6_batched(quick, False)


KERNELS = {
    "engine_events": kernel_engine_events,
    "timer_churn": kernel_timer_churn,
    "dispatch_spatial": kernel_dispatch_spatial,
    "dispatch_exhaustive": kernel_dispatch_exhaustive,
    "mobility_spatial": kernel_mobility_spatial,
    "mobility_exhaustive": kernel_mobility_exhaustive,
    "busy_monitor": kernel_busy_monitor,
    "fig6_n100_spatial": kernel_fig6_spatial,
    "fig6_n100_exhaustive": kernel_fig6_exhaustive,
    "fig6_scale_spatial": kernel_fig6_scale_spatial,
    "fig6_scale_exhaustive": kernel_fig6_scale_exhaustive,
    "sinr_slot_batched": kernel_sinr_slot_batched,
    "sinr_slot_scalar": kernel_sinr_slot_scalar,
    "fig6_e2e_batched": kernel_fig6_e2e_batched,
    "fig6_e2e_scalar": kernel_fig6_e2e_scalar,
}

#: A/B kernel pairs as (base, fast_variant, slow_variant) name parts; the
#: kernels are ``<base>_<variant>``.  Each pair's reps are interleaved
#: (A, B, A, B, ...) so ambient machine drift hits both variants equally
#: and the derived ratios stay stable.
_PAIRED = (
    ("dispatch", "spatial", "exhaustive"),
    ("mobility", "spatial", "exhaustive"),
    ("fig6_n100", "spatial", "exhaustive"),
    ("fig6_scale", "spatial", "exhaustive"),
    ("sinr_slot", "batched", "scalar"),
    ("fig6_e2e", "batched", "scalar"),
)
_SINGLE = ("engine_events", "timer_churn", "busy_monitor")

#: Kernel pairs that must agree bit-for-bit on the listed result keys
#: (the byte-determinism gate): (kernel_a, kernel_b, keys).
_MATCH_PAIRS = (
    ("fig6_n100_spatial", "fig6_n100_exhaustive", ("events", "pdr")),
    ("fig6_scale_spatial", "fig6_scale_exhaustive", ("events", "pdr")),
    ("sinr_slot_batched", "sinr_slot_scalar", ("events",)),
    ("fig6_e2e_batched", "fig6_e2e_scalar", ("events", "pdr")),
)

#: Repetitions per kernel; the recorded wall time is the minimum.
_BEST_OF = 3


# --------------------------------------------------------------------- #
# Record assembly / diffing
# --------------------------------------------------------------------- #
def _cpu_model() -> str:
    """CPU model string for the wall-clock comparability check.

    ``platform.processor()`` is often empty on Linux and ``machine()`` is
    just "x86_64", which would wrongly treat all machines as comparable.
    """
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if line.startswith("model name"):
                return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except Exception:
        return "local"


def run_all(quick: bool, rev: str) -> dict:
    # Warm the process (allocator, numpy, import side effects) so the
    # first timed kernel is not systematically penalised.
    _run_fig6(ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2, flow_rate_pps=2.0,
        flow_stagger_s=0.1, sim_time_s=1.5, warmup_s=0.5, seed=7,
    ))
    # Best-of-k wall time: single-shot timings on shared CI runners swing
    # by tens of percent; the minimum is the stable statistic.
    wall = lambda d: d["wall_s"]  # noqa: E731
    kernels = {}
    for name in _SINGLE:
        print(f"  running {name} ...", flush=True)
        fn = KERNELS[name]
        kernels[name] = min((fn(quick) for _ in range(_BEST_OF)), key=wall)
    for base, va, vb in _PAIRED:
        print(f"  running {base} ({va} vs {vb}) ...", flush=True)
        afn = KERNELS[f"{base}_{va}"]
        bfn = KERNELS[f"{base}_{vb}"]
        aruns, bruns = [], []
        for _ in range(_BEST_OF):
            aruns.append(afn(quick))
            bruns.append(bfn(quick))
        kernels[f"{base}_{va}"] = min(aruns, key=wall)
        kernels[f"{base}_{vb}"] = min(bruns, key=wall)
    for name_a, name_b, keys in _MATCH_PAIRS:
        for key in keys:
            a = kernels[name_a][key]
            b = kernels[name_b][key]
            if a != b:
                raise SystemExit(
                    f"DETERMINISM VIOLATION: {name_a}/{name_b} {key} "
                    f"diverged ({a!r} vs {b!r})"
                )
    # Dimensionless ratios: comparable across machines, unlike wall times.
    # fig6_n100 (static, cache-amortised) is intentionally not derived —
    # its spatial/exhaustive ratio is noise around 1.0 by construction.
    derived = {
        "dispatch_speedup": kernels["dispatch_exhaustive"]["wall_s"]
        / kernels["dispatch_spatial"]["wall_s"],
        "mobility_speedup": kernels["mobility_exhaustive"]["wall_s"]
        / kernels["mobility_spatial"]["wall_s"],
        "fig6_scale_speedup": kernels["fig6_scale_exhaustive"]["wall_s"]
        / kernels["fig6_scale_spatial"]["wall_s"],
        "sinr_slot_speedup": kernels["sinr_slot_scalar"]["wall_s"]
        / kernels["sinr_slot_batched"]["wall_s"],
        "batched_e2e_speedup": kernels["fig6_e2e_scalar"]["wall_s"]
        / kernels["fig6_e2e_batched"]["wall_s"],
    }
    return {
        "schema": SCHEMA,
        "rev": rev,
        "quick": quick,
        "generated_utc": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu": _cpu_model(),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "kernels": kernels,
        "derived": derived,
    }


def previous_baseline(out_dir: Path, quick: bool, rev: str) -> dict | None:
    """Most recent committed baseline in the same mode, excluding ``rev``."""
    candidates = []
    for path in out_dir.glob("BENCH_*.json"):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if data.get("schema") != SCHEMA or data.get("rev") == rev:
            continue
        if bool(data.get("quick")) != quick:
            continue
        candidates.append(data)
    candidates.sort(key=lambda d: d.get("generated_utc", ""))
    return candidates[-1] if candidates else None


def diff(
    current: dict, baseline: dict, tolerance: float,
    ratio_tolerance: float,
) -> list[str]:
    """Human-readable comparison; returns the regression messages."""
    regressions: list[str] = []
    same_cpu = current.get("cpu") == baseline.get("cpu")
    print(f"\nBaseline: rev {baseline['rev']} ({baseline['generated_utc']})"
          f"{'' if same_cpu else '  [different CPU — wall gates skipped]'}")
    print(f"{'kernel':<24}{'base wall':>12}{'now wall':>12}{'delta':>9}")
    for name, cur in current["kernels"].items():
        base = baseline["kernels"].get(name)
        if base is None:
            print(f"{name:<24}{'--':>12}{cur['wall_s']:>12.4f}{'new':>9}")
            continue
        ratio = cur["wall_s"] / base["wall_s"]
        print(f"{name:<24}{base['wall_s']:>12.4f}{cur['wall_s']:>12.4f}"
              f"{(ratio - 1) * 100:>+8.1f}%")
        if same_cpu and ratio > 1.0 + tolerance:
            regressions.append(
                f"{name}: wall {base['wall_s']:.4f}s → {cur['wall_s']:.4f}s "
                f"(+{(ratio - 1) * 100:.1f}% > {tolerance * 100:.0f}%)"
            )
    for name, cur in current["derived"].items():
        base = baseline.get("derived", {}).get(name)
        if base is None:
            continue
        print(f"{name:<24}{base:>11.2f}x{cur:>11.2f}x")
        # Ratios quotient two noisy timings, so they get a wider gate than
        # the same-machine wall clocks.
        if cur < base * (1.0 - ratio_tolerance):
            regressions.append(
                f"{name}: speedup {base:.2f}x → {cur:.2f}x "
                f"(lost >{ratio_tolerance * 100:.0f}%)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller kernel sizes (CI mode)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on >tolerance regression vs the baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="same-CPU wall-clock regression gate")
    ap.add_argument("--ratio-tolerance", type=float, default=0.4,
                    help="derived speedup-ratio regression gate")
    ap.add_argument("--rev", default=None, help="label (default: git short rev)")
    ap.add_argument("--out", type=Path, default=REPO_ROOT,
                    help="directory for BENCH_<rev>.json")
    args = ap.parse_args(argv)

    rev = args.rev or _git_rev()
    print(f"perf baseline: rev={rev} quick={args.quick}")
    record = run_all(args.quick, rev)

    suffix = "-quick" if args.quick else ""
    out_path = args.out / f"BENCH_{rev}{suffix}.json"
    args.out.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")
    print(f"peak RSS: {record['peak_rss_kb'] / 1024:.1f} MB")
    for name, val in record["derived"].items():
        print(f"  {name}: {val:.2f}x")

    baseline = previous_baseline(REPO_ROOT, args.quick, rev)
    if baseline is None:
        print("no comparable previous baseline found; nothing to diff")
        return 0
    regressions = diff(record, baseline, args.tolerance, args.ratio_tolerance)
    if regressions:
        print("\nREGRESSIONS:")
        for msg in regressions:
            print(f"  - {msg}")
        return 1 if args.check else 0
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
