"""Regenerate Fig 3 — aggregate throughput vs number of flows.

Expectation: throughput climbs with flow count until the shared medium
saturates, then flattens; the probabilistic schemes hold the higher
plateau.
"""

from repro.experiments.figures import fig3_throughput_vs_flows

from benchmarks.conftest import regenerate


def bench_fig3_throughput_vs_flows(benchmark):
    result = regenerate(benchmark, fig3_throughput_vs_flows)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    for proto in ("aodv", "nlr"):
        col = header_idx[f"{proto}_kbps"]
        series = [row[col] for row in result.rows]
        # more flows must never *reduce* throughput to a trickle …
        assert series[-1] > 0.3 * max(series)
        # … and the 2-flow point cannot already be the saturation plateau.
        assert max(series) > series[0]
