"""Regenerate Fig 2 — mean end-to-end delay vs offered load.

Shares the Fig 1 sweep (cached), so this bench re-renders the delay view.
Expectation: sub-10 ms for everyone at light load; steep growth past the
knee, fastest for plain AODV.
"""

from repro.experiments.figures import fig2_delay_vs_load

from benchmarks.conftest import regenerate


def bench_fig2_delay_vs_load(benchmark):
    result = regenerate(benchmark, fig2_delay_vs_load)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    lightest, heaviest = result.rows[0], result.rows[-1]
    for proto in ("aodv", "gossip", "counter", "nlr"):
        col = header_idx[f"{proto}_delay_ms"]
        assert lightest[col] < 60.0, f"{proto} slow at light load"
        assert heaviest[col] > lightest[col], f"{proto} delay did not grow"
