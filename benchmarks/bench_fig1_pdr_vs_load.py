"""Regenerate Fig 1 — packet delivery ratio vs offered load.

Paper-shaped expectation: all schemes deliver ≈ everything at light load;
past the contention knee plain AODV collapses first while the
probabilistic schemes (gossip / counter / NLR) retain higher delivery,
with NLR at or above gossip.
"""

from repro.experiments.figures import fig1_pdr_vs_load

from benchmarks.conftest import regenerate


def bench_fig1_pdr_vs_load(benchmark):
    result = regenerate(benchmark, fig1_pdr_vs_load)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    lightest = result.rows[0]
    heaviest = result.rows[-1]
    # Light load: everyone ≈ 1.
    for proto in ("aodv", "gossip", "counter", "nlr"):
        assert lightest[header_idx[f"{proto}_pdr"]] > 0.9, proto
    # Heavy load: the knee has been crossed (someone is losing traffic) …
    assert min(heaviest[1:]) < 0.95
    # … and at the knee itself NLR delivers at least as much as AODV.
    knee = result.rows[-2]
    assert (
        knee[header_idx["nlr_pdr"]]
        >= knee[header_idx["aodv_pdr"]] - 0.02
    )
