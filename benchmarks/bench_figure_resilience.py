"""Regenerate the resilience figure — delivery and recovery under churn.

Chaos extension: a Poisson relay-crash process (repro.faults) runs inside
every cell; the figure tracks PDR and steady-state recovery time versus
crash rate for NLR/AODV/gossip.
"""

from repro.experiments.figures import figure_resilience

from benchmarks.conftest import regenerate


def bench_figure_resilience(benchmark):
    result = regenerate(benchmark, figure_resilience)
    by_rate = {row[0]: row for row in result.rows}
    rates = sorted(by_rate)
    pdr_cols = [
        i for i, h in enumerate(result.headers) if h.endswith("_pdr")
    ]
    # The fault-free baseline delivers essentially everything; the highest
    # churn rate visibly degrades every scheme.
    for col in pdr_cols:
        assert by_rate[rates[0]][col] > 0.97
        assert by_rate[rates[-1]][col] < by_rate[rates[0]][col]
