"""Regenerate Fig 4 — routing overhead vs network size.

Expectation: RREQ transmissions grow with network size for every scheme;
gossip and counter sit below blind-flooding AODV.  NLR pays *more* RREQs
than AODV by design (periodic re-discovery is what buys its adaptivity),
which the normalised-routing-load columns make explicit — the honest cost
accounting of the contribution.
"""

from repro.experiments.figures import fig4_overhead_vs_size

from benchmarks.conftest import regenerate


def bench_fig4_overhead_vs_size(benchmark):
    result = regenerate(benchmark, fig4_overhead_vs_size)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    for proto in ("aodv", "gossip", "counter", "nlr"):
        col = header_idx[f"{proto}_rreq"]
        series = [row[col] for row in result.rows]
        assert series[-1] > series[0], f"{proto} overhead did not grow with size"
    # Suppression: gossip strictly below blind flooding at the largest size.
    last = result.rows[-1]
    assert last[header_idx["gossip_rreq"]] < last[header_idx["aodv_rreq"]]
