"""Regenerate Fig 7 — broadcast-storm reachability vs saved rebroadcasts.

Expectation: blind flooding reaches ≈ everyone and saves nothing; gossip
saves the most rebroadcasts at some reachability cost; counter-based
savings grow with density; the load-adaptive policy tracks blind flooding
on an idle medium (its damping engages under load only).
"""

from repro.experiments.figures import fig7_broadcast_storm

from benchmarks.conftest import regenerate


def bench_fig7_broadcast_storm(benchmark):
    result = regenerate(benchmark, fig7_broadcast_storm)
    header_idx = {h: i for i, h in enumerate(result.headers)}
    densest = result.rows[-1]
    assert densest[header_idx["blind_reach"]] > 0.9
    assert densest[header_idx["blind_saved"]] < 0.05
    assert densest[header_idx["gossip_saved"]] > densest[header_idx["blind_saved"]]
    assert densest[header_idx["nlr_reach"]] > 0.9  # idle medium ⇒ ≈ blind
