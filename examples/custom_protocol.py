#!/usr/bin/env python3
"""Build your own routing variant on the AODV engine (extension API demo).

The repository's protocols are all "policy + engine" compositions; this
example shows the full recipe by implementing **ETX-lite** — a
link-quality-aware variant that prefers reliable links over short paths —
in ~40 lines, then racing it against AODV and NLR on a lossy mesh.

ETX-lite estimates each neighbour's delivery ratio from HELLO regularity
(beacons arrive every second; a neighbour heard long ago is suspect) and
accumulates ``1 / quality`` along RREQ paths, mirroring how NLR
accumulates neighbourhood load.  The engine hooks it overrides are the
same four NLR uses — see docs/TUTORIAL.md for the walkthrough.

Run:
    python examples/custom_protocol.py
"""

from dataclasses import replace

import numpy as np

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import PROTOCOLS, ScenarioConfig
from repro.metrics.summary import format_table
from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.packet import RreqHeader


class EtxLiteRouting(AodvRouting):
    """AODV with a HELLO-freshness link-quality metric.

    Overrides the same engine hooks as NLR:

    * ``_own_load_contribution`` — this node's cost added to traversing
      RREQs (here: staleness of its *most recently heard* neighbour,
      a crude inverse link-quality proxy);
    * ``_rreq_candidate_cost`` / ``_route_cost`` — how paths are ranked.
    """

    name = "etx-lite"

    def _freshness_cost(self) -> float:
        table = self.neighbour_table
        if table is None or len(table) == 0:
            return 1.0
        now = self.sim.now
        ages = [now - n.last_heard for n in table.neighbours()]
        mean_age = sum(ages) / len(ages)
        # 0 cost for just-heard neighbours, →1 as they approach expiry.
        return min(1.0, mean_age / table.lifetime_s)

    def _own_load_contribution(self) -> float:
        return self._freshness_cost()

    def _rreq_candidate_cost(self, header: RreqHeader) -> float:
        return header.path_load + 0.25 * header.hop_count

    def _route_cost(self, hop_count: int, path_load: float) -> float:
        return path_load + 0.25 * hop_count


def make_etx(cfg: ScenarioConfig, rng: np.random.Generator, net) -> EtxLiteRouting:
    """Scenario-builder factory (the registry contract)."""
    return EtxLiteRouting(
        AodvConfig(dest_reply_wait_s=0.05, intermediate_reply=False), rng
    )


def main() -> None:
    # Register the custom scheme exactly like the built-ins.
    PROTOCOLS["etx-lite"] = make_etx

    base = ScenarioConfig(
        grid_nx=4, grid_ny=4, spacing_m=230.0,
        n_flows=6, flow_pattern="random", flow_rate_pps=20.0,
        shadowing_sigma_db=4.0,       # lossy links: quality varies per link
        sim_time_s=20.0, warmup_s=4.0, seed=23,
    )
    rows = []
    for protocol in ("aodv", "nlr", "etx-lite"):
        result = run_scenario(replace(base, protocol=protocol))
        rows.append(
            [
                protocol,
                round(result.pdr, 4),
                round(result.mean_delay_s * 1000, 2),
                round(result.mean_hops, 2),
                int(result.rreq_tx),
            ]
        )
    print(
        format_table(
            ["protocol", "pdr", "delay_ms", "hops", "rreq"],
            rows,
            title="Custom scheme vs built-ins on a shadowed (lossy) mesh",
        )
    )
    print(
        "\netx-lite was registered with one line (PROTOCOLS['etx-lite'] = ...)"
        "\nand implemented by overriding three AodvRouting hooks — the same"
        "\nextension surface NLR itself is built on."
    )


if __name__ == "__main__":
    main()
