#!/usr/bin/env python3
"""Watch NLR steer around a moving hotspot (the contribution, end to end).

A diamond topology offers two routes from node 0 to node 4:

           1            short path 0-1-4 (2 hops)
         /   \\
        0     4
         \\   /
          2-3           long path 0-2-3-4 (3 hops)

A background CBR "interference" flow is parked on node 1, making it a
hotspot.  NLR's cross-layer estimator raises node 1's advertised load, the
HELLO beacons spread it, and the next periodic route re-discovery bends
the probe flow onto the long path.  Halfway through, the hotspot moves to
node 3 — and the probe flow migrates back.

The script prints a timeline of the probe flow's observed hop count plus
the loads the two relay nodes advertise.

Run:
    python examples/adaptive_rerouting.py
"""

from repro.core.cross_layer import LoadSample
from repro.core.nlr import NlrConfig, NlrRouting
from repro.mac.perfect import PerfectMacNetwork
from repro.net.aodv import AodvConfig
from repro.net.node import NodeStack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

DIAMOND = {0: [1, 2], 1: [0, 4], 2: [0, 3], 3: [2, 4], 4: [1, 3]}


class PinnedLoad:
    """A fake MAC signal source whose queue occupancy we script."""

    def __init__(self) -> None:
        self.queue = 0.0

    @property
    def queue_occupancy(self) -> float:
        return self.queue

    def channel_busy_ratio(self) -> float:
        return 0.0


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(11)
    mesh = PerfectMacNetwork(sim, lambda n: DIAMOND[n], hop_delay_s=1e-3)
    config = NlrConfig(
        aodv=AodvConfig(
            dest_reply_wait_s=0.05,
            intermediate_reply=False,
            origin_refresh_on_use=False,   # periodic re-discovery
            active_route_timeout_s=1.0,
        ),
        hop_weight=0.25,
        queue_weight=1.0,
    )
    stacks = []
    for node in sorted(DIAMOND):
        routing = NlrRouting(config, streams.stream(f"routing.{node}"))
        stacks.append(NodeStack(sim, node, mesh.create_mac(node), routing))

    hot1, hot3 = PinnedLoad(), PinnedLoad()
    stacks[1].routing.bus.source = hot1
    stacks[3].routing.bus.source = hot3
    hot1.queue = 0.9  # hotspot starts at node 1

    for stack in stacks:
        stack.start()

    timeline: list[tuple[float, int, float, float]] = []

    def record(p) -> None:
        timeline.append(
            (
                sim.now,
                p.hops,
                stacks[1].routing.estimator.load(),
                stacks[3].routing.estimator.load(),
            )
        )

    stacks[4].receive_callback = record

    # Probe flow: 5 packets/s from node 0 to node 4 for 14 s.
    for k in range(70):
        sim.schedule(2.0 + 0.2 * k, stacks[0].send_data, 4, 100, 0, k)

    def move_hotspot() -> None:
        hot1.queue = 0.0
        hot3.queue = 0.9
        print("  >> t=9.0 s: hotspot moves from node 1 to node 3")

    sim.schedule(9.0, move_hotspot)
    sim.run(until=18.0)

    print("time     path           node loads at delivery (node1, node3)")
    last_hops = None
    for t, hops, l1, l3 in timeline:
        if hops != last_hops:
            path = "0-1-4 (short)" if hops == 2 else "0-2-3-4 (long)"
            print(f"{t:7.2f}  {path:<14} ({l1:.2f}, {l3:.2f})")
            last_hops = hops
    n_long = sum(1 for _, h, _l1, _l3 in timeline if h == 3)
    n_short = sum(1 for _, h, _l1, _l3 in timeline if h == 2)
    print(
        f"\ndelivered {len(timeline)}/70 probes; {n_long} took the detour, "
        f"{n_short} the short path"
    )
    print(
        "NLR detoured while node 1 was hot, then re-selected the short path"
        "\nafter the hotspot moved — no packets were lost in either switch."
    )


if __name__ == "__main__":
    main()
