#!/usr/bin/env python3
"""Design-space exploration demo: tune NLR's gossip curve automatically.

The paper hand-picks the load-adaptive gossip parameters (γ, p_min, the
load-mix weights).  This demo lets the ``repro.dse`` subsystem find them:
a seeded evolutionary search over a three-dimensional slice of the NLR
parameter space, evaluated on a loaded 4×4 mesh, with surrogate pruning
skipping predictably poor candidates and a Pareto report of the
delivery/latency/overhead trade-off at the end.

Everything is deterministic: re-running this script reproduces the same
final population hash, and killing it mid-run and re-running resumes from
``results/dse-example/`` plus the per-cell checkpoints instead of
starting over.

Run:
    python examples/dse_nlr_tuning.py            (~1-2 minutes)
"""

from pathlib import Path

from repro.dse import (
    ContinuousDim,
    EvolutionarySearch,
    ParameterSpace,
    SearchSettings,
    ascii_scatter,
    load_state,
    pareto_table,
)
from repro.experiments.scenario import ScenarioConfig

OUT = Path("results/dse-example")


def main() -> None:
    space = ParameterSpace(
        "nlr-demo",
        [
            ContinuousDim("gamma", "nlr.gamma", 0.0, 1.0),
            ContinuousDim("p_min", "nlr.p_min", 0.1, 0.8),
            ContinuousDim("queue_weight", "nlr.queue_weight", 0.0, 1.0),
        ],
    )
    base = ScenarioConfig(
        protocol="nlr", grid_nx=4, grid_ny=4, n_flows=6,
        flow_rate_pps=50.0, sim_time_s=12.0, warmup_s=2.0, seed=7,
    )
    settings = SearchSettings(
        population=8, generations=4, seed=11, elites=2,
        surrogate_min_train=8, oversample=2.0, prune_quantile=0.3,
    )

    print(f"searching {space.name}: {len(space)} dimensions, "
          f"{settings.population}×{settings.generations} evaluations budget")
    search = EvolutionarySearch(space, base, settings, out_dir=OUT)
    result = search.run(resume=True)  # picks up prior state if present

    best = result.best
    print(f"\nsimulations run: {result.simulations_run} "
          f"(pruned {result.evaluations_pruned} candidate evaluations)")
    print(f"best point: γ={best.point['gamma']:.3f} "
          f"p_min={best.point['p_min']:.3f} "
          f"queue_weight={best.point['queue_weight']:.3f}")
    for key in sorted(best.objectives):
        print(f"  {key} = {best.objectives[key]:.4g}")
    print(f"final population hash: {result.final_population_hash}\n")

    state = load_state(OUT)
    print(pareto_table(state, top=10))
    print()
    print(ascii_scatter(state, x_key="pdr", y_key="mean_delay_s"))


if __name__ == "__main__":
    main()
