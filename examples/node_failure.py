#!/usr/bin/env python3
"""Self-healing demo: crash the busiest relay mid-run and watch recovery.

A corner-to-corner CBR flow crosses a 3×3 mesh.  At t = 10 s the relay
carrying the traffic is crashed (radio off, MAC flushed, routing silenced);
at t = 20 s it comes back.  A per-second delivery timeline shows the
outage, AODV's RERR-driven re-discovery around the dead router, and the
return to normal.

Run:
    python examples/node_failure.py
"""

from repro.experiments.scenario import ScenarioConfig, build_network
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import CbrSource


def main() -> None:
    config = ScenarioConfig(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=1,
        sim_time_s=30.0, warmup_s=1.0, seed=11,
    )
    net = build_network(config)
    net.sources.clear()
    flow = FlowSpec(flow_id=0, src=0, dst=8, rate_pps=20.0,
                    start_s=1.0, stop_s=30.0)
    net.flows = [flow]
    net.sources.append(
        CbrSource(net.sim, net.stacks[0], flow, on_send=net.collector.on_send)
    )

    # Per-second delivery counter at the destination.
    deliveries_by_second: dict[int, int] = {}
    original_sink = net.sinks[8]

    def count(packet) -> None:
        second = int(net.sim.now)
        deliveries_by_second[second] = deliveries_by_second.get(second, 0) + 1
        net.collector.on_receive(packet, now=net.sim.now)

    net.stacks[8].receive_callback = count
    del original_sink

    net.start()
    net.sim.run(until=10.0)
    loads = [(s.routing.data_forwarded, s.node_id) for s in net.stacks]
    _, victim = max(loads)
    print(f"t=10 s: crashing node {victim} (the relay carrying the flow)")
    net.stacks[victim].fail()
    net.sim.schedule(20.0, net.stacks[victim].recover)
    net.sim.run(until=30.0)
    net.stop()

    print("\nsecond  delivered  bar")
    for second in range(1, 30):
        n = deliveries_by_second.get(second, 0)
        marker = ""
        if second == 10:
            marker = f"   << node {victim} crashes"
        elif second == 20:
            marker = f"   << node {victim} recovers"
        print(f"{second:6d}  {n:9d}  {'#' * n}{marker}")

    rec = net.collector.flows[0]
    print(
        f"\noverall: {rec.received}/{rec.sent} delivered "
        f"(PDR {rec.pdr:.3f}) — the dip after the crash is AODV detecting "
        "the dead link via MAC retry exhaustion, sending RERR, and "
        "re-discovering a route around the failed router."
    )


if __name__ == "__main__":
    main()
