#!/usr/bin/env python3
"""Render the reconstructed evaluation figures as terminal charts.

Regenerates (or loads from the on-disk cache) any numeric figures and
draws them with the built-in ASCII chart renderer — the whole evaluation
is viewable with zero plotting dependencies.

Run:
    python examples/figure_charts.py            # fig1 only (fast if cached)
    python examples/figure_charts.py fig1 fig6  # pick figures
"""

import sys

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import figure_charts


def main() -> None:
    names = sys.argv[1:] or ["fig1"]
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {unknown}; available: {sorted(ALL_FIGURES)}")
        raise SystemExit(2)
    for name in names:
        print(f"regenerating {name} (cached sweeps are reused) ...")
        result = ALL_FIGURES[name](True)
        print(result.render())
        for chart in figure_charts(result):
            print()
            print(chart)
        print()


if __name__ == "__main__":
    main()
