#!/usr/bin/env python3
"""Gateway hotspot: the workload wireless mesh networks exist to carry.

Ten upload flows converge on two Internet gateways of a 5×5 mesh at a rate
past the contention knee.  The example contrasts AODV (shortest-hop,
hotspot-blind) with NLR (cross-layer neighbourhood-load routing) and
prints, per scheme:

* delivery / delay / throughput;
* the per-node forwarding heat map (who carried the traffic) — watch NLR
  spread load across rings around the gateways where AODV burns a few
  relays;
* Jain's fairness index over that distribution.

Run:
    python examples/gateway_congestion.py
"""

import numpy as np

from repro import ScenarioConfig, run_scenario
from repro.metrics.fairness import jain_index, load_concentration
from repro.metrics.summary import format_table


def heat_row(label: str, per_node: np.ndarray, nx: int, ny: int) -> str:
    """Render per-node forwarded counts as a little ASCII heat grid."""
    scale = per_node.max() or 1.0
    glyphs = " .:-=+*#%@"
    lines = [label]
    for y in range(ny - 1, -1, -1):
        row = []
        for x in range(nx):
            v = per_node[y * nx + x] / scale
            row.append(glyphs[min(len(glyphs) - 1, int(v * (len(glyphs) - 1)))])
        lines.append("    " + " ".join(row))
    return "\n".join(lines)


def main() -> None:
    nx = ny = 5
    rows = []
    heats = []
    for protocol in ("aodv", "nlr"):
        config = ScenarioConfig(
            protocol=protocol,
            grid_nx=nx,
            grid_ny=ny,
            spacing_m=230.0,
            n_flows=10,
            flow_pattern="gateway",
            n_gateways=2,
            flow_rate_pps=55.0,
            sim_time_s=25.0,
            warmup_s=5.0,
            seed=50,
        )
        result = run_scenario(config)
        per_node = result.per_node_forwarded
        rows.append(
            [
                protocol,
                round(result.pdr, 4),
                round(result.mean_delay_s * 1000, 1),
                round(result.throughput_bps / 1e3, 1),
                round(jain_index(per_node), 3),
                round(load_concentration(per_node, top_k=3), 3),
            ]
        )
        heats.append(
            heat_row(f"\n{protocol}: forwarding heat (darker = busier)",
                     per_node, nx, ny)
        )
    print(
        format_table(
            ["protocol", "pdr", "delay_ms", "thr_kbps", "jain", "top3_share"],
            rows,
            title="5×5 mesh, 10 upload flows to 2 gateways @ 55 pps (past the knee)",
        )
    )
    for heat in heats:
        print(heat)
    print(
        "\nNLR's RREQs accumulate neighbourhood load and its destinations"
        "\nanswer the least-loaded request, so forwarding spreads over more"
        "\nrouters (higher Jain, lower top-3 share) and delivery holds up"
        "\nwhere AODV's fixed shortest paths overload the gateway ring."
    )


if __name__ == "__main__":
    main()
