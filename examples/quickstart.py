#!/usr/bin/env python3
"""Quickstart: run one wireless-mesh scenario under each routing scheme.

Builds a 4×4 mesh-router grid carrying four CBR flows, runs 20 simulated
seconds per protocol, and prints the headline metrics side by side.

Run:
    python examples/quickstart.py
"""

from repro import ScenarioConfig, run_scenario
from repro.metrics.summary import format_table


def main() -> None:
    rows = []
    for protocol in ("aodv", "gossip", "counter", "nlr", "oracle"):
        config = ScenarioConfig(
            protocol=protocol,
            grid_nx=4,
            grid_ny=4,
            n_flows=4,
            flow_rate_pps=10.0,
            sim_time_s=20.0,
            warmup_s=3.0,
            seed=7,
        )
        result = run_scenario(config)
        rows.append(
            [
                protocol,
                round(result.pdr, 4),
                round(result.mean_delay_s * 1000, 2),
                round(result.throughput_bps / 1e3, 1),
                int(result.rreq_tx),
                round(result.normalized_routing_load, 3),
                round(result.jain_fairness, 3),
            ]
        )
    print(
        format_table(
            ["protocol", "pdr", "delay_ms", "thr_kbps", "rreq", "nrl", "jain"],
            rows,
            title="4×4 mesh, 4 CBR flows @ 10 pps, 20 s",
        )
    )
    print(
        "\nAt light load every scheme delivers ~everything; differences in"
        "\noverhead (rreq, nrl) already show. Push flow_rate_pps up to ~50+"
        "\nto watch AODV collapse first — see examples/gateway_congestion.py."
    )


if __name__ == "__main__":
    main()
