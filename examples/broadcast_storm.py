#!/usr/bin/env python3
"""Broadcast-storm demonstration: why probabilistic RREQ damping exists.

Floods a random deployment at three densities under four suppression
policies — blind flooding, fixed-probability gossip, counter-based, and
the NLR load-adaptive policy — over the real 802.11 DCF MAC, so redundant
rebroadcasts genuinely collide.  Prints reachability versus the fraction
of rebroadcasts each policy saved.

Run:
    python examples/broadcast_storm.py
"""

from repro.experiments.storm import STORM_POLICIES, run_storm
from repro.metrics.summary import format_table


def main() -> None:
    rows = []
    for n_nodes in (20, 35, 50):
        for policy in STORM_POLICIES:
            r = run_storm(policy=policy, n_nodes=n_nodes, n_floods=10, seed=9)
            rows.append(
                [
                    n_nodes,
                    policy,
                    round(r["mean_degree"], 1),
                    round(r["reachability"], 3),
                    round(r["saved_rebroadcast_ratio"], 3),
                    int(r["rebroadcasts"]),
                ]
            )
    print(
        format_table(
            ["nodes", "policy", "degree", "reachability", "saved", "rebroadcasts"],
            rows,
            title="Broadcast storm: reachability vs saved rebroadcasts",
        )
    )
    print(
        "\nBlind flooding reaches everyone and saves nothing.  Gossip trades"
        "\na little reachability for large savings; counter-based saves more"
        "\nas density grows (more duplicates overheard during the RAD).  The"
        "\nload-adaptive policy behaves like blind flooding on an idle"
        "\nchannel — its damping engages only where the medium is busy,"
        "\nwhich is exactly the design intent."
    )


if __name__ == "__main__":
    main()
