"""NLR — cross-layer Neighbourhood Load Routing.

:class:`NlrRouting` composes the contribution's three mechanisms on top of
the shared AODV engine:

1. **Cross-layer load sensing** — a :class:`~repro.core.cross_layer.CrossLayerBus`
   samples the MAC's queue occupancy and channel busy ratio into a
   :class:`~repro.core.load_metric.LoadEstimator`; HELLO beacons advertise
   the smoothed value; a :class:`~repro.core.load_metric.NeighbourhoodLoad`
   aggregates own + advertised neighbour loads.

2. **Load-adaptive probabilistic RREQ forwarding** — the
   :class:`~repro.core.forwarding_policy.LoadAdaptiveGossip` policy damps
   the discovery flood in congested neighbourhoods.

3. **Load-aware route selection** — each RREQ accumulates the
   neighbourhood load of the nodes it traverses; the destination holds a
   short reply window, collects RREQ copies, and answers the one
   minimising ``path_load + hop_weight · hops``.  Duplicate RREQ copies
   update reverse routes when they carry a strictly better cost (plain
   AODV discards duplicates outright), so the RREP travels back along the
   selected path.  Intermediate replies are disabled: only the destination
   can compare whole-path loads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cross_layer import CrossLayerBus
from repro.core.forwarding_policy import LoadAdaptiveGossip
from repro.core.load_metric import LoadEstimator, NeighbourhoodLoad
from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.packet import Packet, RreqHeader

__all__ = ["NlrConfig", "NlrRouting"]


@dataclass(slots=True)
class NlrConfig:
    """NLR parameters layered over :class:`~repro.net.aodv.AodvConfig`.

    Attributes
    ----------
    aodv:
        Engine parameters.  ``dest_reply_wait_s`` defaults to 50 ms here
        (the reply window) and ``intermediate_reply`` to False.
    queue_weight:
        β blending queue occupancy vs busy ratio in the node load.
    ewma_alpha:
        Load EWMA smoothing factor.
    own_weight:
        α blending own load vs neighbour mean in the neighbourhood load.
    hop_weight:
        λ: hops-to-load exchange rate in the route-selection cost
        ``path_load + λ · hops`` (λ→∞ degenerates to shortest-hop AODV).
    sample_interval_s:
        Cross-layer sampling period.
    p_max, p_min, gamma:
        Load-adaptive forwarding probability parameters.
    always_first_hops, sparse_degree:
        Flood-liveness safeguards.
    adaptive_forwarding:
        Set False to disable mechanism 2 (ablation: route selection only).
    """

    aodv: AodvConfig = field(default_factory=lambda: AodvConfig(
        dest_reply_wait_s=0.05,
        intermediate_reply=False,
        # Periodic re-discovery is what lets the load-aware selection track
        # shifting congestion: the origin's route ages out every
        # active_route_timeout_s and is re-selected under the live load.
        origin_refresh_on_use=False,
        active_route_timeout_s=5.0,
    ))
    queue_weight: float = 0.5
    ewma_alpha: float = 0.3
    own_weight: float = 0.5
    hop_weight: float = 0.25
    sample_interval_s: float = 0.25
    p_max: float = 1.0
    p_min: float = 0.4
    gamma: float = 0.6
    always_first_hops: int = 1
    sparse_degree: int = 3
    adaptive_forwarding: bool = True

    def __post_init__(self) -> None:
        # Validate every tunable eagerly: these fields are exactly what
        # design-space exploration mutates, and a nonsense value must fail
        # at config construction — not minutes later inside a worker when
        # the LoadEstimator or forwarding policy is first instantiated.
        if self.hop_weight < 0:
            raise ValueError(f"hop_weight must be ≥ 0, got {self.hop_weight!r}")
        if self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        if not 0.0 <= self.queue_weight <= 1.0:
            raise ValueError(
                f"queue_weight must be in [0, 1], got {self.queue_weight!r}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}"
            )
        if not 0.0 <= self.own_weight <= 1.0:
            raise ValueError(
                f"own_weight must be in [0, 1], got {self.own_weight!r}"
            )
        if not 0.0 < self.p_min <= self.p_max <= 1.0:
            raise ValueError(
                "require 0 < p_min <= p_max <= 1, got "
                f"p_min={self.p_min!r} p_max={self.p_max!r}"
            )
        if not 0.0 <= self.gamma <= 1.0:
            # Load is in [0, 1] and p_max ≤ 1, so slopes above 1 only pin
            # the curve to p_min — reject them so searches cannot wander
            # into a flat (and misleadingly "insensitive") region.
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma!r}")
        if self.always_first_hops < 0 or self.sparse_degree < 0:
            raise ValueError("hop/degree safeguards must be ≥ 0")


class NlrRouting(AodvRouting):
    """One node's NLR instance.

    Parameters
    ----------
    config:
        NLR parameters (engine parameters inside ``config.aodv``).
    rng:
        Node-local generator (forwarding coin flips + engine jitter).
    """

    name = "nlr"
    uses_load_extension = True

    def __init__(self, config: NlrConfig, rng: np.random.Generator) -> None:
        policy = (
            LoadAdaptiveGossip(
                rng=rng,
                p_max=config.p_max,
                p_min=config.p_min,
                gamma=config.gamma,
                always_first_hops=config.always_first_hops,
                sparse_degree=config.sparse_degree,
            )
            if config.adaptive_forwarding
            else None
        )
        super().__init__(config.aodv, rng, rreq_policy=policy)
        self.nlr_config = config
        self.estimator = LoadEstimator(
            queue_weight=config.queue_weight, alpha_ewma=config.ewma_alpha
        )
        self.bus: CrossLayerBus | None = None
        self.neighbourhood: NeighbourhoodLoad | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, stack) -> None:  # type: ignore[override]
        super().attach(stack)
        assert self.neighbour_table is not None
        self.bus = CrossLayerBus(
            stack.sim, stack, sample_interval_s=self.nlr_config.sample_interval_s
        )
        self.bus.subscribe(self.estimator.on_sample)
        self.neighbourhood = NeighbourhoodLoad(
            self.estimator,
            self.neighbour_table,
            own_weight=self.nlr_config.own_weight,
        )

    def start(self) -> None:
        super().start()
        assert self.bus is not None
        self.bus.start()

    def stop(self) -> None:
        super().stop()
        if self.bus is not None:
            self.bus.stop()

    # ------------------------------------------------------------------ #
    # Contribution hooks (overriding the AODV engine)
    # ------------------------------------------------------------------ #
    def _own_load_contribution(self) -> float:
        assert self.neighbourhood is not None
        return self.neighbourhood.value()

    def _advertised_load(self) -> float:
        return self.estimator.load()

    def _rreq_candidate_cost(self, header: RreqHeader) -> float:
        return header.path_load + self.nlr_config.hop_weight * header.hop_count

    def _route_cost(self, hop_count: int, path_load: float) -> float:
        return path_load + self.nlr_config.hop_weight * hop_count

    def _handle_link_failure(self, neighbour: int, packet: Packet) -> None:
        # A MAC-reported failure is proof the neighbour is gone *now*:
        # besides invalidating routes (engine behaviour), drop its
        # neighbourhood-load record, or the dead node's stale advertised
        # load keeps biasing this node's aggregate — and hence every RREQ
        # cost it stamps — for up to neighbour_lifetime_s.
        if self.neighbour_table is not None:
            self.neighbour_table.drop(neighbour)
        super()._handle_link_failure(neighbour, packet)

    def _process_duplicate_rreq(
        self, packet: Packet, from_node: int, arrived_cost: float
    ) -> None:
        """Duplicate RREQ copies refine reverse routes and the destination
        reply window — the mechanism letting the RREP follow the best path
        rather than the fastest flood branch."""
        header: RreqHeader = packet.header
        self._update_route(
            dst=header.origin,
            next_hop=from_node,
            hop_count=header.hop_count + 1,
            seqno=header.origin_seq,
            cost=arrived_cost,
        )
        if header.dst == self.node_id:
            key = header.dedupe_key()
            window = self._reply_windows.get(key)
            if window is not None:
                cost = self._rreq_candidate_cost(header)
                if cost < window.best_cost:
                    window.best_cost = cost
                    window.best_header = header
