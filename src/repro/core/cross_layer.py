"""Cross-layer signal bus.

The "cross layer" in the paper's title is the flow of MAC-layer congestion
measurements into routing decisions.  Rather than letting the routing code
reach into MAC internals, each node owns a :class:`CrossLayerBus` that
periodically samples the MAC's two congestion signals and republishes them
to any number of subscribers.  This keeps the layers independently
testable and makes the ablation variants (queue-only, busy-only) one-line
configuration changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["LoadSample", "MacSignalSource", "CrossLayerBus"]


@dataclass(frozen=True, slots=True)
class LoadSample:
    """One sampled snapshot of a node's MAC congestion signals.

    Attributes
    ----------
    time:
        Sample timestamp.
    queue_occupancy:
        Interface-queue fill level in [0, 1].
    busy_ratio:
        Trailing-window channel busy fraction in [0, 1].
    """

    time: float
    queue_occupancy: float
    busy_ratio: float


class MacSignalSource(Protocol):
    """Anything exposing the two MAC congestion signals."""

    @property
    def queue_occupancy(self) -> float:  # pragma: no cover - protocol
        ...

    def channel_busy_ratio(self) -> float:  # pragma: no cover - protocol
        ...


class CrossLayerBus:
    """Periodic sampler + publisher of MAC congestion signals.

    Parameters
    ----------
    sim:
        Event engine.
    source:
        The MAC (or any :class:`MacSignalSource`).
    sample_interval_s:
        Sampling period; 0.25 s tracks per-second load swings while
        keeping overhead negligible.
    """

    def __init__(
        self,
        sim: Simulator,
        source: MacSignalSource,
        sample_interval_s: float = 0.25,
    ) -> None:
        if sample_interval_s <= 0:
            raise ValueError(
                f"sample interval must be positive, got {sample_interval_s!r}"
            )
        self.sim = sim
        self.source = source
        self.sample_interval_s = sample_interval_s
        self._subscribers: list[Callable[[LoadSample], None]] = []
        self._proc = PeriodicProcess(sim, sample_interval_s, self._sample)
        self.last_sample: LoadSample | None = None
        self.samples_taken = 0

    def subscribe(self, fn: Callable[[LoadSample], None]) -> None:
        """Register ``fn`` to receive every future sample."""
        self._subscribers.append(fn)

    def start(self) -> None:
        """Begin sampling (first sample after one interval)."""
        self._proc.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._proc.stop()

    def sample_now(self) -> LoadSample:
        """Take and publish an immediate sample (also used by tests)."""
        return self._sample()

    def _sample(self) -> LoadSample:
        s = LoadSample(
            time=self.sim.now,
            queue_occupancy=float(self.source.queue_occupancy),
            busy_ratio=float(self.source.channel_busy_ratio()),
        )
        self.last_sample = s
        self.samples_taken += 1
        for fn in self._subscribers:
            fn(s)
        return s
