"""The load-adaptive probabilistic RREQ-forwarding policy.

This is the "probabilistic flooding tweak" half of the contribution: a
node's rebroadcast probability for a route request *decreases with its
neighbourhood load*, so the discovery flood thins out exactly where the
network is congested — where redundant RREQs do the most collateral damage
— while staying near-certain in quiet regions.

.. math::

    p(NL) = \\max(p_{min},\\; p_{max} - \\gamma \\cdot NL)

with two safeguards taken from the probabilistic-broadcast literature (and
this group's own density-aware schemes):

* the first ``always_first_hops`` hops always forward, so floods cannot
  die in the source's immediate neighbourhood;
* nodes with fewer than ``sparse_degree`` neighbours always forward — in
  sparse regions every rebroadcast may be the only bridge.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.net.gossip import PolicyContext, RebroadcastDecision, RebroadcastPolicy

__all__ = ["LoadAdaptiveGossip"]


class LoadAdaptiveGossip(RebroadcastPolicy):
    """Rebroadcast with probability decreasing in neighbourhood load.

    Parameters
    ----------
    rng:
        Generator for the coin flips.
    p_max:
        Forwarding probability at zero load.
    p_min:
        Floor probability at full load (keeps discovery alive under
        saturation).
    gamma:
        Damping slope: probability lost per unit of neighbourhood load.
    always_first_hops:
        Hop radius around the origin that always forwards.
    sparse_degree:
        Nodes with strictly fewer neighbours always forward.
    load_provider:
        Optional override for the load source; by default the policy reads
        ``ctx.neighbourhood_load`` supplied by the protocol.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        p_max: float = 1.0,
        p_min: float = 0.4,
        gamma: float = 0.6,
        always_first_hops: int = 1,
        sparse_degree: int = 3,
        load_provider: Callable[[], float] | None = None,
    ) -> None:
        if not 0.0 < p_min <= p_max <= 1.0:
            raise ValueError(
                f"require 0 < p_min <= p_max <= 1, got p_min={p_min!r} p_max={p_max!r}"
            )
        if gamma < 0:
            raise ValueError(f"gamma must be ≥ 0, got {gamma!r}")
        if always_first_hops < 0 or sparse_degree < 0:
            raise ValueError("hop/degree safeguards must be ≥ 0")
        self.rng = rng
        self.p_max = p_max
        self.p_min = p_min
        self.gamma = gamma
        self.always_first_hops = always_first_hops
        self.sparse_degree = sparse_degree
        self.load_provider = load_provider
        self.name = f"nlr-gossip(γ={gamma:g})"
        self.forced_forwards = 0
        self.coin_flips = 0

    def probability(self, load: float) -> float:
        """Forwarding probability at neighbourhood load ``load``."""
        return max(self.p_min, self.p_max - self.gamma * max(0.0, min(1.0, load)))

    def decide(self, ctx: PolicyContext) -> RebroadcastDecision:
        if ctx.hop_count < self.always_first_hops:
            self.forced_forwards += 1
            return RebroadcastDecision(forward=True)
        if ctx.neighbour_count < self.sparse_degree:
            self.forced_forwards += 1
            return RebroadcastDecision(forward=True)
        load = (
            self.load_provider()
            if self.load_provider is not None
            else ctx.neighbourhood_load
        )
        self.coin_flips += 1
        p = self.probability(load)
        return RebroadcastDecision(forward=bool(self.rng.random() < p))
