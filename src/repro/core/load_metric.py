"""Load estimation and neighbourhood aggregation.

Two pieces:

* :class:`LoadEstimator` — turns the raw cross-layer samples into a smooth
  scalar *node load* in [0, 1]:

  .. math::

      L = \\beta \\cdot \\mathrm{EWMA}(q) + (1-\\beta) \\cdot \\mathrm{EWMA}(b)

  where *q* is interface-queue occupancy and *b* channel busy ratio.  The
  EWMA damps per-packet chatter so routes are not re-ranked by transient
  bursts; β weights queueing (own backlog) against contention (region
  business).

* :class:`NeighbourhoodLoad` — combines a node's own load with the loads
  its one-hop neighbours advertise in HELLOs:

  .. math::

      NL_i = \\alpha \\cdot L_i + (1-\\alpha) \\cdot
             \\overline{L_{j \\in N(i)}}

  This is the titled quantity: in a shared medium a node's effective
  congestion is a property of its contention neighbourhood, not of the
  node alone.  α = 0.5 by default; the ablation benchmarks sweep it.
"""

from __future__ import annotations

from repro.core.cross_layer import LoadSample
from repro.net.hello import NeighbourTable

__all__ = ["LoadEstimator", "NeighbourhoodLoad"]


class LoadEstimator:
    """EWMA-smoothed scalar node load from cross-layer samples.

    Parameters
    ----------
    queue_weight:
        β in the blend; 0 ignores the queue, 1 ignores the busy ratio.
        The two ablation variants in the benchmarks are exactly these
        endpoints.
    alpha_ewma:
        EWMA smoothing factor per sample (0 < α ≤ 1); with 0.25 s samples,
        0.3 gives a ~1 s effective memory.
    """

    def __init__(self, queue_weight: float = 0.5, alpha_ewma: float = 0.3) -> None:
        if not 0.0 <= queue_weight <= 1.0:
            raise ValueError(f"queue_weight must be in [0, 1], got {queue_weight!r}")
        if not 0.0 < alpha_ewma <= 1.0:
            raise ValueError(f"alpha_ewma must be in (0, 1], got {alpha_ewma!r}")
        self.queue_weight = queue_weight
        self.alpha_ewma = alpha_ewma
        self._queue_ewma = 0.0
        self._busy_ewma = 0.0
        self.samples_seen = 0

    def on_sample(self, sample: LoadSample) -> None:
        """Fold one cross-layer sample into the EWMAs (bus subscriber)."""
        a = self.alpha_ewma
        if self.samples_seen == 0:
            self._queue_ewma = sample.queue_occupancy
            self._busy_ewma = sample.busy_ratio
        else:
            self._queue_ewma += a * (sample.queue_occupancy - self._queue_ewma)
            self._busy_ewma += a * (sample.busy_ratio - self._busy_ewma)
        self.samples_seen += 1

    @property
    def queue_load(self) -> float:
        """Smoothed queue occupancy in [0, 1]."""
        return self._queue_ewma

    @property
    def busy_load(self) -> float:
        """Smoothed channel busy ratio in [0, 1]."""
        return self._busy_ewma

    def load(self) -> float:
        """The blended scalar node load in [0, 1]."""
        b = self.queue_weight
        return min(1.0, max(0.0, b * self._queue_ewma + (1.0 - b) * self._busy_ewma))


class NeighbourhoodLoad:
    """Aggregates own load with HELLO-advertised neighbour loads.

    Parameters
    ----------
    estimator:
        This node's :class:`LoadEstimator`.
    neighbour_table:
        The HELLO neighbour table carrying advertised loads.
    own_weight:
        α: weight of the node's own load versus the neighbour mean.
        1.0 degenerates to an own-load-only metric (ablation variant).
    """

    def __init__(
        self,
        estimator: LoadEstimator,
        neighbour_table: NeighbourTable,
        own_weight: float = 0.5,
    ) -> None:
        if not 0.0 <= own_weight <= 1.0:
            raise ValueError(f"own_weight must be in [0, 1], got {own_weight!r}")
        self.estimator = estimator
        self.neighbour_table = neighbour_table
        self.own_weight = own_weight

    def own_load(self) -> float:
        """This node's smoothed load."""
        return self.estimator.load()

    def value(self) -> float:
        """The neighbourhood load NL in [0, 1]."""
        own = self.estimator.load()
        neighbours = self.neighbour_table.neighbours()
        if not neighbours:
            return own
        mean_nbr = sum(n.load for n in neighbours) / len(neighbours)
        a = self.own_weight
        return min(1.0, max(0.0, a * own + (1.0 - a) * mean_nbr))
