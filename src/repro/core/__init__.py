"""The paper's contribution: cross-layer Neighbourhood Load Routing.

* :mod:`~repro.core.cross_layer` — the per-node signal bus carrying MAC
  congestion measurements (queue occupancy, channel busy ratio) up to the
  routing layer without layer-poking.
* :mod:`~repro.core.load_metric` — EWMA load estimation and the
  *neighbourhood load* aggregation over HELLO-advertised neighbour loads.
* :mod:`~repro.core.forwarding_policy` — the load-adaptive probabilistic
  RREQ-forwarding policy (the "probabilistic flooding tweak").
* :mod:`~repro.core.nlr` — :class:`~repro.core.nlr.NlrRouting`, the AODV
  subclass combining the pieces: load-accumulating RREQs, a destination
  reply window selecting the minimum-cost path, and damped flooding.
"""

from repro.core.cross_layer import CrossLayerBus, LoadSample
from repro.core.forwarding_policy import LoadAdaptiveGossip
from repro.core.load_metric import LoadEstimator, NeighbourhoodLoad
from repro.core.nlr import NlrConfig, NlrRouting

__all__ = [
    "CrossLayerBus",
    "LoadAdaptiveGossip",
    "LoadEstimator",
    "LoadSample",
    "NeighbourhoodLoad",
    "NlrConfig",
    "NlrRouting",
]
