"""Event-scheduling discrete-event simulator.

The engine is a classic binary-heap event loop.  Heap entries are plain
Python lists ``[time, priority, seq, state, fn, args]`` so ordering
comparisons run entirely in C (list lexicographic compare); ``seq`` is a
monotonically increasing insertion counter, so comparisons never reach the
callback fields and two events scheduled for the same instant with the
same priority fire in insertion order — which is what makes runs with a
fixed seed bit-identical across processes and platforms.

Design notes
------------
* Event-scheduling (callback) style rather than coroutine processes: for a
  packet-level network simulation the callback style is both faster in
  CPython and easier to reason about for deterministic replay (DESIGN.md §6).
* Cancellation is O(1): handles mark the heap entry dead and the loop
  skips dead entries when they surface, the standard *lazy deletion* idiom.
* The clock never goes backwards.  Scheduling strictly in the past raises
  :class:`~repro.sim.errors.SchedulingError`; scheduling *at* the current
  time is allowed (zero-delay events are common in layered protocol stacks).
* Fired entry lists are recycled through a bounded free pool, so the
  steady-state loop allocates no per-event list objects.  Handles snapshot
  their entry's ``seq`` and treat a mismatch as "already fired", which
  keeps recycled entries invisible to stale handles.

Batched execution (DESIGN.md §8)
--------------------------------
Two opt-in mechanisms let homogeneous event storms execute as one Python
call while preserving the scalar loop's exact ordering semantics:

* **Block events** (:meth:`Simulator.schedule_block`) — one heap entry
  standing for ``count`` logical events that share a timestamp, priority
  and handler.  The producer (e.g. the channel fanning one transmission
  out to N receivers) groups its same-instant schedule calls into a
  single entry; ``events_executed`` still advances by ``count``.
* **Batch handlers** (:meth:`Simulator.register_batch_handler`) — when the
  drain loop pops an event whose callback kind (the underlying function
  of a bound method) is registered, it collects the maximal run of
  consecutive pending entries with the *same time, priority and kind* and
  hands them to the vector handler as one call.  Heterogeneous or
  unregistered events fall back to the scalar dispatch unchanged.

Both paths mark every covered entry fired *before* user code runs, and the
batch is formed purely from heap order — so the sequence of callback
executions (and therefore every downstream ``schedule`` call and RNG draw)
is identical to the scalar loop's.  Handler contract: a vector handler must
execute every ``(fn, args)`` pair it is given, in order, and same-kind
same-instant events must not cancel each other (none of the repo's event
kinds do — cross-node interaction always goes through newly scheduled
events).
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.sim.errors import SchedulingError

__all__ = ["EventHandle", "Simulator"]

#: Default priority for ordinary events.  Lower values fire first among
#: events scheduled for the same instant.
DEFAULT_PRIORITY = 0

# Heap-entry slots (plain lists for C-speed heap comparisons).  Block
# entries carry a seventh slot, _COUNT; list comparison never reaches it
# because ``seq`` (slot 2) is unique.
_TIME, _PRIORITY, _SEQ, _STATE, _FN, _ARGS = range(6)
_COUNT = 6

# Entry states.  _PENDING_NOHANDLE marks entries created by the
# fire-and-forget :meth:`Simulator.schedule_cb` path: no EventHandle can
# reference them, so the run loop may recycle their lists through the free
# pool after they fire.  "Still pending" is therefore ``state < _FIRED``.
_PENDING, _PENDING_NOHANDLE, _FIRED, _CANCELLED = range(4)

# Heap compaction: once at least this many cancelled entries linger *and*
# they outnumber the live ones, the heap is rebuilt in place.  Rebuilding
# is O(n) and triggered at most once per Θ(n) cancellations, so the
# amortised cost per cancel stays O(1) while restart-heavy workloads
# (ACK/backoff timers re-armed per frame) no longer grow the heap — and
# every subsequent push/pop gets a log of a much smaller n.
_COMPACT_MIN_DEAD = 1024

# Bound on the fired-entry free pool.  Deep enough to absorb one
# transmission's receiver fan-out plus the timer churn behind it; small
# enough that an event storm's transient doesn't pin memory.
_POOL_MAX = 1024

# Module-level bindings: global lookup beats the attribute chain in the
# schedule hot path, and the chained ``now <= t < inf`` compare subsumes
# the old ``isfinite`` call (NaN fails both sides, +inf fails the right).
_heappush = heapq.heappush
_INF = math.inf


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Supports O(1) cancellation and queries.  ``expired`` becomes true once
    the event has either fired or been cancelled.

    Entries with a handle are never recycled through the engine's free
    pool (only the handle-less ``schedule_cb`` fast path feeds it), so a
    handle's view of its entry stays valid for the handle's lifetime.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator | None" = None) -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute time the event is (or was) scheduled for."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._entry[_STATE] == _CANCELLED

    @property
    def expired(self) -> bool:
        """True once the event has fired or been cancelled."""
        return self._entry[_STATE] >= _FIRED

    def cancel(self) -> None:
        """Cancel the event.

        Raises
        ------
        SchedulingError
            If the event already fired or was already cancelled.
        """
        if self._entry[_STATE] >= _FIRED:
            raise SchedulingError("event already fired or was already cancelled")
        self._entry[_STATE] = _CANCELLED
        self._entry[_FN] = None
        self._entry[_ARGS] = ()
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """Deterministic binary-heap discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0.0).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_stopped",
                 "_events_executed", "_dead", "_profiler", "_pool",
                 "_batch_handlers", "_batch_mode")

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SchedulingError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._heap: list[list] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._dead = 0  # cancelled entries still sitting in the heap
        self._profiler = None  # opt-in wall-time attribution (repro.obs)
        self._pool: list[list] = []  # recycled fired entry lists
        self._batch_handlers: dict[Any, Callable] = {}
        self._batch_mode = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._heap) - self._dead

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_dead_head()
        return self._heap[0][_TIME] if self._heap else None

    @property
    def profiler(self):
        """The attached :class:`~repro.obs.profiler.EngineProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler) -> None:
        """Attach (or detach, with ``None``) a wall-time profiler.

        Takes effect from the next :meth:`run` call.  With no profiler
        attached the event loop's per-event cost is unchanged apart from
        one local ``is not None`` check.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past or not finite.
        """
        if not (self._now <= time < _INF):
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now:.9f})"
            )
        entry = [time, priority, self._seq, _PENDING, fn, args]
        self._seq += 1
        _heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_cb(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        Identical scheduling semantics (same validation, same ``seq``
        consumption, same ordering) minus the handle allocation — for hot
        paths that never cancel, e.g. the channel's per-receiver fan-out.
        Entry lists come from (and return to) the engine's bounded free
        pool, so the steady-state fan-out path allocates nothing.
        """
        if not (self._now <= time < _INF):
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now:.9f})"
            )
        seq = self._seq
        pool = self._pool
        if pool:
            entry = pool.pop()
            entry[_TIME] = time
            entry[_PRIORITY] = priority
            entry[_SEQ] = seq
            entry[_STATE] = _PENDING_NOHANDLE
            entry[_FN] = fn
            entry[_ARGS] = args
        else:
            entry = [time, priority, seq, _PENDING_NOHANDLE, fn, args]
        self._seq = seq + 1
        _heappush(self._heap, entry)

    def schedule_in(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after a relative ``delay`` ≥ 0 seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self._now + delay, fn, *args, priority=priority)

    # ------------------------------------------------------------------ #
    # Batched execution (opt-in; see module docstring and DESIGN.md §8)
    # ------------------------------------------------------------------ #
    @property
    def batching(self) -> bool:
        """True once the batched drain loop is active for this simulator."""
        return self._batch_mode

    def enable_batching(self) -> None:
        """Switch :meth:`run` to the batched drain loop.

        Must happen before the simulator is running — the scalar loop does
        not understand block entries, so flipping mid-drain would corrupt
        event accounting.
        """
        if self._running and not self._batch_mode:
            raise SchedulingError("cannot enable batching while running")
        self._batch_mode = True

    def register_batch_handler(
        self, kind: Callable[..., None], handler: Callable[["Simulator", list], None]
    ) -> None:
        """Route same-instant runs of ``kind`` events to ``handler``.

        ``kind`` is the callback whose events should coalesce; a bound
        method is keyed by its underlying function, so one registration
        covers every instance.  ``handler(sim, batch)`` receives the
        collected ``[(fn, args), ...]`` pairs in heap order and must
        execute all of them, in order.  Implies :meth:`enable_batching`.
        """
        self.enable_batching()
        self._batch_handlers[getattr(kind, "__func__", kind)] = handler

    def schedule_block(
        self,
        time: float,
        count: int,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule one heap entry standing for ``count`` logical events.

        ``fn(*args)`` runs once; ``events_executed`` advances by ``count``.
        The producer is asserting that the scalar path would have scheduled
        ``count`` consecutive same-time same-priority events here, so
        replacing them with one entry cannot reorder anything.  Requires
        :meth:`enable_batching` (the scalar loop would miscount blocks).
        """
        if not self._batch_mode:
            raise SchedulingError(
                "schedule_block requires enable_batching() before run()"
            )
        if not (self._now <= time < _INF):
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now:.9f})"
            )
        if count < 1:
            raise SchedulingError(f"block count must be >= 1, got {count!r}")
        entry = [time, priority, self._seq, _PENDING, fn, args, count]
        self._seq += 1
        _heappush(self._heap, entry)
        return EventHandle(entry, self)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float = math.inf, max_events: int | None = None) -> None:
        """Run until the queue drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed.

        Events scheduled exactly at ``until`` *are* executed (closed
        interval), matching the convention of ns-2/ns-3 ``Simulator::Stop``.
        """
        if self._batch_mode:
            self._run_batched(until, max_events)
            return
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        # Hoisted once per run(): heap primitives bound to locals, and the
        # disabled-profiler event loop pays one local is-None check per
        # event, nothing else.
        pop = heapq.heappop
        push = heapq.heappush
        pool = self._pool
        pool_max = _POOL_MAX
        profiler = self._profiler
        stride = profiler.sample_every if profiler is not None else 1
        tick = 0
        try:
            while heap and not self._stopped and budget > 0:
                entry = pop(heap)
                if entry[_STATE] == _CANCELLED:
                    self._dead -= 1
                    continue
                if entry[_TIME] > until:
                    # Put it back for a later run() call; advance to bound.
                    push(heap, entry)
                    if math.isfinite(until):
                        self._now = until
                    break
                self._now = entry[_TIME]
                recycle = entry[_STATE] == _PENDING_NOHANDLE
                entry[_STATE] = _FIRED
                fn = entry[_FN]
                args = entry[_ARGS]
                entry[_FN] = None  # release references
                entry[_ARGS] = ()
                if recycle and len(pool) < pool_max:
                    pool.append(entry)
                if profiler is None:
                    fn(*args)
                else:
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        t1 = perf_counter()
                        fn(*args)
                        profiler.record(fn, perf_counter() - t1)
                    else:
                        profiler.count_only(fn)
                        fn(*args)
                self._events_executed += 1
                budget -= 1
            else:
                if not heap and math.isfinite(until) and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def _run_batched(self, until: float, max_events: int | None) -> None:
        """Batched drain loop: scalar-identical ordering, fewer Python calls.

        Differences from the scalar loop are strictly mechanical: block
        entries fire once but count ``entry[_COUNT]`` events, and maximal
        same-(time, priority, kind) runs of registered callbacks dispatch
        through their vector handler.  Every covered entry is marked fired
        before any user code runs, so lazily-deleted cancellations and
        ``events_executed`` accounting behave exactly as in the scalar loop.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        pool = self._pool
        pool_max = _POOL_MAX
        handlers = self._batch_handlers
        profiler = self._profiler
        stride = profiler.sample_every if profiler is not None else 1
        tick = 0
        try:
            while heap and not self._stopped and budget > 0:
                entry = pop(heap)
                if entry[_STATE] == _CANCELLED:
                    self._dead -= 1
                    continue
                if entry[_TIME] > until:
                    push(heap, entry)
                    if math.isfinite(until):
                        self._now = until
                    break
                self._now = entry[_TIME]
                recycle = entry[_STATE] == _PENDING_NOHANDLE
                entry[_STATE] = _FIRED
                fn = entry[_FN]
                args = entry[_ARGS]
                entry[_FN] = None
                entry[_ARGS] = ()
                if len(entry) == 7:
                    # Block entry: one call, _COUNT logical events.  Blocks
                    # are atomic — max_events may overshoot by at most one
                    # block, matching the "at least one event" contract.
                    n = entry[_COUNT]
                    if profiler is None:
                        fn(*args)
                    else:
                        t1 = perf_counter()
                        fn(*args)
                        profiler.record_batch(fn, perf_counter() - t1, n)
                    self._events_executed += n
                    budget -= n
                    continue
                kind = getattr(fn, "__func__", fn)
                handler = handlers.get(kind)
                if handler is None:
                    # Scalar fallback — byte-identical to the reference loop.
                    if recycle and len(pool) < pool_max:
                        pool.append(entry)
                    if profiler is None:
                        fn(*args)
                    else:
                        tick += 1
                        if tick >= stride:
                            tick = 0
                            t1 = perf_counter()
                            fn(*args)
                            profiler.record(fn, perf_counter() - t1)
                        else:
                            profiler.count_only(fn)
                            fn(*args)
                    self._events_executed += 1
                    budget -= 1
                    continue
                # Collect the maximal run of consecutive pending entries
                # sharing (time, priority, kind).  Formed entirely before
                # the handler runs: heap order — hence execution order — is
                # exactly what the scalar loop would have produced.
                t = entry[_TIME]
                pri = entry[_PRIORITY]
                batch = [(fn, args)]
                if recycle and len(pool) < pool_max:
                    pool.append(entry)
                while heap and len(batch) < budget:
                    head = heap[0]
                    if head[_TIME] != t or head[_PRIORITY] != pri:
                        break
                    if head[_STATE] == _CANCELLED:
                        pop(heap)
                        self._dead -= 1
                        continue
                    hfn = head[_FN]
                    if len(head) == 7 or getattr(hfn, "__func__", hfn) is not kind:
                        break
                    pop(heap)
                    recycle_h = head[_STATE] == _PENDING_NOHANDLE
                    head[_STATE] = _FIRED
                    batch.append((hfn, head[_ARGS]))
                    head[_FN] = None
                    head[_ARGS] = ()
                    if recycle_h and len(pool) < pool_max:
                        pool.append(head)
                n = len(batch)
                if profiler is None:
                    handler(self, batch)
                else:
                    t1 = perf_counter()
                    handler(self, batch)
                    profiler.record_batch(kind, perf_counter() - t1, n)
                self._events_executed += n
                budget -= n
            else:
                if not heap and math.isfinite(until) and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one live event.  Returns False if queue empty."""
        self._drop_dead_head()
        if not self._heap:
            return False
        self.run(max_events=1)
        return True

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; triggers lazy compaction."""
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        # In-place so a run() loop holding a reference to the heap list
        # keeps seeing the compacted queue.
        self._heap[:] = [e for e in self._heap if e[_STATE] < _FIRED]
        heapq.heapify(self._heap)
        self._dead = 0

    def _drop_dead_head(self) -> None:
        while self._heap and self._heap[0][_STATE] == _CANCELLED:
            heapq.heappop(self._heap)
            self._dead -= 1

    def drain(self) -> Iterator[tuple[float, Callable[..., None], tuple]]:
        """Remove and yield remaining live events as ``(time, fn, args)``
        tuples (mainly for tests)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[_STATE] < _FIRED:
                yield (entry[_TIME], entry[_FN], entry[_ARGS])
            else:
                self._dead -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending}, "
            f"executed={self._events_executed})"
        )
