"""Event-scheduling discrete-event simulator.

The engine is a classic binary-heap event loop.  Heap entries are plain
Python lists ``[time, priority, seq, state, fn, args]`` so ordering
comparisons run entirely in C (list lexicographic compare); ``seq`` is a
monotonically increasing insertion counter, so comparisons never reach the
callback fields and two events scheduled for the same instant with the
same priority fire in insertion order — which is what makes runs with a
fixed seed bit-identical across processes and platforms.

Design notes
------------
* Event-scheduling (callback) style rather than coroutine processes: for a
  packet-level network simulation the callback style is both faster in
  CPython and easier to reason about for deterministic replay (DESIGN.md §6).
* Cancellation is O(1): handles mark the heap entry dead and the loop
  skips dead entries when they surface, the standard *lazy deletion* idiom.
* The clock never goes backwards.  Scheduling strictly in the past raises
  :class:`~repro.sim.errors.SchedulingError`; scheduling *at* the current
  time is allowed (zero-delay events are common in layered protocol stacks).
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.sim.errors import SchedulingError

__all__ = ["EventHandle", "Simulator"]

#: Default priority for ordinary events.  Lower values fire first among
#: events scheduled for the same instant.
DEFAULT_PRIORITY = 0

# Heap-entry slots (plain lists for C-speed heap comparisons).
_TIME, _PRIORITY, _SEQ, _STATE, _FN, _ARGS = range(6)

# Entry states.
_PENDING, _FIRED, _CANCELLED = range(3)

# Heap compaction: once at least this many cancelled entries linger *and*
# they outnumber the live ones, the heap is rebuilt in place.  Rebuilding
# is O(n) and triggered at most once per Θ(n) cancellations, so the
# amortised cost per cancel stays O(1) while restart-heavy workloads
# (ACK/backoff timers re-armed per frame) no longer grow the heap — and
# every subsequent push/pop gets a log of a much smaller n.
_COMPACT_MIN_DEAD = 1024


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Supports O(1) cancellation and queries.  ``expired`` becomes true once
    the event has either fired or been cancelled.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator | None" = None) -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute time the event is (or was) scheduled for."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._entry[_STATE] == _CANCELLED

    @property
    def expired(self) -> bool:
        """True once the event has fired or been cancelled."""
        return self._entry[_STATE] != _PENDING

    def cancel(self) -> None:
        """Cancel the event.

        Raises
        ------
        SchedulingError
            If the event already fired or was already cancelled.
        """
        if self._entry[_STATE] != _PENDING:
            raise SchedulingError("event already fired or was already cancelled")
        self._entry[_STATE] = _CANCELLED
        self._entry[_FN] = None
        self._entry[_ARGS] = ()
        if self._sim is not None:
            self._sim._note_cancelled()


class Simulator:
    """Deterministic binary-heap discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in seconds (default 0.0).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_now", "_heap", "_seq", "_running", "_stopped",
                 "_events_executed", "_dead", "_profiler")

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SchedulingError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._heap: list[list] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._dead = 0  # cancelled entries still sitting in the heap
        self._profiler = None  # opt-in wall-time attribution (repro.obs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still in the queue."""
        return len(self._heap) - self._dead

    def peek(self) -> float | None:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_dead_head()
        return self._heap[0][_TIME] if self._heap else None

    @property
    def profiler(self):
        """The attached :class:`~repro.obs.profiler.EngineProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler) -> None:
        """Attach (or detach, with ``None``) a wall-time profiler.

        Takes effect from the next :meth:`run` call.  With no profiler
        attached the event loop's per-event cost is unchanged apart from
        one local ``is not None`` check.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``.

        Raises
        ------
        SchedulingError
            If ``time`` is in the past or not finite.
        """
        if time < self._now or not math.isfinite(time):
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self._now:.9f})"
            )
        entry = [time, priority, self._seq, _PENDING, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def schedule_in(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after a relative ``delay`` ≥ 0 seconds."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self._now + delay, fn, *args, priority=priority)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, until: float = math.inf, max_events: int | None = None) -> None:
        """Run until the queue drains, the clock passes ``until``, or
        ``max_events`` callbacks have executed.

        Events scheduled exactly at ``until`` *are* executed (closed
        interval), matching the convention of ns-2/ns-3 ``Simulator::Stop``.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        # Hoisted once per run(): the disabled-profiler event loop pays one
        # local is-None check per event, nothing else.
        profiler = self._profiler
        stride = profiler.sample_every if profiler is not None else 1
        tick = 0
        try:
            while heap and not self._stopped and budget > 0:
                entry = pop(heap)
                if entry[_STATE] == _CANCELLED:
                    self._dead -= 1
                    continue
                if entry[_TIME] > until:
                    # Put it back for a later run() call; advance to bound.
                    heapq.heappush(heap, entry)
                    if math.isfinite(until):
                        self._now = until
                    break
                self._now = entry[_TIME]
                entry[_STATE] = _FIRED
                fn = entry[_FN]
                args = entry[_ARGS]
                entry[_FN] = None  # release references
                entry[_ARGS] = ()
                if profiler is None:
                    fn(*args)
                else:
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        t1 = perf_counter()
                        fn(*args)
                        profiler.record(fn, perf_counter() - t1)
                    else:
                        profiler.count_only(fn)
                        fn(*args)
                self._events_executed += 1
                budget -= 1
            else:
                if not heap and math.isfinite(until) and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute exactly one live event.  Returns False if queue empty."""
        self._drop_dead_head()
        if not self._heap:
            return False
        self.run(max_events=1)
        return True

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; triggers lazy compaction."""
        self._dead += 1
        if (
            self._dead >= _COMPACT_MIN_DEAD
            and self._dead * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        # In-place so a run() loop holding a reference to the heap list
        # keeps seeing the compacted queue.
        self._heap[:] = [e for e in self._heap if e[_STATE] == _PENDING]
        heapq.heapify(self._heap)
        self._dead = 0

    def _drop_dead_head(self) -> None:
        while self._heap and self._heap[0][_STATE] == _CANCELLED:
            heapq.heappop(self._heap)
            self._dead -= 1

    def drain(self) -> Iterator[tuple[float, Callable[..., None], tuple]]:
        """Remove and yield remaining live events as ``(time, fn, args)``
        tuples (mainly for tests)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[_STATE] == _PENDING:
                yield (entry[_TIME], entry[_FN], entry[_ARGS])
            else:
                self._dead -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending}, "
            f"executed={self._events_executed})"
        )
