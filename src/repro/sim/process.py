"""Timer and periodic-process helpers layered on the event engine.

Protocol code wants restartable timers (AODV route timeouts, ACK timeouts,
backoff completion) and repeating activities (HELLO beacons, CBR sources,
load sampling).  Both are thin, allocation-light wrappers around
:meth:`repro.sim.engine.Simulator.schedule_in`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import EventHandle, Simulator
from repro.sim.errors import SchedulingError

__all__ = ["Timer", "PeriodicProcess"]


class Timer:
    """A restartable one-shot timer.

    The callback fires once, ``delay`` seconds after the most recent
    :meth:`start` / :meth:`restart`.  Starting a running timer raises;
    use :meth:`restart` to move the deadline.

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> t = Timer(sim, lambda: hits.append(sim.now))
    >>> t.start(2.0)
    >>> sim.run()
    >>> hits
    [2.0]
    """

    __slots__ = ("_sim", "_fn", "_args", "_handle")

    def __init__(self, sim: Simulator, fn: Callable[..., None], *args: Any) -> None:
        self._sim = sim
        self._fn = fn
        self._args = args
        self._handle: EventHandle | None = None

    @property
    def running(self) -> bool:
        """True while a firing is pending."""
        return self._handle is not None and not self._handle.expired

    @property
    def expiry(self) -> float | None:
        """Absolute time of the pending firing, or None when idle."""
        return self._handle.time if self.running else None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now.

        Raises
        ------
        SchedulingError
            If the timer is already running.
        """
        if self.running:
            raise SchedulingError("timer already running; use restart()")
        self._handle = self._sim.schedule_in(delay, self._fire)

    def restart(self, delay: float) -> None:
        """(Re)arm the timer, cancelling any pending firing first."""
        if self.running:
            self.cancel()
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer.  Cancelling an idle timer is a no-op."""
        if self.running:
            assert self._handle is not None
            self._handle.cancel()
        self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._fn(*self._args)


class PeriodicProcess:
    """Repeat a callback at a fixed period, with optional bounded jitter.

    Jitter desynchronises processes that would otherwise phase-lock (all
    nodes beaconing HELLO at the same instants creates artificial collision
    bursts — the classic simulation artefact).  When ``jitter_fn`` is given
    it is called before every firing and must return an offset in
    ``[0, period)`` added to that firing only.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Nominal interval between firings (seconds, > 0).
    fn:
        Callback invoked on each firing.
    jitter_fn:
        Optional ``() -> float`` returning per-firing jitter.
    """

    __slots__ = ("_sim", "_period", "_fn", "_args", "_jitter_fn", "_handle", "_fired")

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[..., None],
        *args: Any,
        jitter_fn: Callable[[], float] | None = None,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = float(period)
        self._fn = fn
        self._args = args
        self._jitter_fn = jitter_fn
        self._handle: EventHandle | None = None
        self._fired = 0

    @property
    def running(self) -> bool:
        """True while the process is active."""
        return self._handle is not None and not self._handle.expired

    @property
    def firings(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def period(self) -> float:
        """Nominal firing interval in seconds."""
        return self._period

    def start(self, initial_delay: float | None = None) -> None:
        """Begin firing.  First firing after ``initial_delay`` (default: one
        period, plus jitter if configured)."""
        if self.running:
            raise SchedulingError("periodic process already running")
        delay = self._period if initial_delay is None else initial_delay
        delay += self._jitter() if initial_delay is None else 0.0
        self._handle = self._sim.schedule_in(delay, self._fire)

    def stop(self) -> None:
        """Stop firing.  Stopping an idle process is a no-op."""
        if self.running:
            assert self._handle is not None
            self._handle.cancel()
        self._handle = None

    def _jitter(self) -> float:
        if self._jitter_fn is None:
            return 0.0
        j = self._jitter_fn()
        if not 0.0 <= j < self._period:
            raise SchedulingError(
                f"jitter {j!r} outside [0, period={self._period!r})"
            )
        return j

    def _fire(self) -> None:
        # Reschedule first so the callback may call stop() to end the cycle.
        self._handle = self._sim.schedule_in(self._period + self._jitter(), self._fire)
        self._fired += 1
        self._fn(*self._args)
