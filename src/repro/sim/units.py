"""Physical units, constants, and dB conversions.

All simulator-internal quantities use SI base units: seconds, metres, bits,
bits-per-second, watts.  Decibel quantities appear only at configuration
boundaries; convert once on the way in with the helpers here.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "SPEED_OF_LIGHT",
    "BOLTZMANN",
    "dbm_to_watt",
    "watt_to_dbm",
    "db_to_linear",
    "linear_to_db",
    "thermal_noise_watt",
    "bits_to_bytes",
    "bytes_to_bits",
    "airtime",
    "isclose_time",
]

MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT = 299_792_458.0

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380_649e-23


def dbm_to_watt(dbm: float | np.ndarray) -> float | np.ndarray:
    """Convert a power level in dBm to watts.

    >>> dbm_to_watt(0.0)
    0.001
    >>> round(dbm_to_watt(30.0), 9)
    1.0
    """
    return 10.0 ** ((np.asarray(dbm, dtype=float) - 30.0) / 10.0) if isinstance(
        dbm, np.ndarray
    ) else 10.0 ** ((dbm - 30.0) / 10.0)


def watt_to_dbm(watt: float | np.ndarray) -> float | np.ndarray:
    """Convert watts to dBm.  ``watt`` must be strictly positive.

    >>> watt_to_dbm(0.001)
    0.0
    """
    arr = np.asarray(watt, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("power must be strictly positive to express in dBm")
    out = 10.0 * np.log10(arr) + 30.0
    return out if isinstance(watt, np.ndarray) else float(out)


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a dB ratio to a linear ratio."""
    if isinstance(db, np.ndarray):
        return 10.0 ** (db / 10.0)
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear ratio (> 0) to dB."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0):
        raise ValueError("ratio must be strictly positive to express in dB")
    out = 10.0 * np.log10(arr)
    return out if isinstance(ratio, np.ndarray) else float(out)


def thermal_noise_watt(bandwidth_hz: float, temperature_k: float = 290.0,
                       noise_figure_db: float = 0.0) -> float:
    """Thermal noise floor ``kTB`` scaled by a receiver noise figure.

    >>> p = thermal_noise_watt(22e6, noise_figure_db=10.0)
    >>> -91.0 < watt_to_dbm(p) < -90.0   # ~-90.5 dBm for 802.11b w/ 10 dB NF
    True
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz!r}")
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return BOLTZMANN * temperature_k * bandwidth_hz * db_to_linear(noise_figure_db)


def bits_to_bytes(bits: int) -> int:
    """Bits → whole bytes (must divide evenly)."""
    if bits % 8:
        raise ValueError(f"{bits} bits is not a whole number of bytes")
    return bits // 8


def bytes_to_bits(nbytes: int) -> int:
    """Bytes → bits."""
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    return nbytes * 8


def airtime(bits: int, rate_bps: float) -> float:
    """Transmission duration of ``bits`` at ``rate_bps`` (seconds)."""
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps!r}")
    if bits < 0:
        raise ValueError(f"bit count must be non-negative, got {bits}")
    return bits / rate_bps


def isclose_time(a: float, b: float, tol: float = 1e-12) -> bool:
    """Tolerant comparison for simulation timestamps."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=tol)
