"""Discrete-event simulation kernel.

The :mod:`repro.sim` package provides the deterministic event-scheduling core
every other subsystem is built on:

* :class:`~repro.sim.engine.Simulator` — binary-heap event loop with a
  monotonically non-decreasing clock and stable (time, priority, insertion)
  ordering, so identical seeds replay bit-identically.
* :class:`~repro.sim.process.Timer` / :class:`~repro.sim.process.PeriodicProcess`
  — restartable one-shot and repeating activities layered on the engine.
* :class:`~repro.sim.rng.RandomStreams` — named, independently seeded
  :class:`numpy.random.Generator` substreams derived from a single root seed.
* :mod:`~repro.sim.units` — physical unit constants and dBm/mW conversions.
* :class:`~repro.sim.trace.Tracer` — structured, filterable event tracing.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.errors import SchedulingError, SimulationError
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "PeriodicProcess",
    "RandomStreams",
    "SchedulingError",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceRecord",
    "Tracer",
]
