"""Named, reproducible random-number streams.

Every source of randomness in a run (per-node MAC backoff, per-flow traffic,
placement, shadowing, gossip coin flips, ...) draws from its own
:class:`numpy.random.Generator`, spawned deterministically from one root
:class:`numpy.random.SeedSequence` keyed by a *name*.  Consequences:

* the same ``seed`` reproduces a run bit-identically;
* adding a new random consumer does not perturb existing streams (streams
  are keyed by name, not by creation order);
* two components never share a stream, so there is no hidden coupling
  between, say, traffic arrival times and backoff slots.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of named :class:`numpy.random.Generator` substreams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation run.

    Examples
    --------
    >>> rs = RandomStreams(seed=42)
    >>> a = rs.stream("mac.backoff.node3")
    >>> b = rs.stream("traffic.flow0")
    >>> a is rs.stream("mac.backoff.node3")   # memoised
    True
    >>> int(RandomStreams(42).stream("traffic.flow0").integers(100)) == int(b.integers(100))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The generator is derived from ``(seed, crc32(name))`` so the mapping
        from name to stream is stable regardless of request order.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(
                np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            )
            self._streams[name] = gen
        return gen

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
