"""Structured event tracing.

A :class:`Tracer` collects :class:`TraceRecord` tuples — ``(time, category,
node, event, details)`` — from every layer.  It is the debugging backbone of
the simulator: tests assert on traces, examples print filtered views, and
streaming sinks (:mod:`repro.obs.sinks`) persist full runs as JSONL.

Tracing is off by default and costs one attribute check per call site when
disabled, so leaving trace calls in hot paths is acceptable.

Memory model: the in-process record list is bounded by ``max_records``;
the sink is **not** — every accepted record reaches the sink even after
the retention bound is hit, so a streaming sink captures a million-event
discovery storm whole while the process keeps a bounded working set.
Records dropped from retention are counted (total and per category) and
announced once via the sink/stderr instead of vanishing silently.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time of the occurrence.
    category:
        Layer or subsystem tag, e.g. ``"phy"``, ``"mac"``, ``"net"``,
        ``"nlr"``, ``"app"``.
    node:
        Node identifier the record pertains to (-1 for global records).
    event:
        Short machine-readable event name, e.g. ``"tx_start"``.
    details:
        Free-form mapping with event-specific fields.
    """

    time: float
    category: str
    node: int
    event: str
    details: dict[str, Any]

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:12.6f}] {self.category:<4} n{self.node:<4} {self.event} {kv}"


class Tracer:
    """Collects trace records, with optional category filtering and sinks.

    Parameters
    ----------
    enabled:
        When False (default) every :meth:`record` call is a cheap no-op.
    categories:
        If given, only these categories are recorded.
    sink:
        Optional callable invoked with each accepted record (e.g. ``print``
        or a :class:`~repro.obs.sinks.JsonlTraceSink`); the sink sees
        every accepted record even once in-memory retention is full.
    max_records:
        In-memory retention bound.  Records beyond it still reach the
        sink; they are only dropped from the in-process list, counted in
        :attr:`dropped` / :attr:`dropped_by_category`, and announced once
        (via ``sink.warn`` when available, else stderr).
    retain:
        When False, no records are kept in memory at all (pure streaming;
        :meth:`filter` then sees nothing).  Retention drops are not
        counted in this mode — nothing was ever meant to be retained.
    """

    def __init__(
        self,
        enabled: bool = False,
        categories: set[str] | None = None,
        sink: Callable[[TraceRecord], None] | None = None,
        max_records: int = 1_000_000,
        retain: bool = True,
    ) -> None:
        self.enabled = enabled
        self._categories = categories
        self._sink = sink
        self._max = max_records
        self._retain = retain
        self._records: list[TraceRecord] = []
        self.recorded = 0
        self.dropped = 0
        self.dropped_by_category: dict[str, int] = {}
        self._overflow_warned = False

    @property
    def sink(self) -> Callable[[TraceRecord], None] | None:
        """The attached sink, if any."""
        return self._sink

    def set_sink(self, sink: Callable[[TraceRecord], None] | None) -> None:
        """Attach (or detach) the streaming sink."""
        self._sink = sink

    def record(
        self, time: float, category: str, node: int, event: str, **details: Any
    ) -> None:
        """Record one occurrence (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        rec = TraceRecord(time, category, node, event, details)
        self.recorded += 1
        if self._retain:
            if len(self._records) < self._max:
                self._records.append(rec)
            else:
                self.dropped += 1
                self.dropped_by_category[category] = (
                    self.dropped_by_category.get(category, 0) + 1
                )
                if not self._overflow_warned:
                    self._overflow_warned = True
                    self._warn_overflow()
        if self._sink is not None:
            self._sink(rec)

    def _warn_overflow(self) -> None:
        message = (
            f"Tracer retention full ({self._max} records): further records "
            "are dropped from memory (streaming sinks still receive them); "
            "see Tracer.dropped / dropped_by_category for counts"
        )
        warn = getattr(self._sink, "warn", None)
        if warn is not None:
            warn(message)
        else:
            print(f"warning: {message}", file=sys.stderr)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __str__(self) -> str:
        by_cat = ", ".join(
            f"{cat}:{n}" for cat, n in sorted(self.dropped_by_category.items())
        )
        dropped = f", dropped={self.dropped}" + (
            f" ({by_cat})" if by_cat else ""
        ) if self.dropped else ""
        return (
            f"Tracer(enabled={self.enabled}, recorded={self.recorded}, "
            f"retained={len(self._records)}{dropped})"
        )

    def summary(self) -> dict[str, Any]:
        """Machine-readable accounting: recorded/retained/dropped counts."""
        retained_by_category: dict[str, int] = {}
        for r in self._records:
            retained_by_category[r.category] = (
                retained_by_category.get(r.category, 0) + 1
            )
        return {
            "recorded": self.recorded,
            "retained": len(self._records),
            "retained_by_category": dict(sorted(retained_by_category.items())),
            "dropped": self.dropped,
            "dropped_by_category": dict(sorted(self.dropped_by_category.items())),
        }

    def filter(
        self,
        category: str | None = None,
        node: int | None = None,
        event: str | None = None,
    ) -> list[TraceRecord]:
        """Records matching every given criterion."""
        out = []
        for r in self._records:
            if category is not None and r.category != category:
                continue
            if node is not None and r.node != node:
                continue
            if event is not None and r.event != event:
                continue
            out.append(r)
        return out

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`filter` criteria."""
        return len(self.filter(**kwargs))

    def clear(self) -> None:
        """Discard all retained records and reset drop accounting."""
        self._records.clear()
        self.recorded = 0
        self.dropped = 0
        self.dropped_by_category.clear()
        self._overflow_warned = False
