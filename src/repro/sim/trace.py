"""Structured event tracing.

A :class:`Tracer` collects :class:`TraceRecord` tuples — ``(time, category,
node, event, details)`` — from every layer.  It is the debugging backbone of
the simulator: tests assert on traces, and examples print filtered views.

Tracing is off by default and costs one attribute check per call site when
disabled, so leaving trace calls in hot paths is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time of the occurrence.
    category:
        Layer or subsystem tag, e.g. ``"phy"``, ``"mac"``, ``"net"``,
        ``"nlr"``, ``"app"``.
    node:
        Node identifier the record pertains to (-1 for global records).
    event:
        Short machine-readable event name, e.g. ``"tx_start"``.
    details:
        Free-form mapping with event-specific fields.
    """

    time: float
    category: str
    node: int
    event: str
    details: dict[str, Any]

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time:12.6f}] {self.category:<4} n{self.node:<4} {self.event} {kv}"


class Tracer:
    """Collects trace records, with optional category filtering and sinks.

    Parameters
    ----------
    enabled:
        When False (default) every :meth:`record` call is a cheap no-op.
    categories:
        If given, only these categories are recorded.
    sink:
        Optional callable invoked with each accepted record (e.g. ``print``);
        records are retained in memory regardless.
    max_records:
        Safety bound; recording beyond it silently drops (count available
        via :attr:`dropped`).
    """

    def __init__(
        self,
        enabled: bool = False,
        categories: set[str] | None = None,
        sink: Callable[[TraceRecord], None] | None = None,
        max_records: int = 1_000_000,
    ) -> None:
        self.enabled = enabled
        self._categories = categories
        self._sink = sink
        self._max = max_records
        self._records: list[TraceRecord] = []
        self.dropped = 0

    def record(
        self, time: float, category: str, node: int, event: str, **details: Any
    ) -> None:
        """Record one occurrence (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        if len(self._records) >= self._max:
            self.dropped += 1
            return
        rec = TraceRecord(time, category, node, event, details)
        self._records.append(rec)
        if self._sink is not None:
            self._sink(rec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self,
        category: str | None = None,
        node: int | None = None,
        event: str | None = None,
    ) -> list[TraceRecord]:
        """Records matching every given criterion."""
        out = []
        for r in self._records:
            if category is not None and r.category != category:
                continue
            if node is not None and r.node != node:
                continue
            if event is not None and r.event != event:
                continue
            out.append(r)
        return out

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`filter` criteria."""
        return len(self.filter(**kwargs))

    def clear(self) -> None:
        """Discard all retained records."""
        self._records.clear()
        self.dropped = 0
