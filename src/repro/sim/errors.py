"""Exception hierarchy for the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled inconsistently.

    Examples: scheduling in the past, scheduling on a finished simulator,
    or cancelling an event twice.
    """


class ConfigurationError(SimulationError):
    """Raised when a model is constructed with invalid parameters."""
