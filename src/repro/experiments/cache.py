"""On-disk result cache for expensive experiment sweeps.

Figure regeneration is deterministic (every run derives from explicit
seeds), so sweep results are cached as JSON keyed by a hash of the exact
parameter set.  Re-rendering a figure, or a second figure sharing the same
sweep (Fig 1/Fig 2 share the offered-load sweep; Fig 4/Fig 6 share the
network-size sweep), costs nothing after the first computation.

Set the environment variable ``REPRO_NO_CACHE=1`` to bypass reads (writes
still happen), or delete ``results/cache/`` to invalidate everything.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable

__all__ = ["cache_dir", "cached", "cache_key"]


def cache_dir() -> Path:
    """Directory for cached sweep results (created on demand).

    Defaults to ``<repo>/results/cache``; override with ``REPRO_CACHE_DIR``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / "results" / "cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cache_key(name: str, params: dict[str, Any]) -> str:
    """Stable content hash for a named sweep with ``params``."""
    blob = json.dumps({"name": name, "params": params}, sort_keys=True, default=str)
    return f"{name}-{hashlib.sha256(blob.encode()).hexdigest()[:16]}"


def cached(
    name: str, params: dict[str, Any], compute: Callable[[], Any]
) -> Any:
    """Return the cached value for ``(name, params)`` or compute and store.

    The value must be JSON-serialisable (figure code stores plain
    lists/dicts of floats).
    """
    path = cache_dir() / f"{cache_key(name, params)}.json"
    if path.exists() and not os.environ.get("REPRO_NO_CACHE"):
        with path.open() as fh:
            return json.load(fh)["value"]
    value = compute()
    tmp = path.with_suffix(".tmp")
    with tmp.open("w") as fh:
        json.dump({"name": name, "params": params, "value": value}, fh, default=str)
    tmp.replace(path)
    return value
