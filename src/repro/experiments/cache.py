"""On-disk result cache for expensive experiment sweeps.

Figure regeneration is deterministic (every run derives from explicit
seeds), so sweep results are cached as JSON keyed by a hash of the exact
parameter set.  Re-rendering a figure, or a second figure sharing the same
sweep (Fig 1/Fig 2 share the offered-load sweep; Fig 4/Fig 6 share the
network-size sweep), costs nothing after the first computation.

Entries are schema-versioned: files from an older format, truncated
writes, and hand-mangled JSON are all treated as misses — the bad entry is
deleted and the value recomputed.  Writes go through a per-process unique
temp file followed by an atomic ``os.replace``, so concurrent writers of
the same key (e.g. parallel campaign workers) can never interleave bytes;
last writer wins with a complete file.

Set the environment variable ``REPRO_NO_CACHE=1`` to bypass reads (writes
still happen), or delete ``results/cache/`` to invalidate everything.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "CACHE_SCHEMA",
    "atomic_write_json",
    "cache_dir",
    "cache_key",
    "cached",
]

#: Bump when the on-disk entry layout changes; older entries then read as
#: misses and are recomputed instead of being misinterpreted.
CACHE_SCHEMA = 1

_MISS = object()


def cache_dir() -> Path:
    """Directory for cached sweep results (created on demand).

    Defaults to ``<repo>/results/cache``; override with ``REPRO_CACHE_DIR``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / "results" / "cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cache_key(name: str, params: dict[str, Any]) -> str:
    """Stable content hash for a named sweep with ``params``."""
    blob = json.dumps({"name": name, "params": params}, sort_keys=True, default=str)
    return f"{name}-{hashlib.sha256(blob.encode()).hexdigest()[:16]}"


def atomic_write_json(path: Path, payload: Any) -> None:
    """Write ``payload`` as JSON via a unique temp file + atomic replace.

    ``tempfile`` names the temp file uniquely per process/thread, so two
    writers of the same key never share a partially written file; the
    final ``os.replace`` is atomic on POSIX.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.stem}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, default=str)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_entry(path: Path) -> Any:
    """Load a cache entry; return ``_MISS`` (and delete the file) if it is
    missing, truncated, hand-mangled, or from an older schema."""
    try:
        with path.open() as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return _MISS
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):
        path.unlink(missing_ok=True)
        return _MISS
    if (
        not isinstance(data, dict)
        or data.get("schema") != CACHE_SCHEMA
        or "value" not in data
    ):
        path.unlink(missing_ok=True)
        return _MISS
    return data["value"]


def cached(
    name: str, params: dict[str, Any], compute: Callable[[], Any]
) -> Any:
    """Return the cached value for ``(name, params)`` or compute and store.

    The value must be JSON-serialisable (figure code stores plain
    lists/dicts of floats).
    """
    path = cache_dir() / f"{cache_key(name, params)}.json"
    if not os.environ.get("REPRO_NO_CACHE"):
        value = _read_entry(path)
        if value is not _MISS:
            return value
    value = compute()
    atomic_write_json(
        path,
        {"schema": CACHE_SCHEMA, "name": name, "params": params, "value": value},
    )
    return value
