"""Parameter sweeps over scenario configs."""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Sequence

from repro.analysis.stats import ConfidenceInterval
from repro.experiments.runner import ScenarioResult, replicate
from repro.experiments.scenario import ScenarioConfig

__all__ = ["SweepPoint", "sweep"]


class SweepPoint:
    """One (parameter value, protocol) cell of a sweep.

    Attributes
    ----------
    value:
        The swept parameter's value.
    protocol:
        Scheme name.
    runs:
        Individual replication results.
    summary:
        Metric name → mean ± CI across the replications.
    """

    def __init__(
        self,
        value: Any,
        protocol: str,
        runs: list[ScenarioResult],
        summary: dict[str, ConfidenceInterval],
    ) -> None:
        self.value = value
        self.protocol = protocol
        self.runs = runs
        self.summary = summary

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` across replications."""
        return self.summary[metric].mean

    def ci(self, metric: str) -> float:
        """Confidence half-width of ``metric``."""
        return self.summary[metric].half_width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepPoint({self.protocol}, value={self.value})"


def sweep(
    base: ScenarioConfig,
    protocols: Sequence[str],
    values: Sequence[Any],
    apply: Callable[[ScenarioConfig, Any], ScenarioConfig],
    n_runs: int = 3,
    progress: Callable[[str], None] | None = None,
) -> list[SweepPoint]:
    """Cross ``protocols`` × ``values``, replicating each cell.

    Parameters
    ----------
    base:
        Config template.
    protocols:
        Scheme names to compare (keys of
        :data:`repro.experiments.scenario.PROTOCOLS`).
    values:
        Swept parameter values.
    apply:
        ``(config, value) -> config`` binding one value into the config.
    n_runs:
        Replications per cell.
    progress:
        Optional status-line sink (e.g. ``print``).
    """
    points: list[SweepPoint] = []
    for value in values:
        for protocol in protocols:
            config = replace(apply(base, value), protocol=protocol)
            if progress is not None:
                progress(f"sweep: {protocol} @ {value} ({n_runs} runs)")
            runs, summary = replicate(config, n_runs=n_runs)
            points.append(SweepPoint(value, protocol, runs, summary))
    return points
