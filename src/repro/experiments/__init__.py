"""Experiment harness: scenarios, replicated runs, sweeps, figure/table
regeneration, and report rendering."""

from repro.experiments.runner import ScenarioResult, replicate, run_scenario
from repro.experiments.scenario import Network, ScenarioConfig, build_network
from repro.experiments.sweeps import sweep

__all__ = [
    "Network",
    "ScenarioConfig",
    "ScenarioResult",
    "build_network",
    "replicate",
    "run_scenario",
    "sweep",
]
