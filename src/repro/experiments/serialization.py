"""Scenario config ⇄ JSON serialisation.

Lets a run's exact configuration travel with its results (reproducibility)
and lets the CLI accept ``--config scenario.json``.  Nested config
dataclasses (PHY, MAC, AODV, NLR) round-trip too; unknown keys are
rejected loudly rather than silently ignored, so stale config files fail
fast instead of silently running something else.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.core.nlr import NlrConfig
from repro.experiments.scenario import ScenarioConfig
from repro.mac.csma import MacConfig
from repro.net.aodv import AodvConfig
from repro.phy.radio import PhyConfig

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]

_NESTED_TYPES = {
    "phy": PhyConfig,
    "mac_config": MacConfig,
    "aodv": AodvConfig,
    "nlr": NlrConfig,
}


def _dataclass_to_dict(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _dataclass_to_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, tuple):
        return list(obj)
    return obj


def config_to_dict(config: ScenarioConfig) -> dict[str, Any]:
    """Plain JSON-ready dict capturing every field of ``config``."""
    return _dataclass_to_dict(config)


def _build(cls: type, data: dict[str, Any]) -> Any:
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        if name in _NESTED_TYPES and isinstance(value, dict):
            # Covers ScenarioConfig.{phy,mac_config,aodv,nlr} and, because
            # _build recurses, NlrConfig's own nested aodv too.
            kwargs[name] = _build(_NESTED_TYPES[name], value)
        elif isinstance(value, list) and name in ("area_m", "speed_range"):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def config_from_dict(data: dict[str, Any]) -> ScenarioConfig:
    """Reconstruct a :class:`ScenarioConfig`, validating every key."""
    return _build(ScenarioConfig, data)


def save_config(config: ScenarioConfig, path: str | Path) -> Path:
    """Write ``config`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2) + "\n")
    return path


def load_config(path: str | Path) -> ScenarioConfig:
    """Load a :class:`ScenarioConfig` from a JSON file."""
    with Path(path).open() as fh:
        return config_from_dict(json.load(fh))
