"""Scenario config and result ⇄ JSON serialisation.

Lets a run's exact configuration travel with its results (reproducibility)
and lets the CLI accept ``--config scenario.json``.  Nested config
dataclasses (PHY, MAC, AODV, NLR) round-trip too; unknown keys are
rejected loudly rather than silently ignored, so stale config files fail
fast instead of silently running something else.

:class:`~repro.experiments.runner.ScenarioResult` round-trips as well
(:func:`result_to_dict` / :func:`result_from_dict`) — this is how the
parallel executor ships results across process boundaries and how
checkpoints persist them.  Floats survive exactly: JSON emits the shortest
round-tripping ``repr``, so a deserialised result aggregates byte-identically
to the in-process original.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.nlr import NlrConfig
from repro.experiments.runner import ScenarioResult
from repro.faults import FaultPlan
from repro.experiments.scenario import ScenarioConfig
from repro.mac.csma import MacConfig
from repro.net.aodv import AodvConfig
from repro.phy.radio import PhyConfig

__all__ = [
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "result_to_dict",
    "result_from_dict",
]

_NESTED_TYPES = {
    "phy": PhyConfig,
    "mac_config": MacConfig,
    "aodv": AodvConfig,
    "nlr": NlrConfig,
}


def _dataclass_to_dict(obj: Any) -> Any:
    if isinstance(obj, FaultPlan):
        # Kind-tagged layout (FaultPlan.to_dict): the generic dataclass
        # walk below would drop each event's type.
        return obj.to_dict()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _dataclass_to_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (tuple, list)):
        return [_dataclass_to_dict(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _dataclass_to_dict(v) for k, v in obj.items()}
    if isinstance(obj, np.generic):
        # Numpy scalars (e.g. a mutation drawn from a Generator) would
        # otherwise be stringified by ``json.dump(default=str)`` — the
        # config would hash and persist differently from its round-trip.
        return obj.item()
    return obj


def config_to_dict(config: ScenarioConfig) -> dict[str, Any]:
    """Plain JSON-ready dict capturing every field of ``config``."""
    return _dataclass_to_dict(config)


def _build(cls: type, data: dict[str, Any]) -> Any:
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)}")
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        if name in _NESTED_TYPES and isinstance(value, dict):
            # Covers ScenarioConfig.{phy,mac_config,aodv,nlr} and, because
            # _build recurses, NlrConfig's own nested aodv too.
            kwargs[name] = _build(_NESTED_TYPES[name], value)
        elif name == "fault_plan" and isinstance(value, dict):
            kwargs[name] = FaultPlan.from_dict(value)
        elif isinstance(value, list) and name in ("area_m", "speed_range"):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def config_from_dict(data: dict[str, Any]) -> ScenarioConfig:
    """Reconstruct a :class:`ScenarioConfig`, validating every key."""
    return _build(ScenarioConfig, data)


def save_config(config: ScenarioConfig, path: str | Path) -> Path:
    """Write ``config`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2) + "\n")
    return path


def load_config(path: str | Path) -> ScenarioConfig:
    """Load a :class:`ScenarioConfig` from a JSON file."""
    with Path(path).open() as fh:
        return config_from_dict(json.load(fh))


def result_to_dict(result: ScenarioResult) -> dict[str, Any]:
    """JSON-ready dict capturing every field of a :class:`ScenarioResult`."""
    return {
        "config": config_to_dict(result.config),
        "metrics": result.as_dict(),
        "packets_sent": result.packets_sent,
        "packets_received": result.packets_received,
        "per_node_forwarded": [float(x) for x in result.per_node_forwarded],
        "totals": {k: float(v) for k, v in result.totals.items()},
        "events_executed": result.events_executed,
        "wallclock_s": result.wallclock_s,
        "metrics_snapshot": {
            k: float(v) for k, v in result.metrics_snapshot.items()
        },
    }


def result_from_dict(data: dict[str, Any]) -> ScenarioResult:
    """Reconstruct a :class:`ScenarioResult` written by :func:`result_to_dict`."""
    m = data["metrics"]
    return ScenarioResult(
        config=config_from_dict(data["config"]),
        pdr=m["pdr"],
        mean_delay_s=m["mean_delay_s"],
        throughput_bps=m["throughput_bps"],
        mean_hops=m["mean_hops"],
        rreq_tx=m["rreq_tx"],
        control_packets=m["control_packets"],
        control_bytes=m["control_bytes"],
        normalized_routing_load=m["normalized_routing_load"],
        jain_fairness=m["jain_fairness"],
        packets_sent=data["packets_sent"],
        packets_received=data["packets_received"],
        per_node_forwarded=np.asarray(data["per_node_forwarded"], dtype=float),
        totals=dict(data["totals"]),
        events_executed=data["events_executed"],
        wallclock_s=data["wallclock_s"],
        # Absent in results serialised before the obs subsystem existed.
        metrics_snapshot=dict(data.get("metrics_snapshot", {})),
    )
