"""EXPERIMENTS.md generation: run every figure, render paper-vs-measured."""

from __future__ import annotations

import datetime
from pathlib import Path
from typing import Callable, Iterable

from repro.experiments.figures import ALL_FIGURES, FigureResult
from repro.metrics.asciichart import line_chart

__all__ = ["generate_report", "write_experiments_md", "figure_charts"]

#: Column suffixes that form one chart each when ≥ 2 series share them.
_CHART_SUFFIXES = ("_pdr", "_delay_ms", "_kbps", "_rreq", "_ms", "_nrl",
                   "_reach", "_saved")


def figure_charts(result: FigureResult) -> list[str]:
    """ASCII charts for a figure whose x column is numeric.

    One chart per recognised metric suffix shared by ≥ 2 columns; an empty
    list when the figure is categorical (summary tables, ablations).
    """
    try:
        xs = [float(row[0]) for row in result.rows]
    except (TypeError, ValueError):
        return []
    if len(xs) < 3:
        return []
    charts: list[str] = []
    consumed: set[int] = set()
    for suffix in _CHART_SUFFIXES:
        cols = [
            (i, h[: -len(suffix)])
            for i, h in enumerate(result.headers)
            if h.endswith(suffix) and i not in consumed
        ]
        if len(cols) < 2:
            continue
        consumed.update(i for i, _ in cols)
        series = {
            name: [float(row[i]) for row in result.rows] for i, name in cols
        }
        charts.append(
            line_chart(
                xs, series, width=56, height=12,
                title=f"{result.name}: {suffix.lstrip('_')}",
                x_label=result.headers[0],
            )
        )
    return charts

_PREAMBLE = """\
# EXPERIMENTS — paper-shaped expectations vs measured results

**Provenance caveat (see DESIGN.md):** the full text of *Cross layer
Neighbourhood Load Routing for Wireless Mesh Networks* (Zhao, Al-Dubai &
Min, IPPS 2010) was not available — the supplied source was a search-results
listing containing only the citation.  Every experiment below is therefore a
*reconstruction* of a standard 2010-era WMN routing evaluation exercising
the titled contribution, with the expected *shape* of each result derived
from the calibration bands and the authors' companion papers.  "Expected
shape" lines state the reconstructed claim; the tables are what this
repository's simulator actually measures.  Absolute numbers are not
comparable to the original (different simulator substrate); orderings and
trends are the reproduction target.

Regenerate any single figure with::

    python -m repro.experiments --figure fig1

or everything (writes this file) with::

    python -m repro.experiments --all --write

Parallel regeneration (``--workers N``) produces byte-identical figures
to a serial run — fixed-seed cells are bit-deterministic across
processes and the executor reassembles them in task order.  An
interrupted regeneration continues from per-cell checkpoints with
``--resume``.  ``--backend`` picks the execution backend (process pool,
persistent warm pool, or multi-launcher ``filestore``) and ``--adaptive
pdr:0.02`` replicates each cell only until its 95 % CI half-width meets
the declared target (``--no-adaptive`` forces the fixed budget; the
per-cell stop decisions are logged to a JSONL audit file) — see
docs/CAMPAIGNS.md.

The protocol parameters these figures hold fixed can themselves be
searched: ``repro-dse`` runs factorial screenings and seeded
evolutionary searches over any config fields, with surrogate pruning
and Pareto reporting — see docs/DSE.md.

"""


def generate_report(
    figures: Iterable[str] | None = None,
    quick: bool = True,
    progress: Callable[[str], None] | None = None,
) -> str:
    """Render the full Markdown report for the selected figures."""
    names = list(figures) if figures is not None else list(ALL_FIGURES)
    sections = [_PREAMBLE]
    sections.append(
        f"_Generated {datetime.date.today().isoformat()} in "
        f"{'quick' if quick else 'full'} mode._\n"
    )
    for name in names:
        fn = ALL_FIGURES[name]
        if progress is not None:
            progress(f"regenerating {name} ...")
        result: FigureResult = fn(quick)
        sections.append(f"## {result.name}: {result.title}\n")
        if result.expectation:
            sections.append(f"**Expected shape:** {result.expectation}\n")
        sections.append("```text")
        from repro.metrics.summary import format_table

        sections.append(format_table(result.headers, result.rows))
        for chart in figure_charts(result):
            sections.append("")
            sections.append(chart)
        sections.append("```\n")
        if result.notes:
            sections.append(f"**Measured:** {result.notes}\n")
    return "\n".join(sections)


def write_experiments_md(
    path: str | Path | None = None,
    quick: bool = True,
    progress: Callable[[str], None] | None = None,
) -> Path:
    """Regenerate every figure and write EXPERIMENTS.md; returns the path."""
    if path is None:
        path = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    path = Path(path)
    path.write_text(generate_report(quick=quick, progress=progress))
    return path
