"""CLI for regenerating the reconstructed figures and tables.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig1
    python -m repro.experiments --figure fig1 --figure fig2 --full
    python -m repro.experiments --all --write
    python -m repro.experiments --figure fig1 --workers 4
    python -m repro.experiments --all --workers 4 --resume

``--workers N`` fans the sweep cells of each figure out over N worker
processes (tables stay byte-identical to serial runs); ``--resume`` picks
an interrupted regeneration back up from its per-cell checkpoints instead
of recomputing finished cells.
"""

from __future__ import annotations

import argparse
import sys

from repro.exec import configure
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import write_experiments_md


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the reconstructed NLR evaluation figures.",
    )
    parser.add_argument(
        "--figure", action="append", default=[],
        help="figure/table id to regenerate (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="regenerate everything")
    parser.add_argument(
        "--full", action="store_true",
        help="full replication counts instead of the quick settings",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="with --all: write EXPERIMENTS.md at the repo root",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for sweep cells (default 1 = serial)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse per-cell checkpoints from an interrupted regeneration",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per simulation cell (default: unlimited)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-attempts per failed/timed-out cell (default 1)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be ≥ 1")
    configure(
        workers=args.workers,
        resume=args.resume,
        task_timeout_s=args.task_timeout,
        retries=args.retries,
        # Progress/telemetry once execution is more than a plain serial loop.
        progress=args.workers > 1 or args.resume,
    )

    if args.list:
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:18s} {doc}")
        return 0

    quick = not args.full
    if args.all:
        if args.write:
            path = write_experiments_md(quick=quick, progress=print)
            print(f"wrote {path}")
            return 0
        names = list(ALL_FIGURES)
    else:
        names = args.figure
        if not names:
            parser.error("give --figure, --all, or --list")
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {unknown}; try --list")
    for name in names:
        result = ALL_FIGURES[name](quick)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
