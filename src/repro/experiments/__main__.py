"""CLI for regenerating the reconstructed figures and tables.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments --figure fig1
    python -m repro.experiments --figure fig1 --figure fig2 --full
    python -m repro.experiments --all --write
    python -m repro.experiments --figure fig1 --workers 4
    python -m repro.experiments --all --workers 4 --resume

``--workers N`` fans the sweep cells of each figure out over N worker
processes (tables stay byte-identical to serial runs); ``--resume`` picks
an interrupted regeneration back up from its per-cell checkpoints instead
of recomputing finished cells.  ``--backend`` selects how workers run
(``pool``/``warm``/``filestore`` — see docs/CAMPAIGNS.md) and
``--adaptive METRIC:HALFWIDTH[:MIN_REPS]`` turns replication counts into
budgets with sequential-CI early stopping (``--no-adaptive`` is the
explicit fixed-budget default, byte-identical to historical output).
"""

from __future__ import annotations

import argparse
import sys

from repro.exec import configure, parse_adaptive_spec
from repro.exec.policy import BACKEND_CHOICES
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import write_experiments_md


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the reconstructed NLR evaluation figures.",
    )
    parser.add_argument(
        "--figure", action="append", default=[],
        help="figure/table id to regenerate (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="regenerate everything")
    parser.add_argument(
        "--full", action="store_true",
        help="full replication counts instead of the quick settings",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="with --all: write EXPERIMENTS.md at the repo root",
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for sweep cells (default 1 = serial)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse per-cell checkpoints from an interrupted regeneration",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="wall-clock budget per simulation cell (default: unlimited)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-attempts per failed/timed-out cell (default 1)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="execution backend (auto = serial at --workers 1, else pool)",
    )
    parser.add_argument(
        "--claim-ttl", type=float, default=600.0, metavar="S",
        help="filestore backend: age after which a foreign-host claim "
             "file is considered stale (default 600)",
    )
    parser.add_argument(
        "--adaptive", default=None, metavar="METRIC:HW[:MIN_REPS]",
        help="stop replicating a cell once METRIC's 95%% CI half-width "
             "is ≤ HW (e.g. pdr:0.01:3); replication counts become budgets",
    )
    parser.add_argument(
        "--no-adaptive", action="store_true",
        help="force the fixed-budget path (the default; wins over --adaptive)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error("--workers must be ≥ 1")
    adaptive = None
    if args.adaptive and not args.no_adaptive:
        try:
            adaptive = parse_adaptive_spec(args.adaptive)
        except ValueError as exc:
            parser.error(str(exc))
    configure(
        workers=args.workers,
        resume=args.resume,
        task_timeout_s=args.task_timeout,
        retries=args.retries,
        backend=args.backend,
        claim_ttl_s=args.claim_ttl,
        adaptive=adaptive,
        # Progress/telemetry once execution is more than a plain serial loop.
        progress=args.workers > 1 or args.resume,
    )

    if args.list:
        for name, fn in ALL_FIGURES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:18s} {doc}")
        return 0

    quick = not args.full
    if args.all:
        if args.write:
            path = write_experiments_md(quick=quick, progress=print)
            print(f"wrote {path}")
            return 0
        names = list(ALL_FIGURES)
    else:
        names = args.figure
        if not names:
            parser.error("give --figure, --all, or --list")
    unknown = [n for n in names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {unknown}; try --list")
    for name in names:
        result = ALL_FIGURES[name](quick)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
