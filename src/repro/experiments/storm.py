"""Broadcast-storm microcosm (reconstructed Fig 7).

One originator floods a series of application broadcasts through a random
deployment under a chosen suppression policy, over the real DCF MAC (so
redundant rebroadcasts genuinely collide).  Measured per policy:

* **reachability** — mean fraction of nodes receiving each flood;
* **saved rebroadcast ratio** — 1 − (rebroadcasts / receivers), i.e. the
  fraction of potential relays the policy silenced (blind flooding ≈ 0).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.forwarding_policy import LoadAdaptiveGossip
from repro.mac.csma import CsmaMac, MacConfig
from repro.net.addressing import BROADCAST_ADDR
from repro.net.flooding import BroadcastService
from repro.net.gossip import (
    BlindFlooding,
    CounterBasedPolicy,
    FixedProbabilityGossip,
    RebroadcastPolicy,
)
from repro.net.node import NodeStack
from repro.net.packet import Packet, PacketKind
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.topology.graph import ensure_connected_positions
from repro.topology.placement import random_positions

__all__ = ["run_storm", "STORM_POLICIES"]

#: Policy names accepted by :func:`run_storm`.
STORM_POLICIES = ("blind", "gossip", "counter", "nlr")


def _make_policy(
    name: str, rng: np.random.Generator, mac: CsmaMac
) -> RebroadcastPolicy:
    if name == "blind":
        return BlindFlooding()
    if name == "gossip":
        return FixedProbabilityGossip(0.65, rng)
    if name == "counter":
        return CounterBasedPolicy(3, rng)
    if name == "nlr":
        # Cross-layer damping straight off the MAC busy monitor.
        return LoadAdaptiveGossip(
            rng, load_provider=mac.channel_busy_ratio
        )
    raise ValueError(f"unknown storm policy {name!r}; choose from {STORM_POLICIES}")


def run_storm(
    policy: str = "blind",
    n_nodes: int = 30,
    area_m: tuple[float, float] = (1000.0, 1000.0),
    n_floods: int = 10,
    flood_interval_s: float = 0.5,
    seed: int = 1,
) -> dict[str, float]:
    """Run one storm scenario; returns the Fig 7 metrics.

    Keys of the result: ``reachability``, ``saved_rebroadcast_ratio``,
    ``rebroadcasts``, ``mean_degree``.
    """
    if n_nodes < 3:
        raise ValueError(f"need ≥ 3 nodes, got {n_nodes}")
    sim = Simulator()
    streams = RandomStreams(seed)
    placement_rng = streams.stream("topology.placement")
    positions = ensure_connected_positions(
        lambda: random_positions(n_nodes, area_m, placement_rng,
                                 min_separation_m=10.0),
        range_m=250.0,
    )
    channel = Channel(sim, TwoRayGround())
    stacks: list[NodeStack] = []
    services: list[BroadcastService] = []
    received: dict[int, set[int]] = {}  # flood seq -> receiving node ids

    for i in range(n_nodes):
        radio = Radio(sim, i, PhyConfig(), streams.stream(f"phy.rx.{i}"))
        channel.register(radio, tuple(positions[i]))
        mac = CsmaMac(sim, radio, MacConfig(), streams.stream(f"mac.{i}"))
        rng = streams.stream(f"policy.{i}")
        service = BroadcastService(
            _make_policy(policy, rng, mac), rng,
            neighbour_load_provider=mac.channel_busy_ratio,
        )
        stack = NodeStack(sim, i, mac, service)
        stack.receive_callback = (
            lambda pkt, _nid=i: received.setdefault(pkt.seq, set()).add(_nid)
        )
        stacks.append(stack)
        services.append(service)

    # Warm the neighbour tables with two HELLO-free beacon rounds: the
    # storm policies only need degree, learned from overheard floods, so a
    # priming broadcast from each node populates the tables.
    for i, stack in enumerate(stacks):
        prime = Packet(
            kind=PacketKind.DATA, src=i, dst=BROADCAST_ADDR, ttl=1,
            seq=-1000 - i, created_at=0.0,
        )
        sim.schedule(
            0.05 + 0.01 * i, stacks[i].routing.send_data, prime
        )

    origin = 0
    for k in range(n_floods):
        packet = Packet(
            kind=PacketKind.DATA, src=origin, dst=BROADCAST_ADDR,
            ttl=32, seq=k, payload_bytes=64, created_at=0.0,
        )
        sim.schedule(
            1.0 + k * flood_interval_s, stacks[origin].routing.send_data, packet
        )

    sim.run(until=1.0 + n_floods * flood_interval_s + 2.0)

    reach = [
        len(received.get(k, set())) / (n_nodes - 1) for k in range(n_floods)
    ]
    rebroadcasts = sum(
        s.rebroadcasts for s in services
    )
    receivers = sum(len(received.get(k, set())) for k in range(n_floods))
    saved = 1.0 - rebroadcasts / receivers if receivers else 0.0
    from repro.topology.graph import connectivity_graph, mean_degree

    return {
        "reachability": float(np.mean(reach)),
        "saved_rebroadcast_ratio": float(saved),
        "rebroadcasts": float(rebroadcasts),
        "mean_degree": mean_degree(connectivity_graph(positions, 250.0)),
    }
