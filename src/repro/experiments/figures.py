"""Per-figure/table experiment definitions (the reconstructed evaluation).

Each public function regenerates one table or figure from DESIGN.md §3 and
returns a :class:`FigureResult` — headers + rows of means (±95 % CI) in the
same layout the paper's figure would plot.  Expensive sweeps are cached on
disk (see :mod:`repro.experiments.cache`); figure pairs sharing a sweep
(Fig 1/2 on offered load, Fig 4/6 on network size) compute it once.

Every function accepts ``quick``: the default True uses the reduced
parameter set sized for CI-class machines (2 replications, 15–25 s of
simulated time); ``quick=False`` uses the full 5-replication settings.

Sweep cells execute through :mod:`repro.exec`: each grid is submitted as
one campaign of independent ``(config, seed)`` tasks, so configuring a
worker pool (``python -m repro.experiments --workers N``) parallelises
whole figures while producing byte-identical tables to serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.exec import current_policy, run_adaptive_cells, run_configs
from repro.experiments.cache import cache_dir, cached
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.fairness import jain_index, load_concentration
from repro.metrics.summary import format_table

__all__ = [
    "FigureResult",
    "table1_parameters",
    "fig1_pdr_vs_load",
    "fig2_delay_vs_load",
    "fig3_throughput_vs_flows",
    "fig4_overhead_vs_size",
    "fig5_load_distribution",
    "fig6_scalability",
    "fig7_broadcast_storm",
    "table2_summary",
    "ablation_metric",
    "ablation_policy",
    "ext_mobility",
    "ext_rtscts",
    "ext_energy",
    "validation_mac",
    "figure_resilience",
    "ALL_FIGURES",
]

#: Protocols compared in every line-plot figure.
COMPARED = ("aodv", "gossip", "counter", "nlr")


@dataclass(slots=True)
class FigureResult:
    """One regenerated table/figure.

    Attributes
    ----------
    name, title:
        Identifier (e.g. ``"fig1"``) and human title.
    headers:
        Column names; the first column is the x-axis (or row label).
    rows:
        Table body.
    expectation:
        The reconstructed paper-shaped claim this figure tests.
    notes:
        Free-form commentary on the measured shape.
    """

    name: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    expectation: str = ""
    notes: str = ""

    def render(self) -> str:
        """Monospaced text rendering."""
        out = format_table(self.headers, self.rows, title=f"{self.name}: {self.title}")
        if self.expectation:
            out += f"\nExpected shape: {self.expectation}"
        if self.notes:
            out += f"\nNotes: {self.notes}"
        return out


# ---------------------------------------------------------------------- #
# Shared sweep machinery
# ---------------------------------------------------------------------- #
def _reps(quick: bool) -> int:
    return 2 if quick else 5


def _point_reps(quick: bool) -> int:
    """Single-operating-point experiments are cheap enough for more seeds."""
    return 3 if quick else 6


def _summarize_cell(results: Sequence[ScenarioResult]) -> dict[str, float]:
    """Means + 95 % CI half-widths of one cell's replications, as floats."""
    out: dict[str, float] = {}
    for key, ci in summarize([r.as_dict() for r in results]).items():
        out[key] = ci.mean
        out[f"{key}_ci"] = ci.half_width
    return out


def _adaptive_tag() -> str | None:
    """Cache-key discriminator for the active adaptive policy (or ``None``).

    Adaptive summaries use fewer replicates, so they must never share a
    cache entry with fixed-budget ones; callers add this tag to their
    ``cached`` params only when a policy is active, keeping the default
    path's cache keys bit-for-bit historical.
    """
    adaptive = current_policy().adaptive
    return adaptive.describe() if adaptive is not None else None


def _replicated_cells(
    name: str,
    cells: Sequence[tuple[Any, ScenarioConfig]],
    n_runs: int,
) -> dict[Any, dict[str, float]]:
    """Replicate every ``(key, config)`` cell as ONE executor campaign.

    All ``len(cells) × n_runs`` runs are submitted together, so a
    configured worker pool (``repro.exec``, CLI ``--workers``) parallelises
    across the whole grid, not just within one cell.  Results are grouped
    back in task order — aggregation never sees completion order, which
    keeps parallel output byte-identical to serial.

    When the process-wide policy carries an
    :class:`~repro.exec.AdaptivePolicy`, ``n_runs`` becomes the per-cell
    *budget*: replication proceeds in waves (each wave one campaign across
    every unconverged cell) and stops per cell once the declared metric's
    CI half-width is tight — see :mod:`repro.exec.adaptive`.
    """
    adaptive = current_policy().adaptive
    if adaptive is not None and n_runs >= 2:
        keyed = [(f"c{i}", config) for i, (_, config) in enumerate(cells)]
        log_dir = current_policy().log_dir or cache_dir() / "runs"
        report = run_adaptive_cells(
            name, keyed, n_budget=n_runs, adaptive=adaptive,
            audit_path=log_dir / f"adaptive-{name}.jsonl",
        )
        return {
            key: _summarize_cell(report.results[f"c{i}"])
            for i, (key, _) in enumerate(cells)
        }
    keys: list[Any] = []
    configs: list[ScenarioConfig] = []
    tags: list[str] = []
    for key, config in cells:
        for k in range(n_runs):
            keys.append(key)
            configs.append(replace(config, seed=config.seed + k))
            tags.append(str(key))
    results = run_configs(name, configs, tags=tags)
    grouped: dict[Any, list[ScenarioResult]] = {}
    for key, result in zip(keys, results):
        grouped.setdefault(key, []).append(result)
    return {key: _summarize_cell(runs) for key, runs in grouped.items()}


def _protocol_sweep(
    sweep_name: str,
    base: ScenarioConfig,
    values: Sequence[Any],
    apply: Callable[[ScenarioConfig, Any], ScenarioConfig],
    quick: bool,
    protocols: Sequence[str] = COMPARED,
    variant: str = "",
) -> dict[str, dict[str, dict[str, float]]]:
    """protocol → str(value) → metric dict, computed once and cached.

    ``variant`` must change whenever the *behaviour* of ``apply`` changes —
    the cache key cannot see inside the callable.
    """
    n_runs = _reps(quick)
    params = {
        "base": repr(base),
        "values": list(map(str, values)),
        "protocols": list(protocols),
        "n_runs": n_runs,
        "variant": variant,
    }
    if _adaptive_tag() is not None:
        params["adaptive"] = _adaptive_tag()

    def compute() -> dict[str, dict[str, dict[str, float]]]:
        cells = [
            ((proto, str(value)), replace(apply(base, value), protocol=proto))
            for proto in protocols
            for value in values
        ]
        flat = _replicated_cells(sweep_name, cells, n_runs)
        table: dict[str, dict[str, dict[str, float]]] = {}
        for (proto, value_key), metrics in flat.items():
            table.setdefault(proto, {})[value_key] = metrics
        return table

    return cached(sweep_name, params, compute)


# ---------------------------------------------------------------------- #
# Operating points
# ---------------------------------------------------------------------- #
# Calibrated operating regime (see EXPERIMENTS.md preamble): a 5×5 mesh at
# 230 m spacing spans ≈2 carrier-sense domains, so spatial reuse exists and
# load-aware path selection has alternatives to choose between; the
# contention knee for 10 two-gateway CBR flows sits near 50 pps/flow.
def _load_sweep_base(quick: bool) -> tuple[ScenarioConfig, list[float]]:
    # batched_kernel: byte-identical to the scalar engine (the kernel tests
    # and benchmarks/baseline.py A/B pairs cross-check it every run), just
    # faster at sweep scale.
    base = ScenarioConfig(
        grid_nx=5, grid_ny=5, spacing_m=230.0, n_flows=10,
        flow_pattern="gateway", n_gateways=2,
        sim_time_s=25.0 if quick else 40.0, warmup_s=5.0, seed=100,
        batched_kernel=True,
    )
    rates = [15.0, 30.0, 45.0, 60.0, 75.0]
    return base, rates


def _size_sweep_base(quick: bool) -> tuple[ScenarioConfig, list[int]]:
    # Rate 40 pps: light for a 3×3 (PDR ≈ 1) but past the knee on a 5×5,
    # so the "delivery declines with size" shape is visible in-sweep.
    base = ScenarioConfig(
        spacing_m=230.0, flow_pattern="random", flow_rate_pps=40.0,
        sim_time_s=20.0 if quick else 40.0, warmup_s=5.0, seed=200,
        batched_kernel=True,
    )
    sizes = [3, 4, 5] if quick else [3, 4, 5, 6]
    return base, sizes


# The knee (≈50 pps for this mesh/flow mix) is where scheme differences are
# signal rather than saturation noise; fig5/table2/ablations measure here.
REFERENCE_POINT = dict(
    grid_nx=5, grid_ny=5, spacing_m=230.0, n_flows=10,
    flow_pattern="gateway", n_gateways=2, flow_rate_pps=50.0,
    warmup_s=5.0, seed=300, batched_kernel=True,
)


def _load_sweep(quick: bool):
    base, rates = _load_sweep_base(quick)
    return rates, _protocol_sweep(
        "load_sweep", base, rates,
        lambda c, r: replace(c, flow_rate_pps=r), quick,
    )


def _size_sweep(quick: bool):
    base, sizes = _size_sweep_base(quick)

    # Flows scale with n*n/2, so offered load grows faster than the spatial
    # reuse a larger grid adds: small grids sit below the knee, large grids
    # above it - the "delivery declines with size" shape has room to show.
    def apply(c: ScenarioConfig, n: int) -> ScenarioConfig:
        return replace(c, grid_nx=n, grid_ny=n, n_flows=max(2, (n * n) // 2))

    return sizes, _protocol_sweep(
        "size_sweep", base, sizes, apply, quick, variant="flows=n*n//2"
    )


# ---------------------------------------------------------------------- #
# Table 1 — simulation parameters
# ---------------------------------------------------------------------- #
def table1_parameters(quick: bool = True) -> FigureResult:
    """The fixed simulation parameters (paper's Table 1 analogue)."""
    cfg = ScenarioConfig()
    rows = [
        ["Propagation model", "Two-ray ground (ns-2 constants)"],
        ["Transmission range", "250 m"],
        ["Carrier-sense range", "550 m"],
        ["PHY data / basic rate", "11 / 2 Mb/s (802.11b)"],
        ["MAC", "IEEE 802.11 DCF, CW 31-1023, retry limit 7"],
        ["Interface queue", f"drop-tail, {cfg.mac_config.queue_capacity} packets"],
        ["Topology", "n×n mesh grid, 230 m spacing (≈2 CS domains at 5×5)"],
        ["Traffic", f"CBR over UDP, {cfg.payload_bytes} B payload"],
        ["HELLO interval", f"{cfg.aodv.hello_interval_s} s"],
        ["NLR reply window", f"{cfg.nlr.aodv.dest_reply_wait_s * 1000:.0f} ms"],
        ["NLR load blend", f"β={cfg.nlr.queue_weight} queue / busy"],
        ["NLR neighbourhood weight", f"α={cfg.nlr.own_weight}"],
        ["NLR damping", f"p∈[{cfg.nlr.p_min},{cfg.nlr.p_max}], γ={cfg.nlr.gamma}"],
        ["Replications", f"{_reps(quick)} seeds, mean ± 95% CI"],
    ]
    return FigureResult(
        name="table1",
        title="Simulation parameters",
        headers=["Parameter", "Value"],
        rows=rows,
    )


# ---------------------------------------------------------------------- #
# Fig 1 / Fig 2 — PDR and delay vs offered load
# ---------------------------------------------------------------------- #
def fig1_pdr_vs_load(quick: bool = True) -> FigureResult:
    """Packet delivery ratio vs per-flow CBR rate (gateway traffic)."""
    rates, table = _load_sweep(quick)
    rows = [
        [rate] + [round(table[p][str(rate)]["pdr"], 4) for p in COMPARED]
        for rate in rates
    ]
    knee = str(rates[-2])
    note = (
        f"measured at {knee} pps: nlr {table['nlr'][knee]['pdr']:.3f}, "
        f"gossip {table['gossip'][knee]['pdr']:.3f}, "
        f"aodv {table['aodv'][knee]['pdr']:.3f}; the schemes re-converge "
        "deep in saturation, where every queue overflows regardless of path"
    )
    return FigureResult(
        name="fig1",
        title="PDR vs offered load (5×5 mesh, 10 two-gateway flows)",
        headers=["rate_pps"] + [f"{p}_pdr" for p in COMPARED],
        rows=rows,
        expectation=(
            "all schemes ≈1 at light load; beyond the knee (~45-60 pps) "
            "AODV collapses first, probabilistic schemes (gossip/counter/NLR) "
            "retain markedly higher delivery"
        ),
        notes=note,
    )


def fig2_delay_vs_load(quick: bool = True) -> FigureResult:
    """Mean end-to-end delay vs per-flow CBR rate (same sweep as Fig 1)."""
    rates, table = _load_sweep(quick)
    rows = [
        [rate]
        + [round(table[p][str(rate)]["mean_delay_s"] * 1000, 3) for p in COMPARED]
        for rate in rates
    ]
    return FigureResult(
        name="fig2",
        title="End-to-end delay vs offered load (ms)",
        headers=["rate_pps"] + [f"{p}_delay_ms" for p in COMPARED],
        rows=rows,
        expectation=(
            "sub-10 ms for all at light load; past the knee delay inflates "
            "by ~50× for every scheme (drop-tail queues dominate); the "
            "surviving differences are second-order"
        ),
        notes=(
            "delivered-packet delay under saturation mostly measures queue "
            "depth, which is capped; delivery ratio (Fig 1) is the "
            "discriminating metric past the knee"
        ),
    )


# ---------------------------------------------------------------------- #
# Fig 3 — throughput vs number of flows
# ---------------------------------------------------------------------- #
def fig3_throughput_vs_flows(quick: bool = True) -> FigureResult:
    """Aggregate received throughput vs number of gateway flows."""
    base = ScenarioConfig(
        grid_nx=5, grid_ny=5, spacing_m=230.0,
        flow_pattern="gateway", n_gateways=2,
        flow_rate_pps=40.0, sim_time_s=20.0 if quick else 40.0,
        warmup_s=5.0, seed=400,
    )
    flows = [2, 6, 10, 14]
    table = _protocol_sweep(
        "flows_sweep", base, flows,
        lambda c, n: replace(c, n_flows=n), quick,
    )
    rows = [
        [n]
        + [
            round(table[p][str(n)]["throughput_bps"] / 1e3, 1)
            for p in COMPARED
        ]
        for n in flows
    ]
    return FigureResult(
        name="fig3",
        title="Aggregate throughput vs number of flows (kb/s)",
        headers=["n_flows"] + [f"{p}_kbps" for p in COMPARED],
        rows=rows,
        expectation=(
            "throughput rises with flows until the collision domain "
            "saturates, then plateaus/declines; the probabilistic schemes "
            "sustain the higher plateau"
        ),
    )


# ---------------------------------------------------------------------- #
# Fig 4 / Fig 6 — overhead and PDR/delay vs network size
# ---------------------------------------------------------------------- #
def fig4_overhead_vs_size(quick: bool = True) -> FigureResult:
    """Routing overhead (RREQ transmissions, NRL) vs grid size."""
    sizes, table = _size_sweep(quick)
    rows = []
    for n in sizes:
        row: list[Any] = [f"{n}x{n}"]
        for p in COMPARED:
            row.append(round(table[p][str(n)]["rreq_tx"], 1))
        for p in COMPARED:
            row.append(round(table[p][str(n)]["normalized_routing_load"], 3))
        rows.append(row)
    return FigureResult(
        name="fig4",
        title="Routing overhead vs network size",
        headers=["grid"]
        + [f"{p}_rreq" for p in COMPARED]
        + [f"{p}_nrl" for p in COMPARED],
        rows=rows,
        expectation=(
            "RREQ transmissions grow superlinearly with size under blind "
            "flooding; gossip/counter/NLR cut them by their suppression "
            "factor, widening with size"
        ),
    )


def fig6_scalability(quick: bool = True) -> FigureResult:
    """Delivery and delay vs grid size (same sweep as Fig 4)."""
    sizes, table = _size_sweep(quick)
    rows = []
    for n in sizes:
        row: list[Any] = [f"{n}x{n}"]
        for p in COMPARED:
            row.append(round(table[p][str(n)]["pdr"], 4))
        for p in COMPARED:
            row.append(round(table[p][str(n)]["mean_delay_s"] * 1000, 2))
        rows.append(row)
    return FigureResult(
        name="fig6",
        title="Scalability: PDR and delay (ms) vs network size",
        headers=["grid"]
        + [f"{p}_pdr" for p in COMPARED]
        + [f"{p}_ms" for p in COMPARED],
        rows=rows,
        expectation=(
            "PDR declines and delay grows with size for every scheme; the "
            "ordering from Fig 1 (NLR/gossip above AODV) is preserved at "
            "every size"
        ),
    )


# ---------------------------------------------------------------------- #
# Fig 5 — load distribution across mesh routers
# ---------------------------------------------------------------------- #
def fig5_load_distribution(quick: bool = True) -> FigureResult:
    """Per-node forwarding-load spread at the reference operating point."""
    n_runs = _point_reps(quick)
    params = {"point": REFERENCE_POINT, "n_runs": n_runs, "quick": quick}

    def compute() -> dict[str, dict[str, float]]:
        keys, configs = [], []
        for proto in COMPARED:
            config = ScenarioConfig(
                protocol=proto,
                sim_time_s=20.0 if quick else 40.0,
                **REFERENCE_POINT,
            )
            for k in range(n_runs):
                keys.append(proto)
                configs.append(replace(config, seed=config.seed + k))
        results = run_configs("fig5_load_distribution", configs, tags=keys)
        out: dict[str, dict[str, float]] = {}
        for proto in COMPARED:
            runs = [r for key, r in zip(keys, results) if key == proto]
            jains, top3, maxs = [], [], []
            for r in runs:
                per_node = np.asarray(r.per_node_forwarded)
                jains.append(jain_index(per_node))
                top3.append(load_concentration(per_node, top_k=3))
                maxs.append(float(per_node.max()))
            out[proto] = {
                "jain": float(np.mean(jains)),
                "top3_share": float(np.mean(top3)),
                "max_forwarded": float(np.mean(maxs)),
            }
        return out

    table = cached("fig5_load_distribution", params, compute)
    rows = [
        [
            p,
            round(table[p]["jain"], 4),
            round(table[p]["top3_share"], 4),
            round(table[p]["max_forwarded"], 1),
        ]
        for p in COMPARED
    ]
    return FigureResult(
        name="fig5",
        title="Forwarding-load distribution at the reference point",
        headers=["protocol", "jain_index", "top3_share", "max_forwarded"],
        rows=rows,
        expectation=(
            "NLR spreads forwarding over more routers: higher Jain index, "
            "lower top-3 concentration than shortest-hop AODV"
        ),
        notes=(
            f"measured Jain: nlr {table['nlr']['jain']:.3f} vs aodv "
            f"{table['aodv']['jain']:.3f}; busiest router forwarded "
            f"{table['nlr']['max_forwarded']:.0f} (nlr) vs "
            f"{table['aodv']['max_forwarded']:.0f} (aodv) packets"
        ),
    )


# ---------------------------------------------------------------------- #
# Fig 7 — broadcast-storm microcosm
# ---------------------------------------------------------------------- #
def fig7_broadcast_storm(quick: bool = True) -> FigureResult:
    """Flood reachability vs saved rebroadcasts across densities."""
    from repro.experiments.storm import run_storm

    densities = [20, 35, 50] if quick else [20, 30, 40, 50, 60]
    policies = ["blind", "gossip", "counter", "nlr"]
    n_runs = _reps(quick)
    params = {"densities": densities, "policies": policies, "n_runs": n_runs}

    def compute() -> dict[str, dict[str, dict[str, float]]]:
        out: dict[str, dict[str, dict[str, float]]] = {}
        for policy in policies:
            out[policy] = {}
            for n in densities:
                reach, saved = [], []
                for k in range(n_runs):
                    res = run_storm(policy=policy, n_nodes=n, seed=500 + k)
                    reach.append(res["reachability"])
                    saved.append(res["saved_rebroadcast_ratio"])
                out[policy][str(n)] = {
                    "reachability": float(np.mean(reach)),
                    "saved": float(np.mean(saved)),
                }
        return out

    table = cached("fig7_broadcast_storm", params, compute)
    rows = []
    for n in densities:
        row: list[Any] = [n]
        for p in policies:
            row.append(round(table[p][str(n)]["reachability"], 4))
        for p in policies:
            row.append(round(table[p][str(n)]["saved"], 4))
        rows.append(row)
    return FigureResult(
        name="fig7",
        title="Broadcast storm: reachability and saved rebroadcasts vs density",
        headers=["n_nodes"]
        + [f"{p}_reach" for p in policies]
        + [f"{p}_saved" for p in policies],
        rows=rows,
        expectation=(
            "blind flooding reaches everyone but saves nothing; gossip and "
            "counter save 30-60% of rebroadcasts at near-full reachability "
            "once density is moderate; the load-adaptive policy matches "
            "blind reachability at low load while saving under load"
        ),
    )


# ---------------------------------------------------------------------- #
# Table 2 — head-to-head summary
# ---------------------------------------------------------------------- #
def table2_summary(quick: bool = True) -> FigureResult:
    """All schemes (incl. oracle) at the reference operating point."""
    protocols = list(COMPARED) + ["dsdv", "oracle"]
    n_runs = _point_reps(quick)
    params = {"point": REFERENCE_POINT, "protocols": protocols, "n_runs": n_runs,
              "quick": quick}
    if _adaptive_tag() is not None:
        params["adaptive"] = _adaptive_tag()

    def compute() -> dict[str, dict[str, float]]:
        cells = [
            (
                proto,
                ScenarioConfig(
                    protocol=proto,
                    sim_time_s=20.0 if quick else 40.0,
                    **REFERENCE_POINT,
                ),
            )
            for proto in protocols
        ]
        return _replicated_cells("table2_summary", cells, n_runs)

    table = cached("table2_summary", params, compute)
    rows = []
    for p in protocols:
        m = table[p]
        rows.append(
            [
                p,
                round(m["pdr"], 4),
                round(m["mean_delay_s"] * 1000, 2),
                round(m["throughput_bps"] / 1e3, 1),
                round(m["normalized_routing_load"], 3),
                round(m["jain_fairness"], 4),
            ]
        )
    note = (
        f"measured: nlr pdr {table['nlr']['pdr']:.3f} "
        f"(jain {table['nlr']['jain_fairness']:.3f}) vs aodv "
        f"{table['aodv']['pdr']:.3f} ({table['aodv']['jain_fairness']:.3f}); "
        f"nlr pays nrl {table['nlr']['normalized_routing_load']:.3f} vs "
        f"aodv {table['aodv']['normalized_routing_load']:.3f} for its "
        "periodic re-discovery"
    )
    return FigureResult(
        name="table2",
        title="Head-to-head at the reference point (50 pps, 10 two-gateway flows)",
        headers=["protocol", "pdr", "delay_ms", "thr_kbps", "nrl", "jain"],
        rows=rows,
        expectation=(
            "oracle bounds delivery from above with zero overhead; NLR leads "
            "the on-demand schemes on the delivery + fairness combination, "
            "paying visibly more control overhead; AODV trails on fairness; "
            "proactive DSDV pays traffic-independent periodic overhead and "
            "cannot react to congestion at all"
        ),
        notes=note,
    )


# ---------------------------------------------------------------------- #
# Ablations
# ---------------------------------------------------------------------- #
def _ablation(
    name: str, title: str, protocols: Sequence[str], quick: bool, expectation: str
) -> FigureResult:
    n_runs = _point_reps(quick)
    params = {"point": REFERENCE_POINT, "protocols": list(protocols),
              "n_runs": n_runs, "quick": quick}
    if _adaptive_tag() is not None:
        params["adaptive"] = _adaptive_tag()

    def compute() -> dict[str, dict[str, float]]:
        cells = [
            (
                proto,
                ScenarioConfig(
                    protocol=proto,
                    sim_time_s=20.0 if quick else 40.0,
                    **REFERENCE_POINT,
                ),
            )
            for proto in protocols
        ]
        return _replicated_cells(name, cells, n_runs)

    table = cached(name, params, compute)
    rows = []
    for p in protocols:
        m = table[p]
        rows.append(
            [
                p,
                round(m["pdr"], 4),
                round(m["mean_delay_s"] * 1000, 2),
                round(m["rreq_tx"], 1),
                round(m["jain_fairness"], 4),
            ]
        )
    return FigureResult(
        name=name,
        title=title,
        headers=["variant", "pdr", "delay_ms", "rreq_tx", "jain"],
        rows=rows,
        expectation=expectation,
    )


def ablation_metric(quick: bool = True) -> FigureResult:
    """Ablation A: which cross-layer ingredients matter."""
    return _ablation(
        "ablation_metric",
        "Ablation A: load-metric ingredients",
        ["nlr", "nlr-queue", "nlr-busy", "nlr-own", "aodv"],
        quick,
        expectation=(
            "every load-sensing variant beats AODV on delivery or fairness "
            "at the knee; the single-signal and own-load-only variants "
            "cluster near the full blend (the ingredients are partially "
            "redundant in a mesh whose busy-ratio field is spatially smooth)"
        ),
    )


def ablation_policy(quick: bool = True) -> FigureResult:
    """Ablation B: damped flooding vs load-aware selection."""
    return _ablation(
        "ablation_policy",
        "Ablation B: mechanism split",
        ["nlr", "nlr-noprob", "nlr-noselect", "aodv"],
        quick,
        expectation=(
            "each mechanism alone retains most of the benefit at the knee "
            "(they overlap: both steer load away from hot regions); "
            "nlr-noprob pays more RREQ transmissions than full NLR because "
            "nothing damps its periodic re-discovery floods"
        ),
    )


# ---------------------------------------------------------------------- #
# Extension — robustness under node mobility (random waypoint)
# ---------------------------------------------------------------------- #
def ext_mobility(quick: bool = True) -> FigureResult:
    """Extension: delivery and repair traffic vs node speed (RWP).

    Not a reconstructed paper figure — an extension exercising the MANET
    heritage of the scheme family (the calibration bands situate the paper
    next to velocity-aware probabilistic route discovery work).  Every node
    moves under random waypoint; faster motion breaks links more often, so
    delivery falls and RERR traffic rises for every scheme.
    """
    base = ScenarioConfig(
        topology="random", n_nodes=20, area_m=(900.0, 900.0),
        n_flows=6, flow_rate_pps=10.0,
        sim_time_s=20.0 if quick else 40.0, warmup_s=4.0, seed=600,
    )
    speeds = [0.0, 4.0, 8.0, 12.0]
    protocols = ("aodv", "gossip", "nlr")

    def apply(c: ScenarioConfig, v: float) -> ScenarioConfig:
        if v <= 0:
            return replace(c, mobility="static")
        return replace(c, mobility="rwp", speed_range=(max(0.5, v / 2), v))

    table = _protocol_sweep(
        "mobility_sweep", base, speeds, apply, quick, protocols=protocols
    )
    rows = []
    for v in speeds:
        row: list[Any] = [v]
        for p_ in protocols:
            row.append(round(table[p_][str(v)]["pdr"], 4))
        for p_ in protocols:
            row.append(round(table[p_][str(v)]["rreq_tx"], 1))
        rows.append(row)
    return FigureResult(
        name="ext_mobility",
        title="Extension: PDR and discovery traffic vs node speed (RWP)",
        headers=["max_speed_mps"]
        + [f"{p_}_pdr" for p_ in protocols]
        + [f"{p_}_rreq" for p_ in protocols],
        rows=rows,
        expectation=(
            "monotone delivery decline with speed for every scheme; route "
            "repair traffic (RREQ) rises with speed; NLR's periodic "
            "re-discovery makes it naturally repair-ready, keeping its "
            "delivery within the pack under motion"
        ),
    )


# ---------------------------------------------------------------------- #
# Extension — RTS/CTS virtual carrier sense on/off
# ---------------------------------------------------------------------- #
def ext_rtscts(quick: bool = True) -> FigureResult:
    """Extension: does the RTS/CTS handshake pay off at the reference point?

    In a mesh whose 550 m carrier-sense range already covers every hidden
    pair (ns-2's classic parameterisation — see the MAC tests for the
    shrunk-CS case where RTS/CTS visibly protects DATA frames), the
    handshake is pure overhead: four extra control frames per data packet.
    This experiment quantifies that cost for AODV and NLR.
    """
    from repro.mac.csma import MacConfig

    protocols = ("aodv", "nlr")
    n_runs = _point_reps(quick)
    params = {"point": REFERENCE_POINT, "protocols": list(protocols),
              "n_runs": n_runs, "quick": quick}
    if _adaptive_tag() is not None:
        params["adaptive"] = _adaptive_tag()

    def compute() -> dict[str, dict[str, float]]:
        cells = [
            (
                f"{proto}{'+rts' if rts else ''}",
                ScenarioConfig(
                    protocol=proto,
                    mac_config=MacConfig(rts_cts_enabled=rts),
                    sim_time_s=20.0 if quick else 40.0,
                    **REFERENCE_POINT,
                ),
            )
            for proto in protocols
            for rts in (False, True)
        ]
        return _replicated_cells("ext_rtscts", cells, n_runs)

    table = cached("ext_rtscts", params, compute)
    rows = []
    for key in ("aodv", "aodv+rts", "nlr", "nlr+rts"):
        m = table[key]
        rows.append(
            [
                key,
                round(m["pdr"], 4),
                round(m["mean_delay_s"] * 1000, 2),
                round(m["throughput_bps"] / 1e3, 1),
            ]
        )
    return FigureResult(
        name="ext_rtscts",
        title="Extension: RTS/CTS handshake cost at the reference point",
        headers=["scheme", "pdr", "delay_ms", "thr_kbps"],
        rows=rows,
        expectation=(
            "with 550 m carrier sense there are no hidden pairs to protect, "
            "so RTS/CTS costs capacity: delivery/throughput drop slightly "
            "with the handshake on, for both schemes"
        ),
    )


# ---------------------------------------------------------------------- #
# Validation — simulated vs analytical DCF saturation throughput
# ---------------------------------------------------------------------- #
def validation_mac(quick: bool = True) -> FigureResult:
    """Substrate validation: DCF saturation throughput vs Bianchi's model.

    Not a paper figure — the simulator credibility check every ns-2-style
    release performs: n saturated stations around one sink, measured
    aggregate throughput against Bianchi (JSAC 2000).  Agreement within a
    few percent validates the carrier-sense/backoff/ACK machinery that all
    routing results stand on.
    """
    from repro.experiments.validation import saturation_comparison

    counts = [2, 5, 10, 15] if quick else [2, 5, 10, 15, 20, 30]
    duration = 4.0 if quick else 10.0
    params = {"counts": counts, "duration": duration}

    def compute() -> list[dict[str, float]]:
        return saturation_comparison(
            station_counts=counts, duration_s=duration
        )

    rows_data = cached("validation_mac", params, compute)
    rows = [
        [
            int(r["n"]),
            round(r["simulated_bps"] / 1e6, 4),
            round(r["bianchi_bps"] / 1e6, 4),
            round(r["error_pct"], 2),
        ]
        for r in rows_data
    ]
    worst = max(abs(r["error_pct"]) for r in rows_data)
    return FigureResult(
        name="validation_mac",
        title="DCF saturation throughput: simulator vs Bianchi model (Mb/s)",
        headers=["n_stations", "simulated_mbps", "bianchi_mbps", "error_pct"],
        rows=rows,
        expectation=(
            "simulated saturation throughput tracks the analytical curve "
            "within a few percent at every station count; throughput peaks "
            "at small n and declines slowly as collisions grow"
        ),
        notes=f"worst-case deviation from the model: {worst:.1f}%",
    )


# ---------------------------------------------------------------------- #
# Extension — communication energy and network lifetime
# ---------------------------------------------------------------------- #
def ext_energy(quick: bool = True) -> FigureResult:
    """Extension: does load spreading translate into network lifetime?

    Radios are metered with the classic WLAN power profile (idle draw
    zeroed: it is identical across schemes and would swamp the comparison).
    Reported per scheme at the reference point: the busiest node's
    communication energy, Jain fairness over per-node energy, and the
    *projected lifetime* — how long a battery of fixed size would last at
    the busiest node's burn rate (first-node-death convention).
    """
    from repro.experiments.runner import collect_result
    from repro.experiments.scenario import build_network
    from repro.metrics.fairness import jain_index
    from repro.phy.energy import EnergyConfig, attach_energy_meters

    protocols = ("aodv", "gossip", "nlr")
    n_runs = _point_reps(quick)
    sim_time = 20.0 if quick else 40.0
    battery_j = 100.0
    params = {"point": REFERENCE_POINT, "protocols": list(protocols),
              "n_runs": n_runs, "sim_time": sim_time, "battery": battery_j}

    def compute() -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for proto in protocols:
            max_j, jain_vals, lifetimes, pdrs = [], [], [], []
            for k in range(n_runs):
                config = ScenarioConfig(
                    protocol=proto, sim_time_s=sim_time,
                    **{**REFERENCE_POINT, "seed": REFERENCE_POINT["seed"] + k},
                )
                net = build_network(config)
                meters = attach_energy_meters(
                    net, EnergyConfig(idle_w=0.0)
                )
                net.start()
                net.sim.run(until=sim_time)
                net.stop()
                consumed = [m.consumed_j() for m in meters.values()]
                peak = max(consumed)
                max_j.append(peak)
                jain_vals.append(jain_index(consumed))
                lifetimes.append(battery_j / (peak / sim_time))
                pdrs.append(collect_result(net).pdr)
            out[proto] = {
                "max_j": float(np.mean(max_j)),
                "jain_energy": float(np.mean(jain_vals)),
                "lifetime_s": float(np.mean(lifetimes)),
                "pdr": float(np.mean(pdrs)),
            }
        return out

    table = cached("ext_energy", params, compute)
    rows = [
        [
            p_,
            round(table[p_]["pdr"], 4),
            round(table[p_]["max_j"], 2),
            round(table[p_]["jain_energy"], 4),
            round(table[p_]["lifetime_s"], 0),
        ]
        for p_ in protocols
    ]
    best = max(protocols, key=lambda p_: table[p_]["lifetime_s"])
    return FigureResult(
        name="ext_energy",
        title="Extension: communication energy and projected lifetime "
              f"({battery_j:.0f} J battery, first-node-death)",
        headers=["protocol", "pdr", "busiest_node_J", "jain_energy",
                 "lifetime_s"],
        rows=rows,
        expectation=(
            "NLR's load spreading lowers the busiest node's burn rate, so "
            "the first-node-death lifetime extends relative to shortest-hop "
            "AODV at equal-or-better delivery"
        ),
        notes=f"longest projected lifetime: {best}",
    )


# ---------------------------------------------------------------------- #
# Resilience under node churn (fault injection)
# ---------------------------------------------------------------------- #
def _nan_mean_total(results: Sequence[ScenarioResult], key: str) -> float:
    """NaN-safe mean of a ``totals`` entry across replications.

    Resilience counters only exist on runs that had a fault plan (and
    reconvergence can be NaN when no episode completed), so missing keys
    and NaNs are both skipped rather than poisoning the mean.
    """
    vals = [
        v for v in (r.totals.get(key, float("nan")) for r in results)
        if not np.isnan(v)
    ]
    return float(np.mean(vals)) if vals else float("nan")


def figure_resilience(quick: bool = True) -> FigureResult:
    """PDR and recovery time vs node-crash rate (the chaos figure).

    Every cell runs the same 4×4 mesh while :mod:`repro.faults` injects a
    Poisson node-crash process (MTTR 6 s); rate 0 is the fault-free
    baseline.  Beyond PDR, the per-run ResilienceCollector totals supply
    route re-convergence latency, steady-state recovery time, blackout
    loss, and control overhead spent on repair.
    """
    protocols = ["aodv", "gossip", "nlr"]
    rates_per_min = [0.0, 4.0, 8.0] if quick else [0.0, 2.0, 4.0, 8.0, 16.0]
    n_runs = _reps(quick)
    sim_time = 30.0 if quick else 60.0
    warmup = 5.0

    def _cell_config(proto: str, rate_per_min: float) -> ScenarioConfig:
        spec = None
        if rate_per_min > 0:
            # Crashes only inside the measured window: start after warmup,
            # stop 5 s before the end so the last MTTR can play out.
            # Victims are the 4×4 grid's interior nodes — the backbone
            # relays.  Crashing a flow endpoint loses packets identically
            # under every protocol; crashing a relay is the event routing
            # schemes can actually differ on (detect + re-route).
            spec = {
                "kind": "poisson_crashes",
                "rate_per_s": rate_per_min / 60.0,
                "mttr_s": 6.0,
                "start_s": warmup,
                "stop_s": sim_time - 5.0,
                "nodes": [5, 6, 9, 10],
            }
        # Seed varies per crash rate: numpy's exponential draws are the
        # same underlying bits scaled by 1/rate, so a shared seed would
        # give every rate the SAME crash schedule, merely time-scaled.
        return ScenarioConfig(
            protocol=proto, grid_nx=4, grid_ny=4, spacing_m=230.0,
            n_flows=8, flow_pattern="random", flow_rate_pps=15.0,
            sim_time_s=sim_time, warmup_s=warmup,
            seed=700 + 41 * rates_per_min.index(rate_per_min),
            fault_spec=spec,
        )

    params = {
        "protocols": protocols,
        "rates_per_min": rates_per_min,
        "n_runs": n_runs,
        "quick": quick,
        # Captures the whole cell design (topology, traffic, seeds, spec).
        "base": repr(_cell_config("aodv", rates_per_min[-1])),
    }

    def compute() -> dict[str, dict[str, dict[str, float]]]:
        keys: list[tuple[str, float]] = []
        configs: list[ScenarioConfig] = []
        tags: list[str] = []
        for proto in protocols:
            for rate in rates_per_min:
                base = _cell_config(proto, rate)
                for k in range(n_runs):
                    keys.append((proto, rate))
                    configs.append(replace(base, seed=base.seed + k))
                    tags.append(f"{proto}@{rate:g}pm")
        results = run_configs("figure_resilience", configs, tags=tags)
        grouped: dict[tuple[str, float], list[ScenarioResult]] = {}
        for key, result in zip(keys, results):
            grouped.setdefault(key, []).append(result)
        table: dict[str, dict[str, dict[str, float]]] = {}
        for (proto, rate), runs in grouped.items():
            table.setdefault(proto, {})[str(rate)] = {
                "pdr": float(np.mean([r.pdr for r in runs])),
                "reconv_s": _nan_mean_total(runs, "resilience_reconv_mean_s"),
                "recovery_s": _nan_mean_total(
                    runs, "resilience_recovery_mean_s"
                ),
                "blackout_loss": _nan_mean_total(
                    runs, "resilience_blackout_loss"
                ),
                "repair_control": _nan_mean_total(
                    runs, "resilience_repair_control"
                ),
                "unrecovered": _nan_mean_total(
                    runs, "resilience_unrecovered"
                ),
            }
        return table

    table = cached("figure_resilience", params, compute)
    rows = []
    for rate in rates_per_min:
        key = str(rate)
        row: list[Any] = [rate]
        for proto in protocols:
            row.append(round(table[proto][key]["pdr"], 4))
        for proto in protocols:
            r = table[proto][key]["recovery_s"]
            row.append("-" if np.isnan(r) else round(r, 2))
        rows.append(row)
    top = str(rates_per_min[-1])
    note = (
        f"at {rates_per_min[-1]:g} crashes/min: nlr pdr "
        f"{table['nlr'][top]['pdr']:.3f} vs aodv "
        f"{table['aodv'][top]['pdr']:.3f}; mean reconvergence nlr "
        f"{table['nlr'][top]['reconv_s']:.2f} s vs aodv "
        f"{table['aodv'][top]['reconv_s']:.2f} s; repair control nlr "
        f"{table['nlr'][top]['repair_control']:.0f} vs aodv "
        f"{table['aodv'][top]['repair_control']:.0f} pkts"
    )
    return FigureResult(
        name="resilience",
        title="Resilience: delivery and recovery vs node-crash rate "
              "(Poisson crashes, MTTR 6 s)",
        headers=(
            ["crash_per_min"]
            + [f"{p}_pdr" for p in protocols]
            + [f"{p}_recov_s" for p in protocols]
        ),
        rows=rows,
        expectation=(
            "all schemes lose delivery as churn rises; NLR degrades more "
            "gracefully than AODV because HELLO-fed neighbourhood state "
            "detects dead next hops and re-routes around them, while "
            "gossip's redundant flooding buys robustness at the highest "
            "overhead"
        ),
        notes=note,
    )


#: Registry used by the CLI and the EXPERIMENTS.md generator.
ALL_FIGURES: dict[str, Callable[[bool], FigureResult]] = {
    "table1": table1_parameters,
    "fig1": fig1_pdr_vs_load,
    "fig2": fig2_delay_vs_load,
    "fig3": fig3_throughput_vs_flows,
    "fig4": fig4_overhead_vs_size,
    "fig5": fig5_load_distribution,
    "fig6": fig6_scalability,
    "fig7": fig7_broadcast_storm,
    "table2": table2_summary,
    "ablation_metric": ablation_metric,
    "ablation_policy": ablation_policy,
    "ext_mobility": ext_mobility,
    "ext_rtscts": ext_rtscts,
    "ext_energy": ext_energy,
    "validation_mac": validation_mac,
    "resilience": figure_resilience,
}
