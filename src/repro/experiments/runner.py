"""Run scenarios, collect results, replicate across seeds."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import AdaptivePolicy, ExecPolicy

from repro.analysis.stats import ConfidenceInterval, summarize
from repro.experiments.scenario import Network, ScenarioConfig, build_network
from repro.metrics.collectors import network_totals
from repro.metrics.fairness import forwarding_load, jain_index
from repro.obs.spec import finalize_observability

__all__ = ["ScenarioResult", "run_scenario", "replicate"]


@dataclass(slots=True)
class ScenarioResult:
    """Measured outcomes of one simulation run.

    The scalar fields are the quantities the reconstructed figures plot;
    ``totals`` holds the full counter dump and ``per_node_forwarded`` the
    load-distribution vector (Fig 5).
    """

    config: ScenarioConfig
    pdr: float
    mean_delay_s: float
    throughput_bps: float
    mean_hops: float
    rreq_tx: float
    control_packets: float
    control_bytes: float
    normalized_routing_load: float
    jain_fairness: float
    packets_sent: int
    packets_received: int
    per_node_forwarded: np.ndarray
    totals: dict[str, float] = field(default_factory=dict)
    events_executed: int = 0
    wallclock_s: float = 0.0
    #: Canonical ``repro_*`` metrics snapshot (see :mod:`repro.obs`).
    #: Pure simulation state — byte-identical across serial/parallel runs.
    metrics_snapshot: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Scalar metrics as a flat dict (for summarising/sweeps)."""
        return {
            "pdr": self.pdr,
            "mean_delay_s": self.mean_delay_s,
            "throughput_bps": self.throughput_bps,
            "mean_hops": self.mean_hops,
            "rreq_tx": self.rreq_tx,
            "control_packets": self.control_packets,
            "control_bytes": self.control_bytes,
            "normalized_routing_load": self.normalized_routing_load,
            "jain_fairness": self.jain_fairness,
        }


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build, run, and measure one scenario.

    When the config carries a ``trace_spec`` with a path, the trace
    artifact is closed here and its ``*.metrics.json`` /
    ``*.profile.json`` companions written (same snapshot the result
    carries), so every run — including exec worker cells — leaves a
    self-contained artifact set behind.
    """
    t0 = time.perf_counter()
    net = build_network(config)
    net.start()
    net.sim.run(until=config.sim_time_s)
    net.stop()
    result = collect_result(net, wallclock_s=time.perf_counter() - t0)
    finalize_observability(net, metrics=result.metrics_snapshot)
    return result


def collect_result(net: Network, wallclock_s: float = 0.0) -> ScenarioResult:
    """Extract a :class:`ScenarioResult` from a finished network."""
    config = net.config
    collector = net.collector
    totals = network_totals(net.stacks)
    if net.resilience is not None:
        totals.update(net.resilience.totals())
    span = config.sim_time_s - config.warmup_s
    per_node = forwarding_load(net.protocols)
    return ScenarioResult(
        config=config,
        pdr=collector.overall_pdr(),
        # NaN when nothing was delivered (the collector's convention).
        mean_delay_s=collector.mean_delay_s(),
        throughput_bps=collector.aggregate_throughput_bps(span),
        mean_hops=collector.mean_hops(),
        rreq_tx=totals["rreq_tx"],
        control_packets=totals["control_packets"],
        control_bytes=totals["control_bytes"],
        normalized_routing_load=totals["normalized_routing_load"],
        jain_fairness=jain_index(per_node),
        packets_sent=collector.total_sent,
        packets_received=collector.total_received,
        per_node_forwarded=per_node,
        totals=totals,
        events_executed=net.sim.events_executed,
        wallclock_s=wallclock_s,
        metrics_snapshot=net.metrics.metrics_json(),
    )


def replicate(
    config: ScenarioConfig,
    n_runs: int = 5,
    base_seed: int | None = None,
    level: float = 0.95,
    policy: ExecPolicy | None = None,
    adaptive: "AdaptivePolicy | None" = None,
) -> tuple[list[ScenarioResult], dict[str, ConfidenceInterval]]:
    """Run ``config`` under up to ``n_runs`` seeds; return runs + mean ± CI.

    Seeds are ``base_seed + k`` (default base: ``config.seed``), so a
    replication set is itself reproducible.

    Execution goes through :mod:`repro.exec`: with the default policy the
    runs happen serially in-process exactly as they always have; pass an
    :class:`~repro.exec.ExecPolicy` (or :func:`repro.exec.configure` the
    process-wide default, as the CLI's ``--workers`` does) to fan the
    seeds out over worker processes and/or resume from checkpoints.
    Results come back in seed order either way, so summaries are
    byte-identical across execution modes.

    With an :class:`~repro.exec.AdaptivePolicy` (explicit argument, or the
    one carried by the effective exec policy), ``n_runs`` becomes the
    *budget*: replication stops as soon as the declared metric's
    confidence half-width is tight (see :mod:`repro.exec.adaptive`), so
    the returned list may be a seed-ladder prefix.  Without one, the
    fixed-budget path is bit-for-bit the historical behaviour.
    """
    if n_runs < 1:
        raise ValueError(f"need ≥ 1 run, got {n_runs}")
    # Imported here: repro.exec sits on top of this module.
    from repro.exec import current_policy, run_adaptive_cells, run_configs

    if adaptive is None:
        adaptive = (policy if policy is not None else current_policy()).adaptive
    base = config.seed if base_seed is None else base_seed
    seeded = replace(config, seed=base)
    if adaptive is not None and n_runs >= 2:
        report = run_adaptive_cells(
            f"replicate-{config.protocol}",
            [("cell", seeded)],
            n_budget=n_runs,
            adaptive=adaptive,
            policy=policy,
        )
        results = report.results["cell"]
    else:
        configs = [replace(config, seed=base + k) for k in range(n_runs)]
        results = run_configs(
            f"replicate-{config.protocol}", configs, policy=policy
        )
    summary = summarize([r.as_dict() for r in results], level=level)
    return results, summary
