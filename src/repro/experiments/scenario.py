"""Scenario construction: one config dataclass → a ready-to-run network.

A :class:`ScenarioConfig` captures everything a run depends on — topology,
PHY/MAC, protocol variant, traffic — and :func:`build_network` assembles
the full stack deterministically from the config's seed.  The protocol
registry covers every scheme in the evaluation plus the ablation variants
(DESIGN.md §3).

Default parameters are the ns-2-era conventions the paper family uses
(Table 1): 802.11b PHY at 11 Mb/s data / 2 Mb/s basic rate, two-ray ground
propagation, 250 m transmission and 550 m carrier-sense range, 5×5 mesh
grid at 200 m spacing, 512-byte CBR flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import networkx as nx
import numpy as np

from repro.core.nlr import NlrConfig, NlrRouting
from repro.faults import (
    FaultInjector,
    FaultPlan,
    ResilienceCollector,
    plan_from_spec,
)
from repro.net.dsdv import DsdvConfig, DsdvRouting
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import EngineProfiler
from repro.obs.sinks import JsonlTraceSink, RingSink
from repro.obs.spec import attach_observability
from repro.mac.csma import CsmaMac, MacConfig, make_timer_batch_handler
from repro.mac.perfect import PerfectMac, PerfectMacNetwork
from repro.metrics.flowstats import FlowStatsCollector
from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.gossip import CounterBasedPolicy, FixedProbabilityGossip
from repro.net.node import NodeStack
from repro.net.routing_base import RoutingProtocol
from repro.net.static_routing import RouteOracle, StaticRouting
from repro.phy.channel import Channel
from repro.phy.error_models import SinrThresholdErrorModel
from repro.phy.propagation import LogNormalShadowing, TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.rng import RandomStreams
from repro.sim.trace import Tracer
from repro.topology.gateway import select_gateways
from repro.topology.graph import connectivity_graph, ensure_connected_positions
from repro.topology.mobility import RandomWaypoint, StaticMobility
from repro.topology.placement import chain_positions, grid_positions, random_positions
from repro.traffic.flows import FlowSpec, gateway_flows, random_flow_pairs
from repro.traffic.generators import CbrSource, OnOffSource, PoissonSource, Source
from repro.traffic.sink import PacketSink
from repro.util.validation import canonical_json_value

__all__ = ["ScenarioConfig", "Network", "build_network", "PROTOCOLS"]

#: Transmission range implied by the default PHY thresholds (metres).
DEFAULT_TX_RANGE_M = 250.0


@dataclass(slots=True)
class ScenarioConfig:
    """Everything one simulation run depends on.

    Attributes are grouped: identity, topology, PHY/MAC, protocol,
    traffic, measurement.  See module docstring for the defaults'
    provenance.
    """

    # Identity ---------------------------------------------------------- #
    protocol: str = "nlr"
    seed: int = 1

    # Topology ---------------------------------------------------------- #
    topology: str = "grid"          # "grid" | "random" | "chain"
    grid_nx: int = 5
    grid_ny: int = 5
    spacing_m: float = 200.0
    n_nodes: int = 25               # for "random" / "chain"
    area_m: tuple[float, float] = (1000.0, 1000.0)
    shadowing_sigma_db: float = 0.0

    # PHY / MAC --------------------------------------------------------- #
    phy: PhyConfig = field(default_factory=PhyConfig)
    mac: str = "csma"               # "csma" | "perfect"
    mac_config: MacConfig = field(default_factory=MacConfig)
    sinr_threshold_db: float = 10.0
    propagation_delay: bool = True
    #: Spatial-grid channel dispatch (byte-identical to exhaustive; keep
    #: the flag for A/B determinism verification and perf bisection).
    spatial_index: bool = True
    #: Batched simulation kernel (DESIGN.md §8): block-event fan-out,
    #: vectorised SINR/capture decisions, slot-batched CSMA timers.
    #: Byte-identical to the scalar engine; off by default so the scalar
    #: path stays the reference oracle.
    batched_kernel: bool = False

    # Protocol ---------------------------------------------------------- #
    aodv: AodvConfig = field(default_factory=AodvConfig)
    nlr: NlrConfig = field(default_factory=NlrConfig)
    gossip_p: float = 0.65
    counter_threshold: int = 3

    # Mobility ---------------------------------------------------------- #
    mobility: str = "static"        # "static" | "rwp"
    speed_range: tuple[float, float] = (1.0, 5.0)
    pause_s: float = 2.0
    mobility_update_s: float = 0.2
    #: Fraction of nodes that roam under "rwp" (the highest-index ones);
    #: the rest stay put — the WMN regime of mobile clients over a static
    #: router backbone.  1.0 = classic all-nodes random waypoint.
    mobile_fraction: float = 1.0

    # Traffic ----------------------------------------------------------- #
    n_flows: int = 8
    flow_rate_pps: float = 4.0
    payload_bytes: int = 512
    traffic: str = "cbr"            # "cbr" | "poisson" | "onoff"
    flow_pattern: str = "random"    # "random" | "gateway"
    n_gateways: int = 1
    flow_start_s: float = 1.0
    flow_stagger_s: float = 0.5

    # Faults ------------------------------------------------------------ #
    #: Declarative fault spec expanded at build time by
    #: :func:`repro.faults.plan_from_spec` (JSON-able, so chaos campaigns
    #: hash into exec cells like any other parameter).  ``None`` = healthy.
    fault_spec: dict | None = None
    #: Concrete :class:`~repro.faults.FaultPlan` (programmatic use; also
    #: serialisable).  Mutually exclusive with ``fault_spec``.
    fault_plan: FaultPlan | None = None

    # Measurement ------------------------------------------------------- #
    sim_time_s: float = 60.0
    warmup_s: float = 5.0
    trace: bool = False
    #: Streaming-trace spec (see :mod:`repro.obs.spec`): JSON-able, so it
    #: content-hashes into exec cells.  Implies tracing when set.
    trace_spec: dict | None = None
    #: Attach the engine profiler (wall-time per callback); off by default
    #: — profiling output is wall-clock and never enters metrics snapshots.
    profile: bool = False

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from "
                f"{sorted(PROTOCOLS)}"
            )
        if self.topology not in ("grid", "random", "chain"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.mac not in ("csma", "perfect"):
            raise ValueError(f"unknown mac {self.mac!r}")
        if self.traffic not in ("cbr", "poisson", "onoff"):
            raise ValueError(f"unknown traffic model {self.traffic!r}")
        if self.flow_pattern not in ("random", "gateway"):
            raise ValueError(f"unknown flow pattern {self.flow_pattern!r}")
        if not 0.0 < self.gossip_p <= 1.0:
            raise ValueError(
                f"gossip_p must be in (0, 1], got {self.gossip_p!r}"
            )
        if self.counter_threshold < 1:
            raise ValueError(
                f"counter_threshold must be ≥ 1, got {self.counter_threshold!r}"
            )
        if self.mobility not in ("static", "rwp"):
            raise ValueError(f"unknown mobility model {self.mobility!r}")
        if self.mobility == "rwp" and self.mac != "csma":
            raise ValueError(
                "random-waypoint mobility needs the real PHY/MAC "
                "(PerfectMac adjacency is static)"
            )
        if not 0.0 < self.mobile_fraction <= 1.0:
            raise ValueError(
                f"mobile_fraction must be in (0, 1], got {self.mobile_fraction!r}"
            )
        if self.sim_time_s <= self.warmup_s:
            raise ValueError("sim_time_s must exceed warmup_s")
        if self.fault_spec is not None and self.fault_plan is not None:
            raise ValueError("give fault_spec or fault_plan, not both")
        # Canonicalise the declarative specs to JSON-native form (tuples →
        # lists, numpy scalars → Python) so a config equals its own
        # serialise→deserialise round-trip and exec content hashes cover
        # exactly what persists.  Non-JSON values fail here, loudly.
        if self.fault_spec is not None:
            self.fault_spec = canonical_json_value(self.fault_spec, "fault_spec")
        if self.trace_spec is not None:
            self.trace_spec = canonical_json_value(self.trace_spec, "trace_spec")
        if self.trace_spec is not None:
            # Validate eagerly so bad specs fail at config time, not after
            # a campaign has dispatched to workers.  Late import: obs sits
            # above the scenario layer.
            from repro.obs.spec import TraceSpec

            TraceSpec.from_dict(self.trace_spec)
        if (
            self.fault_spec is not None or self.fault_plan is not None
        ) and self.mac != "csma":
            raise ValueError(
                "fault injection needs the real PHY/MAC (mac='csma'); "
                "PerfectMac has no radio or channel to fail"
            )

    @property
    def node_count(self) -> int:
        """Number of nodes implied by the topology settings."""
        if self.topology == "grid":
            return self.grid_nx * self.grid_ny
        return self.n_nodes


# ---------------------------------------------------------------------- #
# Protocol registry
# ---------------------------------------------------------------------- #
def _make_aodv(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    return AodvRouting(replace(cfg.aodv), rng)


def _make_gossip(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    return AodvRouting(
        replace(cfg.aodv), rng,
        rreq_policy=FixedProbabilityGossip(cfg.gossip_p, rng),
    )


def _make_counter(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    # RAD of 25 ms (vs the 10 ms RREQ jitter of the other schemes): the
    # assessment window must outlast neighbour rebroadcast jitter or the
    # counter never sees duplicates and degenerates to blind flooding.
    return AodvRouting(
        replace(cfg.aodv), rng,
        rreq_policy=CounterBasedPolicy(
            cfg.counter_threshold, rng, rad_max_s=0.025
        ),
    )


def _nlr_variant(**overrides):
    def make(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
        nlr_cfg = replace(cfg.nlr, aodv=replace(cfg.nlr.aodv), **overrides)
        return NlrRouting(nlr_cfg, rng)

    return make


def _make_nlr_noselect(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    # Ablation B: keep load-adaptive flooding, drop load-aware selection
    # (destination answers the first RREQ copy, AODV-style).
    nlr_cfg = replace(
        cfg.nlr, aodv=replace(cfg.nlr.aodv, dest_reply_wait_s=0.0)
    )
    return NlrRouting(nlr_cfg, rng)


def _make_oracle(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    assert net.oracle is not None
    return StaticRouting(net.oracle)


def _make_dsdv(cfg: ScenarioConfig, rng: np.random.Generator, net: "Network"):
    return DsdvRouting(DsdvConfig(), rng)


#: Name → factory for every comparable scheme and ablation variant.
PROTOCOLS: dict[str, Callable] = {
    "aodv": _make_aodv,
    "gossip": _make_gossip,
    "counter": _make_counter,
    "nlr": _nlr_variant(),
    # Ablation A: cross-layer / neighbourhood ingredients.
    "nlr-queue": _nlr_variant(queue_weight=1.0),   # queue signal only
    "nlr-busy": _nlr_variant(queue_weight=0.0),    # busy-ratio signal only
    "nlr-own": _nlr_variant(own_weight=1.0),       # no neighbourhood agg.
    # Ablation B: mechanism split.
    "nlr-noprob": _nlr_variant(adaptive_forwarding=False),
    "nlr-noselect": _make_nlr_noselect,
    "oracle": _make_oracle,
    "dsdv": _make_dsdv,
}


# ---------------------------------------------------------------------- #
# Network assembly
# ---------------------------------------------------------------------- #
class Network:
    """A fully wired simulation: engine, channel, stacks, traffic, metrics.

    Build via :func:`build_network`; run via
    :meth:`~repro.experiments.runner.run_scenario` or manually with
    :meth:`start` + ``net.sim.run(until=...)``.
    """

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.tracer = Tracer(enabled=config.trace)
        self.positions: np.ndarray = np.empty((0, 2))
        self.graph: nx.Graph = nx.Graph()
        self.oracle: RouteOracle | None = None
        self.channel: Channel | None = None
        self.perfect_net: PerfectMacNetwork | None = None
        self.stacks: list[NodeStack] = []
        self.sources: list[Source] = []
        self.sinks: list[PacketSink] = []
        self.flows: list[FlowSpec] = []
        self.gateways: list[int] = []
        self.mobility: RandomWaypoint | StaticMobility = StaticMobility()
        self.collector = FlowStatsCollector(
            measure_from_s=config.warmup_s, measure_until_s=config.sim_time_s
        )
        self.injector: FaultInjector | None = None
        self.resilience: ResilienceCollector | None = None
        # Observability (wired by repro.obs.spec.attach_observability).
        self.metrics = MetricsRegistry()
        self.trace_sink: JsonlTraceSink | None = None
        self.trace_ring: RingSink | None = None
        self.profiler: EngineProfiler | None = None

    @property
    def protocols(self) -> list[RoutingProtocol]:
        """Routing-protocol instances in node-id order."""
        return [s.routing for s in self.stacks]

    def start(self) -> None:
        """Start mobility, protocol timers, traffic sources, and faults."""
        self.mobility.start()
        for stack in self.stacks:
            stack.start()
        for source in self.sources:
            source.start()
        if self.injector is not None:
            self.injector.start()

    def stop(self) -> None:
        """Stop faults, traffic sources, protocol timers, and mobility."""
        if self.injector is not None:
            self.injector.stop()
        for source in self.sources:
            source.stop()
        for stack in self.stacks:
            stack.stop()
        self.mobility.stop()
        if self.resilience is not None:
            self.resilience.finalize(self.sim.now)


def _positions_for(config: ScenarioConfig, streams: RandomStreams) -> np.ndarray:
    if config.topology == "grid":
        return grid_positions(config.grid_nx, config.grid_ny, config.spacing_m)
    if config.topology == "chain":
        return chain_positions(config.n_nodes, config.spacing_m)
    rng = streams.stream("topology.placement")
    return ensure_connected_positions(
        lambda: random_positions(
            config.n_nodes, config.area_m, rng, min_separation_m=10.0
        ),
        range_m=DEFAULT_TX_RANGE_M,
    )


def _flows_for(
    config: ScenarioConfig, net: Network, streams: RandomStreams
) -> list[FlowSpec]:
    rng = streams.stream("traffic.flowset")
    node_ids = list(range(config.node_count))
    common = dict(
        payload_bytes=config.payload_bytes,
        rate_pps=config.flow_rate_pps,
        start_s=config.flow_start_s,
        stop_s=config.sim_time_s,
        stagger_s=config.flow_stagger_s,
    )
    if config.flow_pattern == "gateway":
        net.gateways = select_gateways(net.positions, config.n_gateways)
        return gateway_flows(
            config.n_flows, node_ids, net.gateways, rng, **common
        )
    return random_flow_pairs(config.n_flows, node_ids, rng, **common)


def build_network(config: ScenarioConfig) -> Network:
    """Assemble a deterministic, ready-to-start network from ``config``."""
    net = Network(config)
    net.positions = _positions_for(config, net.streams)
    net.graph = connectivity_graph(net.positions, DEFAULT_TX_RANGE_M)
    if config.protocol == "oracle":
        net.oracle = RouteOracle(net.graph)

    n = config.node_count

    # --- Link layer ---------------------------------------------------- #
    if config.mac == "csma":
        propagation = TwoRayGround()
        if config.shadowing_sigma_db > 0:
            propagation = LogNormalShadowing(
                propagation, config.shadowing_sigma_db, net.streams
            )
        net.channel = Channel(
            net.sim,
            propagation,
            propagation_delay=config.propagation_delay,
            spatial_index=config.spatial_index,
            batched=config.batched_kernel,
        )
        if config.batched_kernel:
            net.sim.register_batch_handler(
                Timer._fire, make_timer_batch_handler(net.channel)
            )
        macs = []
        for i in range(n):
            radio = Radio(
                net.sim,
                i,
                replace(config.phy),
                net.streams.stream(f"phy.rx.{i}"),
                error_model=SinrThresholdErrorModel(config.sinr_threshold_db),
                tracer=net.tracer,
            )
            net.channel.register(radio, tuple(net.positions[i]))
            macs.append(
                CsmaMac(
                    net.sim,
                    radio,
                    replace(config.mac_config),
                    net.streams.stream(f"mac.backoff.{i}"),
                    tracer=net.tracer,
                    batched=config.batched_kernel,
                )
            )
    else:
        adjacency = {i: sorted(net.graph.neighbors(i)) for i in range(n)}
        net.perfect_net = PerfectMacNetwork(
            net.sim, lambda nid: adjacency[nid], hop_delay_s=2e-3
        )
        macs = [net.perfect_net.create_mac(i) for i in range(n)]

    # --- Routing + stacks ---------------------------------------------- #
    factory = PROTOCOLS[config.protocol]
    for i in range(n):
        routing = factory(config, net.streams.stream(f"routing.{i}"), net)
        stack = NodeStack(net.sim, i, macs[i], routing, tracer=net.tracer)
        net.stacks.append(stack)

    # --- Mobility ------------------------------------------------------- #
    if config.mobility == "rwp":
        assert net.channel is not None
        if config.topology == "grid":
            area = (
                (config.grid_nx - 1) * config.spacing_m,
                (config.grid_ny - 1) * config.spacing_m,
            )
        else:
            area = config.area_m
        n_mobile = max(1, round(n * config.mobile_fraction))
        net.mobility = RandomWaypoint(
            net.sim,
            net.channel,
            list(range(n - n_mobile, n)),
            area_m=area,
            speed_range=config.speed_range,
            pause_s=config.pause_s,
            rng=net.streams.stream("mobility.rwp"),
            update_interval_s=config.mobility_update_s,
        )

    # --- Traffic -------------------------------------------------------- #
    net.flows = _flows_for(config, net, net.streams)

    # Shared observation hooks: the flow-stats collector always listens;
    # the resilience collector (created below, after flows exist) is
    # resolved dynamically so sink/source wiring order doesn't matter.
    def _on_deliver(p, _sim=net.sim) -> None:
        net.collector.on_receive(p, now=_sim.now)
        if net.resilience is not None:
            net.resilience.on_receive(p, now=_sim.now)

    def _on_send(p) -> None:
        net.collector.on_send(p)
        if net.resilience is not None:
            net.resilience.on_send(p)

    for stack in net.stacks:
        net.sinks.append(PacketSink(stack, on_receive=_on_deliver))
    for flow in net.flows:
        stack = net.stacks[flow.src]
        if config.traffic == "cbr":
            src: Source = CbrSource(
                net.sim, stack, flow, on_send=_on_send
            )
        elif config.traffic == "poisson":
            src = PoissonSource(
                net.sim, stack, flow,
                net.streams.stream(f"traffic.flow.{flow.flow_id}"),
                on_send=_on_send,
            )
        else:
            src = OnOffSource(
                net.sim, stack, flow,
                net.streams.stream(f"traffic.flow.{flow.flow_id}"),
                on_send=_on_send,
            )
        net.sources.append(src)

    # --- Faults --------------------------------------------------------- #
    plan = config.fault_plan
    if plan is None and config.fault_spec is not None:
        plan = plan_from_spec(
            config.fault_spec,
            streams=net.streams,
            node_count=n,
            sim_time_s=config.sim_time_s,
        )
    if plan is not None and plan.events:
        stacks = net.stacks

        def _control_total() -> float:
            return float(
                sum(sum(s.routing.control_tx.values()) for s in stacks)
            )

        net.resilience = ResilienceCollector(
            net.flows, control_counter=_control_total
        )
        net.injector = FaultInjector(net, plan, collector=net.resilience)

    # --- Observability --------------------------------------------------- #
    attach_observability(net)
    return net
