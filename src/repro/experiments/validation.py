"""MAC substrate validation: simulated vs analytical saturation throughput.

``run_saturation`` puts ``n`` stations in one collision domain (a 10 m
circle, so every station senses every other and near-equal powers deny
capture), saturates each with closed-loop unicast traffic to its ring
neighbour, and measures aggregate delivered application throughput.  The
validation figure compares this against Bianchi's closed form
(:mod:`repro.analysis.bianchi`) — if the DCF implementation is right, the
two curves lie within a few percent across station counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.bianchi import saturation_throughput_bps
from repro.mac.csma import CsmaMac, MacConfig
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

__all__ = ["run_saturation", "saturation_comparison"]


def run_saturation(
    n: int,
    duration_s: float = 5.0,
    payload_bytes: int = 512,
    seed: int = 1,
    mac_config: MacConfig | None = None,
) -> float:
    """Measured aggregate saturation throughput (bits/s) for ``n`` stations.

    Bianchi's star topology: ``n`` saturated senders sit equidistant on a
    10 m circle around one sink (node ``n``) and refill their MAC queues on
    every completion, so queues never empty.  Equidistance matters: every
    collision at the sink is between equal-power frames (SINR ≈ 0 dB),
    destroying all colliders exactly as the model assumes.  Capture is
    disabled for the same reason (a late stronger frame could otherwise
    steal the lock at sender-side receptions).
    """
    if n < 2:
        raise ValueError(f"need ≥ 2 stations, got {n}")
    sim = Simulator()
    channel = Channel(sim, TwoRayGround(), propagation_delay=False)
    streams = RandomStreams(seed)
    macs: list[CsmaMac] = []
    received_bytes = [0]

    phy = PhyConfig(capture_enabled=False)
    for i in range(n):
        angle = 2.0 * math.pi * i / n
        pos = (10.0 * math.cos(angle), 10.0 * math.sin(angle))
        radio = Radio(sim, i, phy, streams.stream(f"phy.{i}"))
        channel.register(radio, pos)
        macs.append(
            CsmaMac(
                sim, radio, mac_config or MacConfig(),
                streams.stream(f"mac.{i}"),
            )
        )
    sink_radio = Radio(sim, n, phy, streams.stream("phy.sink"))
    channel.register(sink_radio, (0.0, 0.0))
    sink = CsmaMac(
        sim, sink_radio, mac_config or MacConfig(), streams.stream("mac.sink")
    )
    sink.rx_upper_callback = (
        lambda pkt, src, info: received_bytes.__setitem__(
            0, received_bytes[0] + payload_bytes
        )
    )

    def refill(mac: CsmaMac) -> None:
        mac.send(None, n, payload_bytes)

    for mac in macs:
        # Closed loop: every completion immediately queues the next frame.
        mac.send_done_callback = (
            lambda pkt, d, ok, _mac=mac: refill(_mac)
        )
        # Prime with two frames so the queue never drains between the
        # completion callback and the next dequeue.
        refill(mac)
        refill(mac)

    sim.run(until=duration_s)
    return received_bytes[0] * 8 / duration_s


def saturation_comparison(
    station_counts: list[int] | None = None,
    duration_s: float = 5.0,
    payload_bytes: int = 512,
    seed: int = 1,
) -> list[dict[str, float]]:
    """Rows of {n, simulated_bps, bianchi_bps, error_pct} per station count."""
    station_counts = station_counts or [2, 5, 10, 15]
    rows = []
    for n in station_counts:
        sim_bps = run_saturation(
            n, duration_s=duration_s, payload_bytes=payload_bytes, seed=seed
        )
        model_bps = saturation_throughput_bps(n, payload_bytes=payload_bytes)
        rows.append(
            {
                "n": float(n),
                "simulated_bps": sim_bps,
                "bianchi_bps": model_bps,
                "error_pct": 100.0 * (sim_bps - model_bps) / model_bps,
            }
        )
    return rows
