"""Network layer: packets, routing machinery, and the baseline protocols.

* :mod:`~repro.net.addressing` — node addresses and broadcast constants.
* :mod:`~repro.net.packet` — network packet and protocol header formats.
* :mod:`~repro.net.routing_base` — routing-table machinery and the
  :class:`~repro.net.routing_base.RoutingProtocol` interface every scheme
  implements.
* :mod:`~repro.net.hello` — HELLO beaconing and neighbour tables (with a
  piggyback hook the NLR load advertisement plugs into).
* :mod:`~repro.net.gossip` — rebroadcast-suppression policies: blind
  flooding, fixed-probability gossip, counter-based.
* :mod:`~repro.net.flooding` — a standalone network-wide broadcast service
  for the broadcast-storm experiments.
* :mod:`~repro.net.aodv` — the AODV on-demand routing engine (RREQ / RREP /
  RERR, sequence numbers, buffering, link-failure handling).
* :mod:`~repro.net.static_routing` — Dijkstra oracle routing over the true
  connectivity graph (sanity baseline).
* :mod:`~repro.net.node` — the per-node protocol stack composition.
"""

from repro.net.addressing import BROADCAST_ADDR, NodeAddress
from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.dsdv import DsdvConfig, DsdvRouting
from repro.net.flooding import BroadcastService
from repro.net.gossip import (
    BlindFlooding,
    CounterBasedPolicy,
    FixedProbabilityGossip,
    RebroadcastPolicy,
)
from repro.net.hello import HelloService, NeighbourTable
from repro.net.node import NodeStack
from repro.net.packet import (
    HelloHeader,
    Packet,
    PacketKind,
    RerrHeader,
    RrepHeader,
    RreqHeader,
)
from repro.net.routing_base import RouteEntry, RoutingProtocol, RoutingTable
from repro.net.static_routing import StaticRouting

__all__ = [
    "AodvConfig",
    "AodvRouting",
    "BROADCAST_ADDR",
    "BlindFlooding",
    "BroadcastService",
    "CounterBasedPolicy",
    "DsdvConfig",
    "DsdvRouting",
    "FixedProbabilityGossip",
    "HelloHeader",
    "HelloService",
    "NeighbourTable",
    "NodeAddress",
    "NodeStack",
    "Packet",
    "PacketKind",
    "RebroadcastPolicy",
    "RerrHeader",
    "RouteEntry",
    "RoutingProtocol",
    "RoutingTable",
    "RrepHeader",
    "RreqHeader",
    "StaticRouting",
]
