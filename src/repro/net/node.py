"""Per-node protocol stack composition.

A :class:`NodeStack` glues one MAC instance (real DCF or the perfect test
MAC — both expose the same interface) to one routing protocol and exposes
the application-facing API the traffic layer drives.  It also owns the
plumbing every protocol shares: MAC callback wiring, TTL bookkeeping, and
control-overhead byte accounting.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.addressing import BROADCAST_ADDR
from repro.net.packet import Packet, PacketKind
from repro.net.routing_base import RoutingProtocol
from repro.phy.frame import RxInfo
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

__all__ = ["NodeStack"]

#: Default TTL for originated data (covers any path in the evaluated meshes).
DEFAULT_TTL = 32


class NodeStack:
    """One node's network stack.

    Parameters
    ----------
    sim:
        Event engine.
    node_id:
        Node address.
    mac:
        A :class:`~repro.mac.csma.CsmaMac`-compatible MAC (``send``,
        ``rx_upper_callback``, ``send_done_callback``, plus the two
        cross-layer signal accessors).
    routing:
        The routing protocol instance for this node.
    tracer:
        Optional shared tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        mac: Any,
        routing: RoutingProtocol,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.mac = mac
        self.routing = routing
        self.tracer = tracer if tracer is not None else Tracer()

        mac.rx_upper_callback = self._on_mac_rx
        mac.send_done_callback = self._on_mac_done
        routing.attach(self)

        #: App-layer receive hook: ``fn(packet)`` for DATA reaching us.
        self.receive_callback: Callable[[Packet], None] | None = None
        routing.deliver_callback = self._deliver

        self.packets_sent = 0
        self.packets_received = 0

    # ------------------------------------------------------------------ #
    # Application-facing API
    # ------------------------------------------------------------------ #
    def send_data(
        self,
        dst: int,
        payload_bytes: int,
        flow_id: int = -1,
        seq: int = -1,
        ttl: int = DEFAULT_TTL,
    ) -> Packet:
        """Originate an application DATA packet toward ``dst``."""
        packet = Packet(
            kind=PacketKind.DATA,
            src=self.node_id,
            dst=dst,
            ttl=ttl,
            payload_bytes=payload_bytes,
            flow_id=flow_id,
            seq=seq,
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        self.tracer.record(
            self.sim.now, "app", self.node_id, "send",
            dst=dst, flow=flow_id, seq=seq,
        )
        self.routing.send_data(packet)
        return packet

    def start(self) -> None:
        """Start the routing protocol's timers."""
        self.routing.start()

    def stop(self) -> None:
        """Stop the routing protocol's timers."""
        self.routing.stop()

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Simulate a node crash: routing silenced, MAC flushed, radio off.

        Requires a real MAC (``CsmaMac``); the idealised PerfectMac has no
        radio to fail.
        """
        self.routing.stop()
        self.mac.shutdown()

    def recover(self) -> None:
        """Bring a failed node back up with empty protocol state timers
        restarted (routing tables it held before the crash survive, as a
        rebooted router's in-memory state would not — callers wanting a
        cold cache should build a fresh stack instead)."""
        self.mac.restart()
        self.routing.start()

    # ------------------------------------------------------------------ #
    # Routing-facing API
    # ------------------------------------------------------------------ #
    def send_mac(self, packet: Packet, dst_mac: int) -> bool:
        """Hand ``packet`` to the MAC addressed to neighbour ``dst_mac``
        (or ``BROADCAST_ADDR``), charging control overhead accounting."""
        wire = packet.wire_bytes(
            with_load_extension=getattr(self.routing, "uses_load_extension", False)
        )
        if packet.kind is not PacketKind.DATA:
            self.routing.control_bytes_tx += wire
        mac_dst = dst_mac if dst_mac != BROADCAST_ADDR else BROADCAST_ADDR
        return self.mac.send(packet, mac_dst, wire)

    # ------------------------------------------------------------------ #
    # MAC callbacks
    # ------------------------------------------------------------------ #
    def _on_mac_rx(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        self.routing.on_packet(packet, from_node, info)

    def _on_mac_done(self, packet: Packet, dst_mac: int, success: bool) -> None:
        self.routing.on_send_result(packet, dst_mac, success)

    def _deliver(self, packet: Packet) -> None:
        self.packets_received += 1
        self.tracer.record(
            self.sim.now, "app", self.node_id, "deliver",
            src=packet.src, flow=packet.flow_id, seq=packet.seq,
            created=packet.created_at,
        )
        if self.receive_callback is not None:
            self.receive_callback(packet)

    # Cross-layer signal passthroughs (consumed by repro.core).
    @property
    def queue_occupancy(self) -> float:
        """MAC interface-queue fill level in [0, 1]."""
        return self.mac.queue_occupancy

    def channel_busy_ratio(self) -> float:
        """MAC trailing-window channel busy ratio in [0, 1]."""
        return self.mac.channel_busy_ratio()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NodeStack(node={self.node_id}, routing={self.routing.name})"
