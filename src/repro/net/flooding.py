"""Network-wide broadcast dissemination service.

:class:`BroadcastService` is a minimal "routing protocol" that floods
application broadcast packets under a pluggable
:class:`~repro.net.gossip.RebroadcastPolicy`.  It exists for the
broadcast-storm experiments (reconstructed Fig 7): measuring reachability
versus saved rebroadcasts for blind flooding, gossip, counter-based, and
the NLR load-adaptive policy on the *same* dissemination machinery.
"""

from __future__ import annotations

import numpy as np

from repro.net.addressing import BROADCAST_ADDR
from repro.net.gossip import (
    FloodState,
    PolicyContext,
    RebroadcastPolicy,
)
from repro.net.hello import NeighbourTable
from repro.net.packet import Packet, PacketKind
from repro.net.routing_base import RoutingProtocol
from repro.phy.frame import RxInfo

__all__ = ["BroadcastService"]


class BroadcastService(RoutingProtocol):
    """Flood application broadcasts under a suppression policy.

    Parameters
    ----------
    policy:
        Rebroadcast-suppression strategy.
    rng:
        Generator for rebroadcast jitter.
    jitter_max_s:
        Uniform jitter before a rebroadcast (de-synchronises neighbours
        that received the same copy; ns-2 uses 10 ms for RREQs).
    neighbour_load_provider:
        Optional ``() -> float`` supplying the cross-layer neighbourhood
        load for the policy context (NLR policy; defaults to 0).
    """

    name = "broadcast"

    def __init__(
        self,
        policy: RebroadcastPolicy,
        rng: np.random.Generator,
        jitter_max_s: float = 0.01,
        neighbour_load_provider=None,
    ) -> None:
        super().__init__()
        self.policy = policy
        self.rng = rng
        self.jitter_max_s = jitter_max_s
        self.neighbour_load_provider = neighbour_load_provider
        self.neighbour_table: NeighbourTable | None = None
        self._floods: dict[tuple[int, int], FloodState] = {}
        self.rebroadcasts = 0
        self.suppressed = 0
        self.received_floods = 0

    def attach(self, stack) -> None:  # type: ignore[override]
        super().attach(stack)
        self.neighbour_table = NeighbourTable(stack.sim)

    # ------------------------------------------------------------------ #
    # Origination
    # ------------------------------------------------------------------ #
    def send_data(self, packet: Packet) -> None:
        if packet.dst != BROADCAST_ADDR:
            raise ValueError("BroadcastService only carries broadcast packets")
        self.data_originated += 1
        key = (packet.src, packet.seq)
        self._floods[key] = FloodState(rebroadcast_done=True)
        self.stack.send_mac(packet, BROADCAST_ADDR)

    # ------------------------------------------------------------------ #
    # Reception
    # ------------------------------------------------------------------ #
    def on_packet(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        if packet.kind is not PacketKind.DATA or packet.dst != BROADCAST_ADDR:
            return
        if self.neighbour_table is not None:
            self.neighbour_table.heard(from_node)
        key = (packet.src, packet.seq)
        state = self._floods.get(key)
        if state is not None:
            state.duplicates_seen += 1
            return
        state = FloodState()
        self._floods[key] = state
        self.received_floods += 1
        self.local_deliver(packet)

        if packet.ttl <= 1:
            return
        ctx = self._context(packet, state)
        decision = self.policy.decide(ctx)
        if not decision.forward:
            self.suppressed += 1
            return
        delay = decision.assessment_delay_s
        if delay <= 0.0:
            delay = float(self.rng.uniform(0.0, self.jitter_max_s))
        assert self.sim is not None
        state.pending = self.sim.schedule_in(
            delay, self._deferred_rebroadcast, packet, key
        )

    def _deferred_rebroadcast(self, packet: Packet, key: tuple[int, int]) -> None:
        state = self._floods[key]
        state.pending = None
        ctx = self._context(packet, state)
        if not self.policy.decide_deferred(ctx):
            self.suppressed += 1
            return
        copy = packet.copy_for_forwarding()
        copy.ttl -= 1
        copy.hops += 1
        state.rebroadcast_done = True
        self.rebroadcasts += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "rebroadcast",
            src=packet.src, seq=packet.seq, dup=state.duplicates_seen,
        )
        self.stack.send_mac(copy, BROADCAST_ADDR)

    def _context(self, packet: Packet, state: FloodState) -> PolicyContext:
        load = (
            self.neighbour_load_provider()
            if self.neighbour_load_provider is not None
            else 0.0
        )
        return PolicyContext(
            node_id=self.node_id,
            hop_count=packet.hops,
            neighbour_count=(
                len(self.neighbour_table) if self.neighbour_table is not None else 0
            ),
            neighbourhood_load=load,
            duplicates_seen=state.duplicates_seen,
        )
