"""Network-layer packet and protocol header formats.

Byte accounting follows RFC 3561 (AODV) field layouts so routing overhead
measured in bytes is comparable with ns-2 numbers: RREQ 24 B, RREP 20 B,
RERR 4 + 8·n B, HELLO = RREP-shaped 20 B.  NLR extends RREQ and HELLO each
by one 4-byte load field (declared in their header classes, so the byte
cost of the contribution is accounted honestly).  DATA packets carry a
20-byte IP-style network header on top of the application payload.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.net.addressing import BROADCAST_ADDR

__all__ = [
    "PacketKind",
    "Packet",
    "RreqHeader",
    "RrepHeader",
    "RerrHeader",
    "HelloHeader",
    "IP_HEADER_BYTES",
]

#: IPv4-style network header size charged to every DATA packet.
IP_HEADER_BYTES = 20

_packet_uid = itertools.count()


class PacketKind(enum.Enum):
    """Network packet types."""

    DATA = "data"
    RREQ = "rreq"
    RREP = "rrep"
    RERR = "rerr"
    HELLO = "hello"
    #: Proactive full-table update (DSDV baseline).
    UPDATE = "update"
    #: Fault-injection background load (QueueSaturate): enters a MAC queue
    #: directly, never routed, ignored by every protocol's ``on_packet``.
    NOISE = "noise"


@dataclass(slots=True)
class RreqHeader:
    """AODV route request (RFC 3561 §5.1) with the NLR load extension.

    Attributes
    ----------
    rreq_id:
        Per-originator flood identifier (dedupe key with ``origin``).
    origin, origin_seq:
        Originating node and its sequence number.
    dst, dst_seq:
        Sought destination and last known destination sequence number
        (-1 when unknown).
    hop_count:
        Hops traversed so far (incremented on rebroadcast).
    path_load:
        NLR extension: accumulated neighbourhood load along the traversed
        path (0.0 and unused under plain AODV/gossip).
    """

    rreq_id: int
    origin: int
    origin_seq: int
    dst: int
    dst_seq: int = -1
    hop_count: int = 0
    path_load: float = 0.0

    #: RFC 3561 RREQ is 24 bytes; the NLR variant appends a 4-byte load.
    BASE_BYTES = 24
    LOAD_EXT_BYTES = 4

    def size_bytes(self, with_load_extension: bool) -> int:
        """Wire size of this header."""
        return self.BASE_BYTES + (self.LOAD_EXT_BYTES if with_load_extension else 0)

    def dedupe_key(self) -> tuple[int, int]:
        """(origin, rreq_id) identifying one flood."""
        return (self.origin, self.rreq_id)


@dataclass(slots=True)
class RrepHeader:
    """AODV route reply (RFC 3561 §5.2).

    ``path_load`` echoes the winning RREQ's accumulated cost so traces and
    tests can inspect which path NLR selected.
    """

    origin: int
    dst: int
    dst_seq: int
    hop_count: int = 0
    lifetime_s: float = 10.0
    path_load: float = 0.0

    BYTES = 20

    def size_bytes(self) -> int:
        """Wire size of this header."""
        return self.BYTES


@dataclass(slots=True)
class RerrHeader:
    """AODV route error (RFC 3561 §5.3): unreachable (dst, seq) pairs."""

    unreachable: list[tuple[int, int]] = field(default_factory=list)

    BASE_BYTES = 4
    PER_DEST_BYTES = 8

    def size_bytes(self) -> int:
        """Wire size of this header."""
        return self.BASE_BYTES + self.PER_DEST_BYTES * len(self.unreachable)


@dataclass(slots=True)
class HelloHeader:
    """HELLO beacon (an unsolicited RREP in AODV) with the NLR extension.

    Attributes
    ----------
    load:
        Advertised scalar load of the sender (NLR cross-layer metric).
    neighbour_count:
        Sender's current neighbour count (used by density safeguards).
    """

    load: float = 0.0
    neighbour_count: int = 0

    BASE_BYTES = 20
    LOAD_EXT_BYTES = 4

    def size_bytes(self, with_load_extension: bool) -> int:
        """Wire size of this header."""
        return self.BASE_BYTES + (self.LOAD_EXT_BYTES if with_load_extension else 0)


@dataclass(slots=True)
class Packet:
    """A network-layer packet.

    Attributes
    ----------
    kind:
        DATA or one of the routing-control kinds.
    src, dst:
        End-to-end originator and final destination addresses.
    ttl:
        Remaining hop budget, decremented at each forward.
    payload_bytes:
        Application payload size (0 for control packets; header sizes are
        accounted separately via ``header``).
    header:
        Protocol-specific header object, if any.
    flow_id, seq:
        Traffic-flow bookkeeping for the metrics layer (-1 when N/A).
    created_at:
        Origination timestamp (end-to-end delay measurement).
    hops:
        Hops actually traversed (filled in by the forwarding engine).
    uid:
        Globally unique packet id.
    """

    kind: PacketKind
    src: int
    dst: int
    ttl: int
    payload_bytes: int = 0
    header: Any = None
    flow_id: int = -1
    seq: int = -1
    created_at: float = 0.0
    hops: int = 0
    uid: int = field(default_factory=lambda: next(_packet_uid))

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError(f"ttl must be ≥ 0, got {self.ttl}")
        if self.payload_bytes < 0:
            raise ValueError(f"payload must be ≥ 0 bytes, got {self.payload_bytes}")

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to every node."""
        return self.dst == BROADCAST_ADDR

    def wire_bytes(self, with_load_extension: bool = False) -> int:
        """Total network-layer bytes on the wire (for overhead metrics)."""
        if self.kind is PacketKind.DATA:
            return IP_HEADER_BYTES + self.payload_bytes
        if self.kind is PacketKind.RREQ:
            return self.header.size_bytes(with_load_extension)
        if self.kind is PacketKind.RREP:
            return self.header.size_bytes()
        if self.kind is PacketKind.RERR:
            return self.header.size_bytes()
        if self.kind is PacketKind.HELLO:
            return self.header.size_bytes(with_load_extension)
        if self.kind is PacketKind.UPDATE:
            return self.header.size_bytes()
        if self.kind is PacketKind.NOISE:
            return IP_HEADER_BYTES + self.payload_bytes
        raise AssertionError(f"unhandled packet kind {self.kind!r}")

    def copy_for_forwarding(self) -> "Packet":
        """Shallow copy with a fresh uid (hop-by-hop rebroadcast copies).

        The header object is shared intentionally for unicast forwarding;
        flooding protocols that mutate headers must copy them explicitly.
        """
        return Packet(
            kind=self.kind,
            src=self.src,
            dst=self.dst,
            ttl=self.ttl,
            payload_bytes=self.payload_bytes,
            header=self.header,
            flow_id=self.flow_id,
            seq=self.seq,
            created_at=self.created_at,
            hops=self.hops,
        )
