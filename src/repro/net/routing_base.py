"""Routing-table machinery and the protocol interface.

Every routing scheme under comparison implements
:class:`RoutingProtocol`; the :class:`~repro.net.node.NodeStack` wires one
instance per node between the MAC below and the traffic layer above.
Sharing the interface (and the :class:`RoutingTable`) across AODV, NLR,
gossip variants, and the static oracle keeps the comparison honest: every
scheme pays identical per-packet plumbing costs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.net.packet import Packet
from repro.phy.frame import RxInfo
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.node import NodeStack

__all__ = ["RouteEntry", "RoutingTable", "RoutingProtocol"]


@dataclass(slots=True)
class RouteEntry:
    """One routing-table row.

    Attributes
    ----------
    dst, next_hop:
        Destination and the neighbour to forward through.
    hop_count:
        Advertised distance in hops.
    seqno:
        Destination sequence number that validated this route.
    cost:
        Protocol-specific path cost (NLR: cumulative neighbourhood load;
        AODV: equals ``hop_count``).
    expiry:
        Absolute time the route becomes stale.
    valid:
        Invalidated routes are kept (for their seqno) but never used.
    precursors:
        Upstream neighbours routing through us to ``dst`` (RERR targets).
    """

    dst: int
    next_hop: int
    hop_count: int
    seqno: int
    cost: float
    expiry: float
    valid: bool = True
    precursors: set[int] = field(default_factory=set)


class RoutingTable:
    """Per-node route store with expiry handling."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._routes: dict[int, RouteEntry] = {}

    def lookup(self, dst: int) -> RouteEntry | None:
        """Valid, unexpired route to ``dst``, or None."""
        e = self._routes.get(dst)
        if e is None or not e.valid:
            return None
        if e.expiry <= self.sim.now:
            e.valid = False
            return None
        return e

    def get_any(self, dst: int) -> RouteEntry | None:
        """The entry for ``dst`` regardless of validity (seqno bookkeeping)."""
        return self._routes.get(dst)

    def upsert(self, entry: RouteEntry) -> None:
        """Insert or replace the entry for ``entry.dst``, preserving the
        existing precursor set when replacing."""
        old = self._routes.get(entry.dst)
        if old is not None:
            entry.precursors |= old.precursors
        self._routes[entry.dst] = entry

    def invalidate(self, dst: int) -> RouteEntry | None:
        """Mark ``dst``'s route invalid; returns the entry if one existed."""
        e = self._routes.get(dst)
        if e is not None and e.valid:
            e.valid = False
            return e
        return None

    def routes_via(self, next_hop: int) -> list[RouteEntry]:
        """All valid routes whose next hop is ``next_hop``."""
        return [
            e for e in self._routes.values() if e.valid and e.next_hop == next_hop
        ]

    def refresh(self, dst: int, lifetime_s: float) -> None:
        """Extend a valid route's expiry (active-route refresh on use)."""
        e = self.lookup(dst)
        if e is not None:
            e.expiry = max(e.expiry, self.sim.now + lifetime_s)

    def valid_count(self) -> int:
        """Number of currently valid, unexpired routes."""
        now = self.sim.now
        return sum(1 for e in self._routes.values() if e.valid and e.expiry > now)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, dst: int) -> bool:
        return self.lookup(dst) is not None


class RoutingProtocol(ABC):
    """Interface every routing scheme implements.

    Lifecycle: construct → :meth:`attach` (binds the node stack) →
    :meth:`start` (timers) → traffic flows via :meth:`send_data` /
    :meth:`on_packet` → :meth:`stop`.
    """

    #: Human-readable scheme name (used in reports and legends).
    name: str = "base"

    def __init__(self) -> None:
        self.stack: "NodeStack | None" = None
        self.sim: Simulator | None = None
        self.node_id: int = -1
        self.tracer: Tracer = Tracer()
        self.deliver_callback: Callable[[Packet], None] | None = None
        # Overhead accounting, read by the metrics layer.
        self.control_tx = {"rreq": 0, "rrep": 0, "rerr": 0, "hello": 0}
        self.control_bytes_tx = 0
        self.data_forwarded = 0
        self.data_originated = 0
        self.data_dropped_no_route = 0
        self.data_dropped_ttl = 0

    def attach(self, stack: "NodeStack") -> None:
        """Bind to a node stack (called by :class:`NodeStack`)."""
        self.stack = stack
        self.sim = stack.sim
        self.node_id = stack.node_id
        self.tracer = stack.tracer

    def start(self) -> None:
        """Start protocol timers (HELLO, purges).  Default: nothing."""

    def stop(self) -> None:
        """Stop protocol timers.  Default: nothing."""

    @abstractmethod
    def send_data(self, packet: Packet) -> None:
        """Originate a DATA packet from this node."""

    @abstractmethod
    def on_packet(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        """Handle a packet received from the MAC (``from_node`` = last hop)."""

    def on_send_result(self, packet: Packet, dst_mac: int, success: bool) -> None:
        """MAC transmission outcome feedback.  Default: ignore."""

    def local_deliver(self, packet: Packet) -> None:
        """Hand a DATA packet that reached its destination to the app layer."""
        if self.deliver_callback is not None:
            self.deliver_callback(packet)
