"""AODV on-demand routing (RFC 3561), the engine shared by every scheme.

Implements:

* RREQ flooding with (origin, rreq_id) duplicate suppression, TTL budget,
  per-hop jitter, and a pluggable
  :class:`~repro.net.gossip.RebroadcastPolicy` (blind flooding reproduces
  plain AODV; fixed-probability and counter-based policies reproduce the
  gossip baselines; NLR plugs in its load-adaptive policy);
* reverse/forward route creation with destination sequence numbers,
  freshness rules, and active-route lifetime refresh;
* RREP unicast back along reverse routes, with optional
  intermediate-node replies and an optional *destination reply window*
  during which RREQ copies are collected and the best-cost one answered
  (plain AODV answers the first copy; NLR opens the window);
* RERR origination/propagation on MAC-reported link failures, with
  precursor tracking;
* origin-side packet buffering during discovery, bounded retries with
  binary-exponential wait.

Cost hooks (`_route_cost_update`, `_rreq_candidate_cost`,
`_own_load_contribution`, `_advertised_load`) are identity/zero here and
overridden by :class:`repro.core.nlr.NlrRouting` — the subclass *is* the
paper's contribution, everything else is shared substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.addressing import BROADCAST_ADDR
from repro.net.gossip import (
    BlindFlooding,
    FloodState,
    PolicyContext,
    RebroadcastPolicy,
)
from repro.net.hello import HelloService, NeighbourTable
from repro.net.packet import (
    Packet,
    PacketKind,
    RerrHeader,
    RrepHeader,
    RreqHeader,
)
from repro.net.routing_base import RouteEntry, RoutingProtocol
from repro.phy.frame import RxInfo
from repro.sim.engine import EventHandle

__all__ = ["AodvConfig", "AodvRouting"]


@dataclass(slots=True)
class AodvConfig:
    """AODV protocol parameters (RFC 3561 defaults where applicable)."""

    #: Route lifetime granted on creation/refresh (ACTIVE_ROUTE_TIMEOUT).
    active_route_timeout_s: float = 10.0
    #: Discovery attempts before giving up (RREQ_RETRIES).
    rreq_retries: int = 2
    #: Wait for a RREP after the first attempt (NET_TRAVERSAL_TIME-ish);
    #: doubled on each retry.
    rreq_wait_s: float = 1.0
    #: How long an (origin, rreq_id) pair suppresses duplicates
    #: (PATH_DISCOVERY_TIME).
    rreq_id_cache_s: float = 10.0
    #: RREQ TTL for network-wide floods (NET_DIAMETER).
    rreq_ttl: int = 32
    #: Expanding-ring search (RFC 3561 §6.4): first attempts use growing
    #: TTL rings before falling back to network-wide floods.  Ring
    #: attempts do not consume ``rreq_retries``.
    expanding_ring: bool = False
    ttl_start: int = 2
    ttl_increment: int = 2
    ttl_threshold: int = 7
    #: Packets buffered per destination during discovery.
    buffer_capacity: int = 64
    #: Buffered packets older than this are dropped at flush time.
    buffer_timeout_s: float = 8.0
    #: HELLO beaconing (needed for neighbour liveness and NLR piggyback).
    hello_enabled: bool = True
    hello_interval_s: float = 1.0
    neighbour_lifetime_s: float = 2.5
    #: Intermediate nodes with a fresh-enough route may answer RREQs.
    intermediate_reply: bool = True
    #: RFC 3561 §6.6.3: when an intermediate node answers a RREQ, also
    #: unicast a *gratuitous* RREP to the destination so it learns the
    #: route back to the originator (needed when the destination must
    #: reply to unsolicited data, e.g. TCP-like request/response).
    gratuitous_rrep: bool = False
    #: Uniform jitter before an RREQ rebroadcast.
    rreq_jitter_max_s: float = 0.01
    #: Destination-side reply window: 0 answers the first RREQ copy (plain
    #: AODV); > 0 collects copies and answers the best-cost one (NLR).
    dest_reply_wait_s: float = 0.0
    #: When False, the *originator* does not extend its route's lifetime on
    #: use, so an active flow re-discovers every ``active_route_timeout_s``
    #: — the mechanism by which NLR re-evaluates paths as load shifts.
    #: Intermediate hops always refresh (no mid-path expiry losses).
    origin_refresh_on_use: bool = True
    #: Maximum RERR originations per second (RFC 3561 §6.11 limits a node
    #: to RERR_RATELIMIT = 10).  Without it a crashed next hop on a busy
    #: flow triggers one RERR per queued data packet — an RERR storm that
    #: drowns the very repair traffic the network needs.  0 disables.
    rerr_rate_limit_per_s: int = 10

    def __post_init__(self) -> None:
        if self.active_route_timeout_s <= 0:
            raise ValueError("active route timeout must be positive")
        if self.rreq_retries < 0:
            raise ValueError("rreq retries must be ≥ 0")
        if self.rreq_ttl < 1:
            raise ValueError("rreq ttl must be ≥ 1")
        if self.dest_reply_wait_s < 0:
            raise ValueError("dest reply wait must be ≥ 0")
        if self.rerr_rate_limit_per_s < 0:
            raise ValueError("rerr rate limit must be ≥ 0 (0 disables)")
        if self.expanding_ring and not (
            0 < self.ttl_start <= self.ttl_threshold <= self.rreq_ttl
            and self.ttl_increment > 0
        ):
            raise ValueError(
                "require 0 < ttl_start <= ttl_threshold <= rreq_ttl and "
                "ttl_increment > 0 for expanding-ring search"
            )


@dataclass(slots=True)
class _Discovery:
    """Origin-side state for one in-flight route discovery."""

    dst: int
    retries_used: int = 0
    ring_ttl: int | None = None  # current expanding-ring TTL, if ringing
    timer: EventHandle | None = None


@dataclass(slots=True)
class _ReplyWindow:
    """Destination-side reply-window state for one RREQ flood."""

    best_cost: float
    best_header: RreqHeader
    timer: EventHandle | None = field(default=None)


class AodvRouting(RoutingProtocol):
    """One node's AODV instance.

    Parameters
    ----------
    config:
        Protocol parameters.
    rng:
        Node-local generator (jitter draws; also handed to the policy by
        the scenario builder).
    rreq_policy:
        Rebroadcast-suppression policy for RREQ floods (default blind).
    """

    name = "aodv"
    #: Whether RREQ/HELLO carry the 4-byte NLR load extension.
    uses_load_extension = False

    def __init__(
        self,
        config: AodvConfig,
        rng: np.random.Generator,
        rreq_policy: RebroadcastPolicy | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.rng = rng
        self.rreq_policy = rreq_policy or BlindFlooding()

        self.table = None  # type: ignore[assignment]  # set in attach()
        self.neighbour_table: NeighbourTable | None = None
        self.hello: HelloService | None = None

        self.seqno = 0
        self._rreq_id = 0
        self._rreq_seen: dict[tuple[int, int], float] = {}
        self._rreq_flood: dict[tuple[int, int], FloodState] = {}
        self._buffer: dict[int, list[tuple[Packet, float]]] = {}
        self._discoveries: dict[int, _Discovery] = {}
        self._reply_windows: dict[tuple[int, int], _ReplyWindow] = {}

        # Extra statistics beyond the base counters.
        self.rreq_forwarded = 0
        self.rreq_suppressed = 0
        self.discoveries_started = 0
        self.discoveries_failed = 0
        self.data_dropped_link = 0
        self.data_dropped_buffer = 0
        self.rerr_suppressed = 0
        self._rerr_times: list[float] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, stack) -> None:  # type: ignore[override]
        super().attach(stack)
        from repro.net.routing_base import RoutingTable

        self.table = RoutingTable(stack.sim)
        self.neighbour_table = NeighbourTable(
            stack.sim, lifetime_s=self.config.neighbour_lifetime_s
        )
        if self.config.hello_enabled:
            self.hello = HelloService(
                stack,
                self.neighbour_table,
                interval_s=self.config.hello_interval_s,
                load_provider=self._advertised_load,
                jitter_fn=lambda: float(
                    self.rng.uniform(0.0, 0.1 * self.config.hello_interval_s)
                ),
            )

    def start(self) -> None:
        if self.hello is not None:
            self.hello.start()

    def stop(self) -> None:
        if self.hello is not None:
            self.hello.stop()
        for disc in self._discoveries.values():
            if disc.timer is not None and not disc.timer.expired:
                disc.timer.cancel()
        self._discoveries.clear()

    # ------------------------------------------------------------------ #
    # NLR override hooks (identity/zero in plain AODV)
    # ------------------------------------------------------------------ #
    def _own_load_contribution(self) -> float:
        """Load this node adds to a traversing RREQ's ``path_load``."""
        return 0.0

    def _advertised_load(self) -> float:
        """Load advertised in HELLO beacons."""
        return 0.0

    def _rreq_candidate_cost(self, header: RreqHeader) -> float:
        """Cost by which the destination ranks RREQ copies (lower wins)."""
        return float(header.hop_count)

    def _route_cost(self, hop_count: int, path_load: float) -> float:
        """Cost recorded in a route entry created from a RREQ/RREP."""
        return float(hop_count)

    # ------------------------------------------------------------------ #
    # Origination / forwarding of DATA
    # ------------------------------------------------------------------ #
    def send_data(self, packet: Packet) -> None:
        self.data_originated += 1
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        route = self.table.lookup(packet.dst)
        if route is not None:
            self._forward_data(packet, route)
        else:
            self._buffer_packet(packet)
            if packet.dst not in self._discoveries:
                self._start_discovery(packet.dst)

    def _forward_data(self, packet: Packet, route: RouteEntry) -> None:
        if packet.src != self.node_id or self.config.origin_refresh_on_use:
            self.table.refresh(packet.dst, self.config.active_route_timeout_s)
        self.table.refresh(route.next_hop, self.config.active_route_timeout_s)
        self.stack.send_mac(packet, route.next_hop)

    def _buffer_packet(self, packet: Packet) -> None:
        q = self._buffer.setdefault(packet.dst, [])
        if len(q) >= self.config.buffer_capacity:
            self.data_dropped_buffer += 1
            return
        q.append((packet, self.sim.now))

    def _flush_buffer(self, dst: int) -> None:
        q = self._buffer.pop(dst, [])
        horizon = self.sim.now - self.config.buffer_timeout_s
        for packet, enqueued in q:
            if enqueued < horizon:
                self.data_dropped_buffer += 1
                continue
            route = self.table.lookup(dst)
            if route is None:
                self.data_dropped_no_route += 1
                continue
            self._forward_data(packet, route)

    def _drop_buffer(self, dst: int) -> None:
        q = self._buffer.pop(dst, [])
        self.data_dropped_no_route += len(q)

    # ------------------------------------------------------------------ #
    # Route discovery (origin side)
    # ------------------------------------------------------------------ #
    def _start_discovery(self, dst: int) -> None:
        disc = _Discovery(dst=dst)
        if self.config.expanding_ring:
            disc.ring_ttl = self.config.ttl_start
        self._discoveries[dst] = disc
        self.discoveries_started += 1
        self._send_rreq(disc)

    def _rreq_ttl_for(self, disc: _Discovery) -> int:
        if disc.ring_ttl is not None:
            return disc.ring_ttl
        return self.config.rreq_ttl

    def _send_rreq(self, disc: _Discovery) -> None:
        self.seqno += 1
        self._rreq_id += 1
        known = self.table.get_any(disc.dst)
        header = RreqHeader(
            rreq_id=self._rreq_id,
            origin=self.node_id,
            origin_seq=self.seqno,
            dst=disc.dst,
            dst_seq=known.seqno if known is not None else -1,
            hop_count=0,
            path_load=self._own_load_contribution(),
        )
        packet = Packet(
            kind=PacketKind.RREQ,
            src=self.node_id,
            dst=BROADCAST_ADDR,
            ttl=self._rreq_ttl_for(disc),
            header=header,
            created_at=self.sim.now,
        )
        self._remember_rreq(header.dedupe_key())
        self.control_tx["rreq"] += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "rreq_originate",
            dst=disc.dst, rreq_id=header.rreq_id, attempt=disc.retries_used,
            ttl=packet.ttl,
        )
        self.stack.send_mac(packet, BROADCAST_ADDR)
        wait = self.config.rreq_wait_s * (2**disc.retries_used)
        disc.timer = self.sim.schedule_in(wait, self._discovery_timeout, disc)

    def _discovery_timeout(self, disc: _Discovery) -> None:
        disc.timer = None
        if self._discoveries.get(disc.dst) is not disc:
            # The discovery was completed (or replaced) in the same tick
            # this timer fired — e.g. an RREP and the timeout landing at
            # the exact same timestamp during failure churn.
            return
        if self.table.lookup(disc.dst) is not None:
            # Route appeared without us noticing a flush (e.g. via an
            # overheard RREP) — complete the discovery.
            self._discovery_succeeded(disc.dst)
            return
        if disc.ring_ttl is not None:
            # Expand the ring (free of the retry budget) until threshold.
            nxt = disc.ring_ttl + self.config.ttl_increment
            disc.ring_ttl = None if nxt > self.config.ttl_threshold else nxt
            self._send_rreq(disc)
            return
        if disc.retries_used < self.config.rreq_retries:
            disc.retries_used += 1
            self._send_rreq(disc)
        else:
            self.discoveries_failed += 1
            self.tracer.record(
                self.sim.now, "net", self.node_id, "discovery_failed", dst=disc.dst
            )
            self._discoveries.pop(disc.dst, None)
            self._drop_buffer(disc.dst)

    def _discovery_succeeded(self, dst: int) -> None:
        disc = self._discoveries.pop(dst, None)
        if disc is not None and disc.timer is not None and not disc.timer.expired:
            disc.timer.cancel()
        self._flush_buffer(dst)

    # ------------------------------------------------------------------ #
    # Packet dispatch
    # ------------------------------------------------------------------ #
    def on_packet(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        assert self.neighbour_table is not None
        if packet.kind is PacketKind.HELLO:
            assert self.hello is not None or True
            if self.hello is not None:
                self.hello.on_hello(packet, from_node)
            else:
                self.neighbour_table.heard(from_node)
            self._touch_neighbour_route(from_node)
            return
        self.neighbour_table.heard(from_node)
        if packet.kind is PacketKind.RREQ:
            self._handle_rreq(packet, from_node)
        elif packet.kind is PacketKind.RREP:
            self._handle_rrep(packet, from_node)
        elif packet.kind is PacketKind.RERR:
            self._handle_rerr(packet, from_node)
        elif packet.kind is PacketKind.DATA:
            self._handle_data(packet, from_node)

    # ------------------------------------------------------------------ #
    # RREQ handling
    # ------------------------------------------------------------------ #
    def _remember_rreq(self, key: tuple[int, int]) -> None:
        self._rreq_seen[key] = self.sim.now + self.config.rreq_id_cache_s
        if len(self._rreq_seen) > 4096:
            now = self.sim.now
            self._rreq_seen = {
                k: t for k, t in self._rreq_seen.items() if t > now
            }

    def _rreq_is_duplicate(self, key: tuple[int, int]) -> bool:
        expiry = self._rreq_seen.get(key)
        return expiry is not None and expiry > self.sim.now

    def _handle_rreq(self, packet: Packet, from_node: int) -> None:
        header: RreqHeader = packet.header
        if header.origin == self.node_id:
            return  # our own flood echoed back
        key = header.dedupe_key()
        arrived_hops = header.hop_count + 1
        arrived_cost = self._route_cost(arrived_hops, header.path_load)

        if self._rreq_is_duplicate(key):
            self._process_duplicate_rreq(packet, from_node, arrived_cost)
            state = self._rreq_flood.get(key)
            if state is not None:
                state.duplicates_seen += 1
            return
        self._remember_rreq(key)

        # Reverse route to the originator through the sender.
        self._update_route(
            dst=header.origin,
            next_hop=from_node,
            hop_count=arrived_hops,
            seqno=header.origin_seq,
            cost=arrived_cost,
        )
        self._touch_neighbour_route(from_node)

        if header.dst == self.node_id:
            self._answer_as_destination(header)
            return

        if self.config.intermediate_reply:
            route = self.table.lookup(header.dst)
            # RFC 3561 §6.6: reply if our route is at least as fresh as the
            # requested seqno; an unknown seqno (-1) accepts any valid route.
            if route is not None and route.seqno >= header.dst_seq:
                self._send_rrep_intermediate(header, route)
                return

        self._consider_rreq_rebroadcast(packet, key)

    def _process_duplicate_rreq(
        self, packet: Packet, from_node: int, arrived_cost: float
    ) -> None:
        """Hook: plain AODV ignores duplicate RREQ copies entirely."""

    def _answer_as_destination(self, header: RreqHeader) -> None:
        # RFC 3561 §6.6.1: destination bumps its seqno to at least the
        # requested value before replying.
        self.seqno = max(self.seqno, header.dst_seq)
        if self.config.dest_reply_wait_s <= 0:
            self._send_rrep_as_destination(header)
            return
        key = header.dedupe_key()
        cost = self._rreq_candidate_cost(header)
        window = self._reply_windows.get(key)
        if window is None:
            window = _ReplyWindow(best_cost=cost, best_header=header)
            window.timer = self.sim.schedule_in(
                self.config.dest_reply_wait_s, self._close_reply_window, key
            )
            self._reply_windows[key] = window
        elif cost < window.best_cost:
            window.best_cost = cost
            window.best_header = header

    def _close_reply_window(self, key: tuple[int, int]) -> None:
        window = self._reply_windows.pop(key, None)
        if window is None:
            return
        self._send_rrep_as_destination(window.best_header)

    def _send_rrep_as_destination(self, header: RreqHeader) -> None:
        self.seqno += 1
        rrep = RrepHeader(
            origin=header.origin,
            dst=self.node_id,
            dst_seq=self.seqno,
            hop_count=0,
            lifetime_s=self.config.active_route_timeout_s,
            path_load=header.path_load,
        )
        self._send_rrep(rrep)

    def _send_rrep_intermediate(self, header: RreqHeader, route: RouteEntry) -> None:
        rrep = RrepHeader(
            origin=header.origin,
            dst=header.dst,
            dst_seq=route.seqno,
            hop_count=route.hop_count,
            lifetime_s=max(0.0, route.expiry - self.sim.now),
            path_load=route.cost,
        )
        self._send_rrep(rrep)
        if self.config.gratuitous_rrep:
            self._send_gratuitous_rrep(header, route)

    def _send_gratuitous_rrep(self, header: RreqHeader, route: RouteEntry) -> None:
        """Tell the destination about the originator's route (§6.6.3).

        Shaped as a normal RREP whose "destination" is the RREQ originator
        and whose target is the sought destination; it travels along our
        forward route and installs origin-bound routes at every hop."""
        reverse = self.table.lookup(header.origin)
        if reverse is None:
            return
        grat = RrepHeader(
            origin=header.dst,               # unicast target of this RREP
            dst=header.origin,               # the route it advertises
            dst_seq=header.origin_seq,
            hop_count=reverse.hop_count,
            lifetime_s=max(0.0, reverse.expiry - self.sim.now),
            path_load=reverse.cost,
        )
        packet = Packet(
            kind=PacketKind.RREP,
            src=self.node_id,
            dst=header.dst,
            ttl=self.config.rreq_ttl,
            header=grat,
            created_at=self.sim.now,
        )
        self.control_tx["rrep"] += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "gratuitous_rrep",
            to=header.dst, about=header.origin,
        )
        self.stack.send_mac(packet, route.next_hop)

    def _send_rrep(self, rrep: RrepHeader) -> None:
        reverse = self.table.lookup(rrep.origin)
        if reverse is None:
            return  # reverse route evaporated; originator will retry
        packet = Packet(
            kind=PacketKind.RREP,
            src=self.node_id,
            dst=rrep.origin,
            ttl=self.config.rreq_ttl,
            header=rrep,
            created_at=self.sim.now,
        )
        self.control_tx["rrep"] += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "rrep_send",
            origin=rrep.origin, dst=rrep.dst, hops=rrep.hop_count,
        )
        self.stack.send_mac(packet, reverse.next_hop)

    def _consider_rreq_rebroadcast(
        self, packet: Packet, key: tuple[int, int]
    ) -> None:
        if packet.ttl <= 1:
            return
        state = FloodState()
        self._rreq_flood[key] = state
        if len(self._rreq_flood) > 4096:
            self._rreq_flood.clear()  # stale floods; cache is advisory only
            self._rreq_flood[key] = state
        ctx = self._policy_context(packet, state)
        decision = self.rreq_policy.decide(ctx)
        if not decision.forward:
            self.rreq_suppressed += 1
            return
        delay = decision.assessment_delay_s
        if delay <= 0.0:
            delay = float(self.rng.uniform(0.0, self.config.rreq_jitter_max_s))
        state.pending = self.sim.schedule_in(
            delay, self._rebroadcast_rreq, packet, key
        )

    def _rebroadcast_rreq(self, packet: Packet, key: tuple[int, int]) -> None:
        state = self._rreq_flood.get(key)
        if state is None:  # cache was flushed; forward unconditionally
            state = FloodState()
        state.pending = None
        ctx = self._policy_context(packet, state)
        if not self.rreq_policy.decide_deferred(ctx):
            self.rreq_suppressed += 1
            return
        old: RreqHeader = packet.header
        header = RreqHeader(
            rreq_id=old.rreq_id,
            origin=old.origin,
            origin_seq=old.origin_seq,
            dst=old.dst,
            dst_seq=old.dst_seq,
            hop_count=old.hop_count + 1,
            path_load=old.path_load + self._own_load_contribution(),
        )
        copy = packet.copy_for_forwarding()
        copy.header = header
        copy.ttl -= 1
        copy.hops += 1
        state.rebroadcast_done = True
        self.rreq_forwarded += 1
        self.control_tx["rreq"] += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "rreq_forward",
            origin=header.origin, rreq_id=header.rreq_id, dst=header.dst,
            ttl=copy.ttl,
        )
        self.stack.send_mac(copy, BROADCAST_ADDR)

    def _policy_context(self, packet: Packet, state: FloodState) -> PolicyContext:
        assert self.neighbour_table is not None
        return PolicyContext(
            node_id=self.node_id,
            hop_count=packet.header.hop_count,
            neighbour_count=len(self.neighbour_table),
            neighbourhood_load=self._own_load_contribution(),
            duplicates_seen=state.duplicates_seen,
        )

    # ------------------------------------------------------------------ #
    # RREP handling
    # ------------------------------------------------------------------ #
    def _handle_rrep(self, packet: Packet, from_node: int) -> None:
        header: RrepHeader = packet.header
        hops_to_dst = header.hop_count + 1
        self._update_route(
            dst=header.dst,
            next_hop=from_node,
            hop_count=hops_to_dst,
            seqno=header.dst_seq,
            cost=self._route_cost(hops_to_dst, header.path_load),
            lifetime_s=header.lifetime_s,
        )
        self._touch_neighbour_route(from_node)

        if header.origin == self.node_id:
            self.tracer.record(
                self.sim.now, "net", self.node_id, "rrep_arrived",
                dst=header.dst, hops=hops_to_dst,
            )
            self._discovery_succeeded(header.dst)
            return

        reverse = self.table.lookup(header.origin)
        if reverse is None:
            return  # cannot forward; originator retries
        forward = self.table.lookup(header.dst)
        if forward is not None:
            forward.precursors.add(reverse.next_hop)
        fwd_header = RrepHeader(
            origin=header.origin,
            dst=header.dst,
            dst_seq=header.dst_seq,
            hop_count=hops_to_dst,
            lifetime_s=header.lifetime_s,
            path_load=header.path_load,
        )
        copy = packet.copy_for_forwarding()
        copy.header = fwd_header
        copy.ttl -= 1
        copy.hops += 1
        if copy.ttl <= 0:
            return
        self.control_tx["rrep"] += 1
        self.stack.send_mac(copy, reverse.next_hop)

    # ------------------------------------------------------------------ #
    # RERR handling / link failures
    # ------------------------------------------------------------------ #
    def _handle_rerr(self, packet: Packet, from_node: int) -> None:
        header: RerrHeader = packet.header
        propagate: list[tuple[int, int]] = []
        for dst, seq in header.unreachable:
            entry = self.table.get_any(dst)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == from_node
            ):
                entry.seqno = max(entry.seqno, seq)
                self.table.invalidate(dst)
                if entry.precursors:
                    propagate.append((dst, entry.seqno))
        if propagate:
            self._send_rerr(propagate)

    def on_send_result(self, packet: Packet, dst_mac: int, success: bool) -> None:
        if success or dst_mac == BROADCAST_ADDR:
            return
        self._handle_link_failure(dst_mac, packet)

    def _handle_link_failure(self, neighbour: int, packet: Packet) -> None:
        self.tracer.record(
            self.sim.now, "net", self.node_id, "link_failure", neighbour=neighbour
        )
        if packet.kind is PacketKind.DATA:
            self.data_dropped_link += 1
        broken = self.table.routes_via(neighbour)
        unreachable: list[tuple[int, int]] = []
        for entry in broken:
            entry.seqno += 1  # RFC 3561 §6.11: bump seqno on invalidation
            self.table.invalidate(entry.dst)
            if entry.precursors:
                unreachable.append((entry.dst, entry.seqno))
        direct = self.table.get_any(neighbour)
        if direct is not None and direct.valid:
            direct.seqno += 1
            self.table.invalidate(neighbour)
            if direct.precursors:
                unreachable.append((neighbour, direct.seqno))
        if unreachable:
            self._send_rerr(unreachable)

    def _send_rerr(self, unreachable: list[tuple[int, int]]) -> None:
        limit = self.config.rerr_rate_limit_per_s
        if limit > 0:
            now = self.sim.now
            window = self._rerr_times
            while window and window[0] <= now - 1.0:
                window.pop(0)
            if len(window) >= limit:
                # RFC 3561 §6.11 RERR_RATELIMIT: drop the origination; the
                # information is advisory and neighbours re-learn from the
                # next data-plane failure once the window drains.
                self.rerr_suppressed += 1
                return
            window.append(now)
        packet = Packet(
            kind=PacketKind.RERR,
            src=self.node_id,
            dst=BROADCAST_ADDR,
            ttl=1,
            header=RerrHeader(unreachable=list(unreachable)),
            created_at=self.sim.now,
        )
        self.control_tx["rerr"] += 1
        self.tracer.record(
            self.sim.now, "net", self.node_id, "rerr_send",
            count=len(unreachable),
        )
        self.stack.send_mac(packet, BROADCAST_ADDR)

    # ------------------------------------------------------------------ #
    # DATA handling
    # ------------------------------------------------------------------ #
    def _handle_data(self, packet: Packet, from_node: int) -> None:
        packet.hops += 1  # the link just crossed
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.data_dropped_ttl += 1
            return
        route = self.table.lookup(packet.dst)
        if route is None:
            self.data_dropped_no_route += 1
            entry = self.table.get_any(packet.dst)
            seq = entry.seqno + 1 if entry is not None else 0
            self._send_rerr([(packet.dst, seq)])
            return
        route.precursors.add(from_node)
        self.data_forwarded += 1
        self._forward_data(packet, route)

    # ------------------------------------------------------------------ #
    # Route maintenance helpers
    # ------------------------------------------------------------------ #
    def _update_route(
        self,
        dst: int,
        next_hop: int,
        hop_count: int,
        seqno: int,
        cost: float,
        lifetime_s: float | None = None,
    ) -> None:
        if dst == self.node_id:
            return
        lifetime = (
            lifetime_s if lifetime_s is not None else self.config.active_route_timeout_s
        )
        existing = self.table.get_any(dst)
        accept = (
            existing is None
            or not existing.valid
            or seqno > existing.seqno
            or (seqno == existing.seqno and cost < existing.cost)
        )
        if not accept:
            return
        self.table.upsert(
            RouteEntry(
                dst=dst,
                next_hop=next_hop,
                hop_count=hop_count,
                seqno=seqno,
                cost=cost,
                expiry=self.sim.now + lifetime,
            )
        )

    def _touch_neighbour_route(self, neighbour: int) -> None:
        """Maintain the trivial one-hop route to a heard neighbour."""
        existing = self.table.get_any(neighbour)
        seqno = existing.seqno if existing is not None else 0
        self._update_route(
            dst=neighbour,
            next_hop=neighbour,
            hop_count=1,
            seqno=seqno,
            cost=self._route_cost(1, 0.0),
        )
        self.table.refresh(neighbour, self.config.active_route_timeout_s)
