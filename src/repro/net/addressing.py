"""Network addressing.

Addresses are plain integers equal to node ids (the mesh has one interface
per node and no address resolution — the standard simulator shortcut, which
ns-2 also takes for MANET stacks).
"""

from __future__ import annotations

__all__ = ["NodeAddress", "BROADCAST_ADDR", "is_valid_address"]

#: Type alias for readability in signatures.
NodeAddress = int

#: Network-layer broadcast address.
BROADCAST_ADDR: NodeAddress = -1


def is_valid_address(addr: int, allow_broadcast: bool = True) -> bool:
    """True for a well-formed destination address.

    >>> is_valid_address(3)
    True
    >>> is_valid_address(BROADCAST_ADDR)
    True
    >>> is_valid_address(BROADCAST_ADDR, allow_broadcast=False)
    False
    >>> is_valid_address(-7)
    False
    """
    if addr == BROADCAST_ADDR:
        return allow_broadcast
    return addr >= 0
