"""Rebroadcast-suppression policies for flood-style dissemination.

Whether a node that has just received a flooded packet (an RREQ, or an
application broadcast) should rebroadcast it is a *policy* separable from
the protocol machinery.  The baselines here are the classic broadcast-storm
countermeasures the paper's group compares against throughout their work:

* :class:`BlindFlooding` — always rebroadcast (plain AODV).
* :class:`FixedProbabilityGossip` — rebroadcast with constant probability
  *p* (Haas et al. gossip routing).
* :class:`CounterBasedPolicy` — wait a random assessment delay (RAD); if
  ``counter_threshold`` or more duplicate copies are overheard meanwhile,
  suppress (Ni et al., and the group's own counter-based scheme papers).

The load-adaptive policy that constitutes part of the paper's contribution
lives in :mod:`repro.core.forwarding_policy` and implements the same
interface.

A policy answers :meth:`decide` with a :class:`RebroadcastDecision`:
``forward`` now/never, plus an optional ``assessment_delay_s`` during which
duplicate arrivals are counted before a deferred :meth:`decide_deferred`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RebroadcastDecision",
    "PolicyContext",
    "RebroadcastPolicy",
    "BlindFlooding",
    "FixedProbabilityGossip",
    "CounterBasedPolicy",
    "FloodState",
]


@dataclass(slots=True)
class FloodState:
    """Per-flood bookkeeping at one node (shared by every flood consumer).

    Attributes
    ----------
    duplicates_seen:
        Copies of the flood overheard after the first.
    rebroadcast_done:
        Whether this node already forwarded the flood.
    pending:
        Scheduled deferred-rebroadcast event, if any (opaque handle).
    """

    duplicates_seen: int = 0
    rebroadcast_done: bool = False
    pending: object | None = None


@dataclass(frozen=True, slots=True)
class PolicyContext:
    """Everything a policy may condition on when a flood packet arrives.

    Attributes
    ----------
    node_id:
        The deciding node.
    hop_count:
        Hops the packet has travelled (0 at the originator's neighbours).
    neighbour_count:
        Deciding node's current one-hop degree.
    neighbourhood_load:
        Cross-layer neighbourhood load in [0, 1] (0 for non-NLR schemes).
    duplicates_seen:
        Copies of this flood already overheard (counter-based policies).
    """

    node_id: int
    hop_count: int
    neighbour_count: int
    neighbourhood_load: float
    duplicates_seen: int


@dataclass(frozen=True, slots=True)
class RebroadcastDecision:
    """Outcome of a policy consultation.

    ``forward`` applies immediately unless ``assessment_delay_s > 0``, in
    which case the caller waits, counts duplicates, then consults
    :meth:`RebroadcastPolicy.decide_deferred`.
    """

    forward: bool
    assessment_delay_s: float = 0.0


class RebroadcastPolicy(ABC):
    """Strategy interface for flood-suppression schemes."""

    #: Name used in legends/reports.
    name: str = "policy"

    @abstractmethod
    def decide(self, ctx: PolicyContext) -> RebroadcastDecision:
        """Initial decision when the first copy of a flood arrives."""

    def decide_deferred(self, ctx: PolicyContext) -> bool:
        """Final decision after an assessment delay (default: keep the
        initial positive decision)."""
        return True


class BlindFlooding(RebroadcastPolicy):
    """Always rebroadcast — plain flooding, the AODV default."""

    name = "blind"

    def decide(self, ctx: PolicyContext) -> RebroadcastDecision:
        return RebroadcastDecision(forward=True)


class FixedProbabilityGossip(RebroadcastPolicy):
    """Bernoulli(p) rebroadcast — gossip routing.

    Parameters
    ----------
    p:
        Forwarding probability in (0, 1].
    rng:
        Generator for the coin flips.
    always_first_hops:
        Floods younger than this many hops always forward; gossip papers
        use 1–2 hops to prevent premature die-out near the source.
    """

    def __init__(
        self, p: float, rng: np.random.Generator, always_first_hops: int = 1
    ) -> None:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p!r}")
        if always_first_hops < 0:
            raise ValueError("always_first_hops must be ≥ 0")
        self.p = p
        self.rng = rng
        self.always_first_hops = always_first_hops
        self.name = f"gossip(p={p:g})"

    def decide(self, ctx: PolicyContext) -> RebroadcastDecision:
        if ctx.hop_count < self.always_first_hops:
            return RebroadcastDecision(forward=True)
        return RebroadcastDecision(forward=bool(self.rng.random() < self.p))


class CounterBasedPolicy(RebroadcastPolicy):
    """Counter-based suppression with a random assessment delay.

    On first receipt, wait a uniform delay in ``[0, rad_max_s]`` while
    counting duplicate copies; forward only if fewer than ``threshold``
    copies were overheard (≥ threshold copies mean the neighbourhood is
    already covered).

    Parameters
    ----------
    threshold:
        Duplicate count at which rebroadcast is suppressed (Ni et al.
        recommend 3–4).
    rad_max_s:
        Maximum random assessment delay.
    rng:
        Generator for the delay draw.
    """

    def __init__(
        self, threshold: int, rng: np.random.Generator, rad_max_s: float = 0.01
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be ≥ 1, got {threshold}")
        if rad_max_s <= 0:
            raise ValueError(f"rad_max_s must be positive, got {rad_max_s!r}")
        self.threshold = threshold
        self.rad_max_s = rad_max_s
        self.rng = rng
        self.name = f"counter(c={threshold})"

    def decide(self, ctx: PolicyContext) -> RebroadcastDecision:
        return RebroadcastDecision(
            forward=True,
            assessment_delay_s=float(self.rng.uniform(0.0, self.rad_max_s)),
        )

    def decide_deferred(self, ctx: PolicyContext) -> bool:
        return ctx.duplicates_seen < self.threshold
