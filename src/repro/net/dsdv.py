"""DSDV — Destination-Sequenced Distance Vector routing (Perkins & Bhagwat).

The classic *proactive* comparator of the 1990s/2000s MANET literature:
every node periodically broadcasts its full routing table, entries carry
destination-issued even sequence numbers, and link breaks advertise an
odd-sequence infinite metric so stale paths die network-wide.

Simplifications relative to the 1994 paper, each standard in teaching
implementations and none affecting the comparative shapes measured here:

* no weighted settling time (updates propagate immediately rather than
  being damped against route flutter);
* full-table dumps only (no incremental updates);
* triggered updates are sent on link breaks but not rate-limited.

DSDV exists in this repository as an evaluation baseline: its steady-state
control overhead is O(nodes²) per period regardless of traffic, the price
of proactivity that on-demand protocols (AODV/NLR) were designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.addressing import BROADCAST_ADDR
from repro.net.packet import Packet, PacketKind
from repro.net.routing_base import RoutingProtocol
from repro.phy.frame import RxInfo
from repro.sim.process import PeriodicProcess

__all__ = ["DsdvConfig", "DsdvHeader", "DsdvRouting", "INFINITE_METRIC"]

#: Metric advertised for broken routes (RIP-style infinity).
INFINITE_METRIC = 16


@dataclass(slots=True)
class DsdvHeader:
    """A full-table DSDV update.

    Attributes
    ----------
    entries:
        List of ``(dst, metric, seqno)`` triples.
    """

    entries: list[tuple[int, int, int]] = field(default_factory=list)

    BASE_BYTES = 12
    PER_ENTRY_BYTES = 8

    def size_bytes(self) -> int:
        """Wire size of this update."""
        return self.BASE_BYTES + self.PER_ENTRY_BYTES * len(self.entries)


@dataclass(slots=True)
class DsdvConfig:
    """DSDV parameters."""

    #: Full-table broadcast period (the 1994 paper's periodic update).
    update_interval_s: float = 5.0
    #: Entries unheard for this long are purged (≥ 2 periods).
    route_lifetime_s: float = 15.0
    #: Trigger an immediate update when a link break is detected.
    triggered_updates: bool = True

    def __post_init__(self) -> None:
        if self.update_interval_s <= 0:
            raise ValueError("update interval must be positive")
        if self.route_lifetime_s < self.update_interval_s:
            raise ValueError("route lifetime must cover ≥ 1 update interval")


@dataclass(slots=True)
class _DsdvEntry:
    dst: int
    next_hop: int
    metric: int
    seqno: int
    heard_at: float


class DsdvRouting(RoutingProtocol):
    """One node's DSDV instance.

    Parameters
    ----------
    config:
        Protocol parameters.
    rng:
        Node-local generator (update jitter).
    """

    name = "dsdv"

    def __init__(self, config: DsdvConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.config = config
        self.rng = rng
        self.seqno = 0  # own destination sequence number (kept even)
        self._routes: dict[int, _DsdvEntry] = {}
        self._proc: PeriodicProcess | None = None
        self.updates_tx = 0
        self.triggered_tx = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        assert self.sim is not None
        self._proc = PeriodicProcess(
            self.sim,
            self.config.update_interval_s,
            self._broadcast_update,
            jitter_fn=lambda: float(
                self.rng.uniform(0.0, 0.1 * self.config.update_interval_s)
            ),
        )
        # First advertisement almost immediately so tables converge fast.
        self._proc.start(initial_delay=float(self.rng.uniform(0.01, 0.2)))

    def stop(self) -> None:
        if self._proc is not None:
            self._proc.stop()
            self._proc = None

    # ------------------------------------------------------------------ #
    # Table access (for tests/metrics)
    # ------------------------------------------------------------------ #
    def route_to(self, dst: int) -> _DsdvEntry | None:
        """Current usable entry for ``dst``, or None."""
        e = self._routes.get(dst)
        if e is None or e.metric >= INFINITE_METRIC:
            return None
        if e.heard_at + self.config.route_lifetime_s <= self.sim.now:
            return None
        return e

    def table_size(self) -> int:
        """Number of live (finite-metric) entries."""
        return sum(
            1 for e in self._routes.values() if e.metric < INFINITE_METRIC
        )

    # ------------------------------------------------------------------ #
    # Periodic / triggered updates
    # ------------------------------------------------------------------ #
    def _advertised_entries(self) -> list[tuple[int, int, int]]:
        self.seqno += 2  # destination seqnos stay even while alive
        entries = [(self.node_id, 0, self.seqno)]
        horizon = self.sim.now - self.config.route_lifetime_s
        for e in self._routes.values():
            if e.heard_at >= horizon or e.metric >= INFINITE_METRIC:
                entries.append((e.dst, e.metric, e.seqno))
        return entries

    def _broadcast_update(self) -> None:
        header = DsdvHeader(entries=self._advertised_entries())
        packet = Packet(
            kind=PacketKind.UPDATE,
            src=self.node_id,
            dst=BROADCAST_ADDR,
            ttl=1,
            header=header,
            created_at=self.sim.now,
        )
        self.updates_tx += 1
        self.control_tx["hello"] += 1
        self.stack.send_mac(packet, BROADCAST_ADDR)

    # ------------------------------------------------------------------ #
    # Packet handling
    # ------------------------------------------------------------------ #
    def on_packet(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        if packet.kind is PacketKind.UPDATE:
            self._handle_update(packet.header, from_node)
        elif packet.kind is PacketKind.DATA:
            self._handle_data(packet)

    def _handle_update(self, header: DsdvHeader, from_node: int) -> None:
        now = self.sim.now
        for dst, metric, seqno in header.entries:
            if dst == self.node_id:
                continue
            new_metric = min(metric + 1, INFINITE_METRIC)
            cur = self._routes.get(dst)
            accept = (
                cur is None
                or seqno > cur.seqno
                or (seqno == cur.seqno and new_metric < cur.metric)
            )
            if accept:
                self._routes[dst] = _DsdvEntry(
                    dst=dst,
                    next_hop=from_node,
                    metric=new_metric,
                    seqno=seqno,
                    heard_at=now,
                )
            elif cur is not None and cur.next_hop == from_node:
                cur.heard_at = now  # existing path re-confirmed

    def _handle_data(self, packet: Packet) -> None:
        packet.hops += 1
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.data_dropped_ttl += 1
            return
        self.data_forwarded += 1
        self._forward(packet)

    def send_data(self, packet: Packet) -> None:
        self.data_originated += 1
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        entry = self.route_to(packet.dst)
        if entry is None:
            self.data_dropped_no_route += 1
            return
        self.stack.send_mac(packet, entry.next_hop)

    # ------------------------------------------------------------------ #
    # Link failures
    # ------------------------------------------------------------------ #
    def on_send_result(self, packet: Packet, dst_mac: int, success: bool) -> None:
        if success or dst_mac == BROADCAST_ADDR:
            return
        broken = False
        for e in self._routes.values():
            if e.next_hop == dst_mac and e.metric < INFINITE_METRIC:
                e.metric = INFINITE_METRIC
                e.seqno += 1  # odd seqno marks a route died en route
                broken = True
        if packet.kind is PacketKind.DATA:
            self.data_dropped_no_route += 1
        if broken and self.config.triggered_updates:
            self.triggered_tx += 1
            self._broadcast_update()
