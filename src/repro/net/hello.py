"""HELLO beaconing and neighbour tables.

AODV-family protocols learn one-hop connectivity from periodic HELLO
broadcasts.  The service here additionally exposes the *piggyback hook* NLR
uses: a provider callable fills each outgoing :class:`HelloHeader` with the
sender's advertised load, and a listener hook observes every received
HELLO, which is how the neighbourhood-load table is maintained without any
extra control traffic — the cross-layer information rides on frames the
protocol sends anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.net.addressing import BROADCAST_ADDR
from repro.net.packet import HelloHeader, Packet, PacketKind
from repro.sim.process import PeriodicProcess
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack

__all__ = ["Neighbour", "NeighbourTable", "HelloService"]


@dataclass(slots=True)
class Neighbour:
    """State kept per one-hop neighbour.

    Attributes
    ----------
    node_id:
        Neighbour address.
    last_heard:
        Time of the most recent HELLO (or any packet) from it.
    load:
        Most recently advertised load (NLR extension; 0 otherwise).
    neighbour_count:
        The neighbour's own advertised degree.
    """

    node_id: int
    last_heard: float
    load: float = 0.0
    neighbour_count: int = 0


class NeighbourTable:
    """One-hop neighbour set with staleness expiry.

    Parameters
    ----------
    sim:
        Simulator, for timestamps.
    lifetime_s:
        A neighbour unheard for this long is dropped (AODV's
        ``ALLOWED_HELLO_LOSS × HELLO_INTERVAL``, default 2 × 1 s ... the
        RFC value is 2; we keep 2.5 to tolerate beacon jitter).
    """

    def __init__(self, sim: Simulator, lifetime_s: float = 2.5) -> None:
        if lifetime_s <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime_s!r}")
        self.sim = sim
        self.lifetime_s = lifetime_s
        self._table: dict[int, Neighbour] = {}

    def heard(
        self, node_id: int, load: float | None = None, neighbour_count: int | None = None
    ) -> None:
        """Record evidence that ``node_id`` is alive (optionally with its
        advertised load/degree from a HELLO)."""
        n = self._table.get(node_id)
        if n is None:
            n = Neighbour(node_id=node_id, last_heard=self.sim.now)
            self._table[node_id] = n
        n.last_heard = self.sim.now
        if load is not None:
            n.load = load
        if neighbour_count is not None:
            n.neighbour_count = neighbour_count

    def drop(self, node_id: int) -> None:
        """Remove ``node_id`` immediately, without waiting for expiry.

        Called on MAC-reported link failures: the neighbour is provably
        unreachable *now*, so its record (and any advertised load riding on
        it) must not linger for up to ``lifetime_s``.
        """
        self._table.pop(node_id, None)

    def _expire(self) -> None:
        horizon = self.sim.now - self.lifetime_s
        stale = [nid for nid, n in self._table.items() if n.last_heard < horizon]
        for nid in stale:
            del self._table[nid]

    def neighbours(self) -> list[Neighbour]:
        """Live neighbour records."""
        self._expire()
        return list(self._table.values())

    def ids(self) -> list[int]:
        """Live neighbour ids."""
        self._expire()
        return list(self._table.keys())

    def get(self, node_id: int) -> Neighbour | None:
        """Record for ``node_id`` if alive."""
        self._expire()
        return self._table.get(node_id)

    def __contains__(self, node_id: int) -> bool:
        self._expire()
        return node_id in self._table

    def __len__(self) -> int:
        self._expire()
        return len(self._table)

    def mean_advertised_load(self) -> float:
        """Mean of neighbours' advertised loads (0 with no neighbours)."""
        ns = self.neighbours()
        if not ns:
            return 0.0
        return sum(n.load for n in ns) / len(ns)


class HelloService:
    """Periodic HELLO broadcaster bound to a node stack.

    Parameters
    ----------
    stack:
        The node stack to transmit through.
    table:
        Neighbour table updated on receptions.
    interval_s:
        Beacon period (AODV HELLO_INTERVAL, 1 s).
    load_provider:
        Optional ``() -> float`` giving the load value to advertise (NLR).
    jitter_fn:
        Optional ``() -> float`` beacon jitter in [0, interval).
    """

    def __init__(
        self,
        stack: "NodeStack",
        table: NeighbourTable,
        interval_s: float = 1.0,
        load_provider: Callable[[], float] | None = None,
        jitter_fn: Callable[[], float] | None = None,
    ) -> None:
        self.stack = stack
        self.table = table
        self.interval_s = interval_s
        self.load_provider = load_provider
        self.sent = 0
        self._proc = PeriodicProcess(
            stack.sim, interval_s, self._beacon, jitter_fn=jitter_fn
        )

    def start(self) -> None:
        """Begin beaconing (first beacon within one jittered interval)."""
        self._proc.start()

    def stop(self) -> None:
        """Stop beaconing."""
        self._proc.stop()

    def _beacon(self) -> None:
        load = self.load_provider() if self.load_provider is not None else 0.0
        header = HelloHeader(load=load, neighbour_count=len(self.table))
        pkt = Packet(
            kind=PacketKind.HELLO,
            src=self.stack.node_id,
            dst=BROADCAST_ADDR,
            ttl=1,
            header=header,
            created_at=self.stack.sim.now,
        )
        self.sent += 1
        self.stack.routing.control_tx["hello"] += 1
        self.stack.send_mac(pkt, BROADCAST_ADDR)

    def on_hello(self, packet: Packet, from_node: int) -> None:
        """Process a received HELLO (routing protocols call this)."""
        h: HelloHeader = packet.header
        self.table.heard(from_node, load=h.load, neighbour_count=h.neighbour_count)
