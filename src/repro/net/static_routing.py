"""Static Dijkstra "oracle" routing over the true connectivity graph.

The oracle knows the real topology (which no distributed protocol does) and
forwards every packet along a precomputed shortest path.  It serves as a
sanity bound in the evaluation: no on-demand scheme can beat its hop
counts, and its delivery ratio isolates MAC losses from routing losses.
"""

from __future__ import annotations

import networkx as nx

from repro.net.packet import Packet, PacketKind
from repro.net.routing_base import RoutingProtocol
from repro.phy.frame import RxInfo

__all__ = ["RouteOracle", "StaticRouting"]


class RouteOracle:
    """Shared all-pairs next-hop table computed from a networkx graph.

    Parameters
    ----------
    graph:
        Undirected connectivity graph with node-id vertices.  Edge weight
        attribute ``weight`` is honoured when present (defaults to 1).
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.graph = graph
        self._next_hop: dict[int, dict[int, int]] = {}
        for src, paths in nx.all_pairs_dijkstra_path(graph):
            table: dict[int, int] = {}
            for dst, path in paths.items():
                if len(path) >= 2:
                    table[dst] = path[1]
            self._next_hop[src] = table

    def next_hop(self, src: int, dst: int) -> int | None:
        """Next hop from ``src`` toward ``dst``, or None if unreachable."""
        return self._next_hop.get(src, {}).get(dst)

    def hop_count(self, src: int, dst: int) -> int | None:
        """Shortest-path length in hops, or None if unreachable."""
        try:
            return nx.shortest_path_length(self.graph, src, dst)
        except nx.NetworkXNoPath:
            return None


class StaticRouting(RoutingProtocol):
    """Per-node oracle routing instance.

    Parameters
    ----------
    oracle:
        The shared :class:`RouteOracle`.
    """

    name = "oracle"

    def __init__(self, oracle: RouteOracle) -> None:
        super().__init__()
        self.oracle = oracle

    def send_data(self, packet: Packet) -> None:
        self.data_originated += 1
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        self._forward(packet)

    def on_packet(self, packet: Packet, from_node: int, info: RxInfo) -> None:
        if packet.kind is not PacketKind.DATA:
            return
        packet.hops += 1  # the link just crossed
        if packet.dst == self.node_id:
            self.local_deliver(packet)
            return
        packet.ttl -= 1
        if packet.ttl <= 0:
            self.data_dropped_ttl += 1
            return
        self.data_forwarded += 1
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        nh = self.oracle.next_hop(self.node_id, packet.dst)
        if nh is None:
            self.data_dropped_no_route += 1
            return
        self.stack.send_mac(packet, nh)
