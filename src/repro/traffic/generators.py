"""Application traffic sources.

Every source drives a :class:`~repro.net.node.NodeStack` with DATA packets
for one :class:`~repro.traffic.flows.FlowSpec` and reports each send to an
optional observer (the metrics layer's
:class:`~repro.metrics.flowstats.FlowStatsCollector`).

* :class:`CbrSource` — constant bit rate, the paper family's default.
* :class:`PoissonSource` — exponential inter-arrivals at the same mean
  rate (burstier medium occupancy, used in robustness experiments).
* :class:`OnOffSource` — exponential ON/OFF periods with CBR during ON
  (VoIP/video-like burst structure).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.sim.engine import EventHandle, Simulator
from repro.traffic.flows import FlowSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack
    from repro.net.packet import Packet

__all__ = ["Source", "CbrSource", "PoissonSource", "OnOffSource"]


class Source(ABC):
    """Base class driving one flow from its source node.

    Parameters
    ----------
    sim:
        Event engine.
    stack:
        The flow's source node stack.
    flow:
        Flow specification.
    on_send:
        Optional observer called with each originated packet.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        flow: FlowSpec,
        on_send: Callable[["Packet"], None] | None = None,
    ) -> None:
        if stack.node_id != flow.src:
            raise ValueError(
                f"flow {flow.flow_id} sources at node {flow.src}, "
                f"not node {stack.node_id}"
            )
        self.sim = sim
        self.stack = stack
        self.flow = flow
        self.on_send = on_send
        self.seq = 0
        self._handle: EventHandle | None = None
        self._running = False

    def start(self) -> None:
        """Arm the source to begin at ``flow.start_s``."""
        if self._running:
            return
        self._running = True
        start = max(self.flow.start_s, self.sim.now)
        self._handle = self.sim.schedule(start, self._emit)

    def stop(self) -> None:
        """Silence the source immediately."""
        self._running = False
        if self._handle is not None and not self._handle.expired:
            self._handle.cancel()
        self._handle = None

    def _emit(self) -> None:
        self._handle = None
        if not self._running or self.sim.now >= self.flow.stop_s:
            self._running = False
            return
        packet = self.stack.send_data(
            dst=self.flow.dst,
            payload_bytes=self.flow.payload_bytes,
            flow_id=self.flow.flow_id,
            seq=self.seq,
        )
        self.seq += 1
        if self.on_send is not None:
            self.on_send(packet)
        gap = self.next_gap_s()
        if self.sim.now + gap < self.flow.stop_s:
            self._handle = self.sim.schedule_in(gap, self._emit)
        else:
            self._running = False

    @abstractmethod
    def next_gap_s(self) -> float:
        """Inter-packet gap after the packet just sent."""


class CbrSource(Source):
    """Constant bit rate: fixed gap ``1 / rate_pps``."""

    def next_gap_s(self) -> float:
        return 1.0 / self.flow.rate_pps


class PoissonSource(Source):
    """Poisson arrivals: exponential gaps with mean ``1 / rate_pps``.

    Parameters
    ----------
    rng:
        Generator for the gap draws (own stream per flow).
    """

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        flow: FlowSpec,
        rng: np.random.Generator,
        on_send: Callable[["Packet"], None] | None = None,
    ) -> None:
        super().__init__(sim, stack, flow, on_send)
        self.rng = rng

    def next_gap_s(self) -> float:
        return float(self.rng.exponential(1.0 / self.flow.rate_pps))


class OnOffSource(Source):
    """Exponential ON/OFF bursts with CBR inside ON periods.

    The mean rate over time equals ``rate_pps · on_mean / (on_mean +
    off_mean)``; configure ``rate_pps`` as the *peak* in-burst rate.

    Parameters
    ----------
    rng:
        Generator for period draws.
    on_mean_s, off_mean_s:
        Mean burst / silence durations.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: "NodeStack",
        flow: FlowSpec,
        rng: np.random.Generator,
        on_mean_s: float = 1.0,
        off_mean_s: float = 1.0,
        on_send: Callable[["Packet"], None] | None = None,
    ) -> None:
        if on_mean_s <= 0 or off_mean_s <= 0:
            raise ValueError("ON/OFF means must be positive")
        super().__init__(sim, stack, flow, on_send)
        self.rng = rng
        self.on_mean_s = on_mean_s
        self.off_mean_s = off_mean_s
        self._burst_ends = 0.0

    def _emit(self) -> None:
        if self.sim.now >= self._burst_ends:
            # Start a fresh burst window upon (re-)entry.
            self._burst_ends = self.sim.now + float(
                self.rng.exponential(self.on_mean_s)
            )
        super()._emit()

    def next_gap_s(self) -> float:
        gap = 1.0 / self.flow.rate_pps
        if self.sim.now + gap < self._burst_ends:
            return gap
        off = float(self.rng.exponential(self.off_mean_s))
        return (self._burst_ends - self.sim.now) + off
