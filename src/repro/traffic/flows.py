"""Flow specifications and flow-set sampling.

A :class:`FlowSpec` describes one unidirectional application flow.  The
two samplers produce the flow mixes the evaluation uses:

* :func:`random_flow_pairs` — distinct random (src, dst) pairs, the
  generic MANET/WMN workload;
* :func:`gateway_flows` — every flow terminates at (or originates from) a
  gateway, the workload WMN papers motivate (Internet-bound traffic
  through a few wired gateways creates exactly the hotspot neighbourhoods
  NLR routes around).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FlowSpec", "random_flow_pairs", "gateway_flows"]


@dataclass(frozen=True, slots=True)
class FlowSpec:
    """One unidirectional CBR/Poisson flow.

    Attributes
    ----------
    flow_id:
        Unique id used by metrics.
    src, dst:
        Endpoint node ids.
    payload_bytes:
        Application payload per packet (512 B in the paper family).
    rate_pps:
        Packet rate (packets/second).
    start_s, stop_s:
        Active interval within the simulation.
    """

    flow_id: int
    src: int
    dst: int
    payload_bytes: int = 512
    rate_pps: float = 4.0
    start_s: float = 1.0
    stop_s: float = float("inf")

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst == {self.src}")
        if self.payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if self.rate_pps <= 0:
            raise ValueError("rate must be positive")
        if self.stop_s <= self.start_s:
            raise ValueError("stop must be after start")

    @property
    def offered_bps(self) -> float:
        """Offered application load in bits/second."""
        return self.rate_pps * self.payload_bytes * 8


def random_flow_pairs(
    n_flows: int,
    node_ids: list[int],
    rng: np.random.Generator,
    payload_bytes: int = 512,
    rate_pps: float = 4.0,
    start_s: float = 1.0,
    stop_s: float = float("inf"),
    stagger_s: float = 0.5,
) -> list[FlowSpec]:
    """``n_flows`` flows between distinct random node pairs.

    Starts are staggered by ``stagger_s`` so route discoveries do not all
    collide at t = start (the standard ns-2 scripting convention).
    """
    if n_flows < 1:
        raise ValueError(f"need ≥ 1 flow, got {n_flows}")
    if len(node_ids) < 2:
        raise ValueError("need at least two nodes")
    flows: list[FlowSpec] = []
    for i in range(n_flows):
        src, dst = (int(x) for x in rng.choice(node_ids, size=2, replace=False))
        flows.append(
            FlowSpec(
                flow_id=i,
                src=src,
                dst=dst,
                payload_bytes=payload_bytes,
                rate_pps=rate_pps,
                start_s=start_s + i * stagger_s,
                stop_s=stop_s,
            )
        )
    return flows


def gateway_flows(
    n_flows: int,
    node_ids: list[int],
    gateways: list[int],
    rng: np.random.Generator,
    payload_bytes: int = 512,
    rate_pps: float = 4.0,
    start_s: float = 1.0,
    stop_s: float = float("inf"),
    stagger_s: float = 0.5,
    upstream_fraction: float = 1.0,
) -> list[FlowSpec]:
    """``n_flows`` gateway-oriented flows.

    Each flow pairs a random non-gateway node with a random gateway;
    ``upstream_fraction`` of them flow node → gateway (Internet uploads),
    the rest gateway → node (downloads).
    """
    if not 0.0 <= upstream_fraction <= 1.0:
        raise ValueError("upstream_fraction must be in [0, 1]")
    sources = [n for n in node_ids if n not in set(gateways)]
    if not sources or not gateways:
        raise ValueError("need at least one non-gateway node and one gateway")
    flows: list[FlowSpec] = []
    for i in range(n_flows):
        node = int(rng.choice(sources))
        gw = int(rng.choice(gateways))
        up = rng.random() < upstream_fraction
        src, dst = (node, gw) if up else (gw, node)
        flows.append(
            FlowSpec(
                flow_id=i,
                src=src,
                dst=dst,
                payload_bytes=payload_bytes,
                rate_pps=rate_pps,
                start_s=start_s + i * stagger_s,
                stop_s=stop_s,
            )
        )
    return flows
