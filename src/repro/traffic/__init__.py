"""Traffic generation: flow specs, sources, and sinks."""

from repro.traffic.flows import FlowSpec, gateway_flows, random_flow_pairs
from repro.traffic.generators import CbrSource, OnOffSource, PoissonSource, Source
from repro.traffic.sink import PacketSink

__all__ = [
    "CbrSource",
    "FlowSpec",
    "OnOffSource",
    "PacketSink",
    "PoissonSource",
    "Source",
    "gateway_flows",
    "random_flow_pairs",
]
