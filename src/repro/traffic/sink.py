"""Packet sink: terminates flows at their destination node.

One :class:`PacketSink` is installed per node (as the stack's
``receive_callback``); it forwards every delivered DATA packet to the
metrics collector and keeps simple per-node tallies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack
    from repro.net.packet import Packet

__all__ = ["PacketSink"]


class PacketSink:
    """Receives delivered DATA packets at one node.

    Parameters
    ----------
    stack:
        Node stack to attach to.
    on_receive:
        Observer for each delivered packet (metrics collector).
    """

    def __init__(
        self,
        stack: "NodeStack",
        on_receive: Callable[["Packet"], None] | None = None,
    ) -> None:
        self.stack = stack
        self.on_receive = on_receive
        self.received = 0
        self.bytes_received = 0
        stack.receive_callback = self._on_packet

    def _on_packet(self, packet: "Packet") -> None:
        self.received += 1
        self.bytes_received += packet.payload_bytes
        if self.on_receive is not None:
            self.on_receive(packet)
