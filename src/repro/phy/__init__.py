"""Radio/PHY substrate: propagation, reception, errors, shared channel.

Layout mirrors ns-2's PHY split:

* :mod:`~repro.phy.propagation` — deterministic path-loss models (free
  space, two-ray ground, log-distance) plus log-normal shadowing, all with
  vectorised many-receiver evaluation (the hot path).
* :mod:`~repro.phy.error_models` — SINR → BER/FER for DSSS (802.11b) and
  generic PSK/QAM modulations, plus a simple SINR-threshold model.
* :mod:`~repro.phy.frame` — physical-layer frame wrapper and airtime math.
* :mod:`~repro.phy.radio` — per-node radio state machine with
  SINR-segmented reception and capture.
* :mod:`~repro.phy.channel` — the shared broadcast medium dispatching
  transmissions to all radios in range.
"""

from repro.phy.channel import Channel
from repro.phy.energy import EnergyConfig, EnergyMeter, attach_energy_meters
from repro.phy.error_models import (
    Dsss11ErrorModel,
    ErrorModel,
    PskErrorModel,
    SinrThresholdErrorModel,
)
from repro.phy.frame import PhyFrame, RxInfo
from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    LogNormalShadowing,
    PropagationModel,
    TwoRayGround,
)
from repro.phy.radio import PhyConfig, Radio, RadioState

__all__ = [
    "Channel",
    "EnergyConfig",
    "EnergyMeter",
    "attach_energy_meters",
    "Dsss11ErrorModel",
    "ErrorModel",
    "FreeSpace",
    "LogDistance",
    "LogNormalShadowing",
    "PhyConfig",
    "PhyFrame",
    "PropagationModel",
    "PskErrorModel",
    "Radio",
    "RadioState",
    "RxInfo",
    "SinrThresholdErrorModel",
    "TwoRayGround",
]
