"""SINR → bit/frame error models.

A reception accumulates one or more *(sinr, bits)* segments (interference
changes mid-frame split the frame into segments).  The error model decides,
per segment, the probability that all bits survive; the radio multiplies
segment success probabilities and Bernoulli-samples the outcome.

Three models are provided:

* :class:`SinrThresholdErrorModel` — frame is intact iff every segment's
  SINR clears a threshold.  Deterministic and fast; matches ns-2's default
  PHY abstraction and is the default for the paper-shaped experiments.
* :class:`PskErrorModel` — coherent M-PSK BER via the Q-function
  (``scipy.special.erfc``), e.g. BPSK/QPSK.
* :class:`Dsss11ErrorModel` — 802.11b DSSS/CCK approximations at
  1/2/5.5/11 Mb/s following the standard Pursley–Taipale-style curves used
  in ns-3's ``DsssErrorRateModel``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy.special import erfc

__all__ = [
    "ErrorModel",
    "SinrThresholdErrorModel",
    "PskErrorModel",
    "Dsss11ErrorModel",
]


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = 0.5·erfc(x/√2)."""
    return 0.5 * erfc(x / math.sqrt(2.0))


class ErrorModel(ABC):
    """Maps per-segment SINR to a segment success probability."""

    #: True when the model's frame decision is exactly reproducible from
    #: array ops with **no RNG draw**: success probabilities are always 0
    #: or 1 and the array evaluation is bit-identical to the scalar one.
    #: Only such models are eligible for the batched reception kernel —
    #: curve models (PSK/DSSS) go through libm (``math.exp``/``log1p``)
    #: scalar but SIMD ufuncs vectorised, which may differ in the last ulp
    #: and flip a Bernoulli outcome, so they are *not* flagged.
    exact_vectorized = False

    @abstractmethod
    def segment_success_probability(self, sinr: float, bits: int) -> float:
        """Probability that ``bits`` consecutive bits at linear ``sinr`` are
        all received correctly (in [0, 1])."""

    def segment_success_probability_many(
        self, sinr: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`segment_success_probability` over aligned
        arrays.  The base implementation loops (models override with real
        array ops); results agree with the scalar method to float64
        round-off, and exactly for ``exact_vectorized`` models."""
        return np.fromiter(
            (
                self.segment_success_probability(float(s), int(b))
                for s, b in zip(sinr, bits)
            ),
            dtype=float,
            count=len(sinr),
        )

    def frame_success_probability(
        self, segments: list[tuple[float, int]]
    ) -> float:
        """Product of segment success probabilities for a whole frame."""
        p = 1.0
        for sinr, bits in segments:
            if bits <= 0:
                continue
            p *= self.segment_success_probability(sinr, bits)
            if p == 0.0:
                break
        return p


class SinrThresholdErrorModel(ErrorModel):
    """All-or-nothing capture threshold.

    Parameters
    ----------
    threshold_db:
        Minimum SINR (dB) at which a segment is received error-free.
        10 dB is the classic ns-2 capture threshold.
    """

    # p ∈ {0, 1} per segment and the frame product reduces to a single
    # min-SINR compare — no RNG ever, so the batched kernel may use it.
    exact_vectorized = True

    def __init__(self, threshold_db: float = 10.0) -> None:
        self.threshold_db = threshold_db
        self._threshold_linear = 10.0 ** (threshold_db / 10.0)

    def segment_success_probability(self, sinr: float, bits: int) -> float:
        return 1.0 if sinr >= self._threshold_linear else 0.0

    def segment_success_probability_many(
        self, sinr: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        return (np.asarray(sinr) >= self._threshold_linear).astype(float)

    def frame_ok_many(self, min_sinrs: np.ndarray) -> np.ndarray:
        """Whole-frame outcomes from per-frame minimum SINRs.

        Exactly equivalent to the scalar path: the frame success product
        is 1 iff every closed segment clears the threshold, i.e. iff the
        running ``min_sinr`` does (an empty segment list leaves
        ``min_sinr = inf``, matching the empty product's 1.0).
        """
        return np.asarray(min_sinrs) >= self._threshold_linear


class PskErrorModel(ErrorModel):
    """Coherent M-PSK over AWGN.

    BPSK: ``BER = Q(√(2·SINR))``.  Higher orders use the standard
    nearest-neighbour approximation
    ``BER ≈ (2/log2 M)·Q(√(2·log2 M·SINR)·sin(π/M))``.

    Parameters
    ----------
    bits_per_symbol:
        1 → BPSK, 2 → QPSK, 3 → 8-PSK, ...
    """

    def __init__(self, bits_per_symbol: int = 1) -> None:
        if bits_per_symbol < 1:
            raise ValueError(f"bits_per_symbol must be ≥ 1, got {bits_per_symbol}")
        self.bits_per_symbol = bits_per_symbol

    def bit_error_rate(self, sinr: float) -> float:
        """BER at linear ``sinr``."""
        if sinr <= 0:
            return 0.5
        k = self.bits_per_symbol
        if k == 1:
            return q_function(math.sqrt(2.0 * sinr))
        m = 2**k
        arg = math.sqrt(2.0 * k * sinr) * math.sin(math.pi / m)
        return min(0.5, (2.0 / k) * q_function(arg))

    def segment_success_probability(self, sinr: float, bits: int) -> float:
        ber = self.bit_error_rate(sinr)
        if ber >= 0.5:
            return 0.0 if bits > 8 else (1.0 - ber) ** bits
        # log-space product avoids underflow for long frames
        return math.exp(bits * math.log1p(-ber))

    def segment_success_probability_many(
        self, sinr: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        sinr = np.asarray(sinr, dtype=float)
        bits = np.asarray(bits, dtype=float)
        pos = np.maximum(sinr, 0.0)
        k = self.bits_per_symbol
        if k == 1:
            ber = 0.5 * erfc(np.sqrt(2.0 * pos) / math.sqrt(2.0))
        else:
            m = 2**k
            arg = np.sqrt(2.0 * k * pos) * math.sin(math.pi / m)
            ber = np.minimum(0.5, (2.0 / k) * 0.5 * erfc(arg / math.sqrt(2.0)))
        ber = np.where(sinr <= 0, 0.5, ber)
        # numpy's exp/log1p may differ from libm in the last ulp — close
        # enough for curves and benchmarks, but this is why PSK is not
        # exact_vectorized (see ErrorModel.exact_vectorized).
        p = np.exp(bits * np.log1p(-ber))
        return np.where(ber >= 0.5, np.where(bits > 8, 0.0, (1.0 - ber) ** bits), p)


class Dsss11ErrorModel(ErrorModel):
    """IEEE 802.11b DSSS/CCK bit-error approximations.

    Uses the closed-form curves ns-3 adopts:

    * 1 Mb/s DBPSK:  ``BER = Q(√(11·SINR))`` (11-chip Barker spreading gain)
    * 2 Mb/s DQPSK:  ``BER = Q(√(5.5·SINR))``
    * 5.5 / 11 Mb/s CCK: 8-chip CCK approximated with reduced effective
      spreading gain (SINR·8/1.0 and SINR·8/2.0 style scalings), clamped to
      the DQPSK curve at low SINR.

    Parameters
    ----------
    rate_bps:
        One of 1e6, 2e6, 5.5e6, 11e6.
    """

    _GAINS = {1_000_000: 11.0, 2_000_000: 5.5, 5_500_000: 2.0, 11_000_000: 1.0}

    def __init__(self, rate_bps: float = 11e6) -> None:
        key = int(rate_bps)
        if key not in self._GAINS:
            raise ValueError(
                f"rate {rate_bps!r} is not an 802.11b rate "
                f"(choose from {sorted(self._GAINS)})"
            )
        self.rate_bps = float(rate_bps)
        self._gain = self._GAINS[key]

    def bit_error_rate(self, sinr: float) -> float:
        """BER at linear ``sinr`` for the configured rate."""
        if sinr <= 0:
            return 0.5
        return min(0.5, q_function(math.sqrt(2.0 * self._gain * sinr)))

    def segment_success_probability(self, sinr: float, bits: int) -> float:
        ber = self.bit_error_rate(sinr)
        if ber >= 0.5:
            return 0.0 if bits > 8 else (1.0 - ber) ** bits
        return math.exp(bits * math.log1p(-ber))

    def segment_success_probability_many(
        self, sinr: np.ndarray, bits: np.ndarray
    ) -> np.ndarray:
        sinr = np.asarray(sinr, dtype=float)
        bits = np.asarray(bits, dtype=float)
        pos = np.maximum(sinr, 0.0)
        ber = np.minimum(0.5, 0.5 * erfc(np.sqrt(2.0 * self._gain * pos) / math.sqrt(2.0)))
        ber = np.where(sinr <= 0, 0.5, ber)
        p = np.exp(bits * np.log1p(-ber))
        return np.where(ber >= 0.5, np.where(bits > 8, 0.0, (1.0 - ber) ** bits), p)
