"""Per-node radio energy accounting (ns-2 EnergyModel style).

An :class:`EnergyMeter` observes one radio's state transitions and
integrates power draw over time — the standard simulation abstraction from
Feeney & Nilsson's 802.11 measurements that ns-2's EnergyModel adopted.
Optionally the meter carries a finite battery and declares the node dead
(via a callback — typically :meth:`repro.net.node.NodeStack.fail`) when it
depletes, which is what turns a fairness result into a *network lifetime*
result: a scheme that concentrates forwarding on few routers kills them
first.

Wiring is explicit and post-build (`attach_energy_meters`), so energy
accounting is zero-cost for scenarios that don't ask for it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.phy.radio import Radio, RadioState
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.scenario import Network

__all__ = ["EnergyConfig", "EnergyMeter", "attach_energy_meters"]


@dataclass(frozen=True, slots=True)
class EnergyConfig:
    """Radio power-draw profile (watts) and optional battery.

    Defaults follow the classic 2.4 GHz WLAN card measurements used by
    ns-2 evaluations: 1.4 W transmitting, 0.9 W receiving, 0.74 W idle
    listening.  ``idle_w`` may be zeroed to study *communication* energy
    only (common when idle dominates but is identical across schemes).

    ``capacity_j`` ≤ 0 means an infinite battery (pure accounting).
    """

    tx_w: float = 1.4
    rx_w: float = 0.9
    idle_w: float = 0.74
    capacity_j: float = 0.0

    def __post_init__(self) -> None:
        if min(self.tx_w, self.rx_w, self.idle_w) < 0:
            raise ValueError("power draws must be ≥ 0")

    def draw_w(self, state: RadioState) -> float:
        """Power draw in the given radio state."""
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.RX:
            return self.rx_w
        return self.idle_w


class EnergyMeter:
    """Integrates one radio's energy use; optionally kills it on depletion.

    Parameters
    ----------
    sim, radio:
        Engine and the observed radio (the meter installs itself as the
        radio's ``state_listener``; chain any existing listener manually).
    config:
        Power profile and battery capacity.
    on_depleted:
        Called once when the battery empties (only with ``capacity_j > 0``).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        config: EnergyConfig,
        on_depleted: Callable[[], None] | None = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.config = config
        self.on_depleted = on_depleted
        self._state = radio.state
        self._since = sim.now
        self._consumed_j = 0.0
        self.depleted_at: float | None = None
        self._by_state = {s: 0.0 for s in RadioState}
        radio.state_listener = self._on_state
        self._depletion_check = None
        self._arm_depletion_check()

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _integrate(self) -> None:
        now = self.sim.now
        dt = now - self._since
        if dt > 0:
            joules = dt * self.config.draw_w(self._state)
            self._consumed_j += joules
            self._by_state[self._state] += joules
        self._since = now

    def _on_state(self, new_state: RadioState) -> None:
        self._integrate()
        self._state = new_state
        self._check_depletion()
        self._arm_depletion_check()

    def consumed_j(self) -> float:
        """Total energy consumed so far (joules)."""
        self._integrate()
        return self._consumed_j

    def consumed_by_state(self) -> dict[RadioState, float]:
        """Energy split by radio state (joules)."""
        self._integrate()
        return dict(self._by_state)

    @property
    def alive(self) -> bool:
        """False once the battery has depleted."""
        return self.depleted_at is None

    def remaining_j(self) -> float:
        """Remaining battery (infinite capacity → ``inf``)."""
        if self.config.capacity_j <= 0:
            return math.inf
        return max(0.0, self.config.capacity_j - self.consumed_j())

    # ------------------------------------------------------------------ #
    # Depletion
    # ------------------------------------------------------------------ #
    def _check_depletion(self) -> None:
        if (
            self.depleted_at is None
            and self.config.capacity_j > 0
            and self._consumed_j >= self.config.capacity_j
        ):
            self.depleted_at = self.sim.now
            if self.on_depleted is not None:
                self.on_depleted()

    def _arm_depletion_check(self) -> None:
        """Schedule a wake-up at the projected depletion instant, so nodes
        die on time even if the radio never changes state again."""
        if self.config.capacity_j <= 0 or self.depleted_at is not None:
            return
        draw = self.config.draw_w(self._state)
        if draw <= 0:
            return
        eta = (self.config.capacity_j - self._consumed_j) / draw
        if self._depletion_check is not None and not self._depletion_check.expired:
            self._depletion_check.cancel()
        self._depletion_check = self.sim.schedule_in(
            max(eta, 0.0), self._depletion_due
        )

    def _depletion_due(self) -> None:
        self._depletion_check = None
        self._integrate()
        # Snap to the capacity when the projection lands within float
        # epsilon of it: without this, eta keeps re-computing as a smaller
        # and smaller positive number and the wake-up re-arms forever at
        # the same simulation instant.
        if (
            self.config.capacity_j > 0
            and self.depleted_at is None
            and self.config.capacity_j - self._consumed_j <= 1e-9
        ):
            self._consumed_j = self.config.capacity_j
        self._check_depletion()
        self._arm_depletion_check()


def attach_energy_meters(
    network: "Network",
    config: EnergyConfig | None = None,
    kill_on_depletion: bool = False,
) -> dict[int, EnergyMeter]:
    """Attach a meter to every radio in a built network.

    With ``kill_on_depletion`` a depleted node is crashed via
    :meth:`~repro.net.node.NodeStack.fail` (network-lifetime experiments).
    Requires the real MAC (PerfectMac networks have no radios).
    """
    config = config or EnergyConfig()
    meters: dict[int, EnergyMeter] = {}
    for stack in network.stacks:
        radio = getattr(stack.mac, "radio", None)
        if radio is None:
            raise ValueError(
                "energy metering needs the real PHY/MAC (mac='csma')"
            )
        on_depleted = stack.fail if kill_on_depletion else None
        meters[stack.node_id] = EnergyMeter(
            network.sim, radio, config, on_depleted=on_depleted
        )
    return meters
