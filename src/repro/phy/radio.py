"""Per-node radio state machine with SINR-segmented reception.

The radio is half-duplex with three states (IDLE/RX/TX).  Reception follows
the ns-2/ns-3 "lock + interference accumulation" abstraction:

* An arriving signal whose power clears ``rx_threshold_w`` while the radio
  is IDLE *locks* the radio onto it; every other impinging signal only adds
  interference power.
* Whenever the interference level changes during a locked reception, the
  current SINR *segment* is closed and a new one opened; at the end of the
  frame the error model converts the segment list into a success
  probability, which is Bernoulli-sampled with the node's own RNG stream.
* An optional *capture* rule lets a sufficiently stronger late arrival
  steal the lock (the old frame is marked corrupted), modelling preamble
  capture — without it, the classic 802.11 hidden-terminal collision
  destroys both frames.

Carrier sense (CCA) is energy-based: the medium is busy whenever the radio
is transmitting, receiving, or the total impinging power clears
``cs_threshold_w``.  State transitions are pushed to the MAC through the
``cca_callback`` so the MAC never polls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.phy import sinr_kernel
from repro.phy.error_models import ErrorModel, SinrThresholdErrorModel
from repro.phy.frame import PhyFrame, RxInfo
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.trace import Tracer

__all__ = [
    "PhyConfig",
    "Radio",
    "RadioState",
    "rx_start_block",
    "rx_end_block",
]


class RadioState(enum.Enum):
    """Half-duplex radio states."""

    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(slots=True)
class PhyConfig:
    """PHY parameters (ns-2 802.11b two-ray defaults).

    The threshold trio reproduces ns-2's canonical 250 m transmission /
    550 m carrier-sense ranges under :class:`~repro.phy.propagation.TwoRayGround`
    with 1.5 m antennas.
    """

    #: Transmit power in watts (ns-2 default 0.28183815 W ≈ 24.5 dBm).
    tx_power_w: float = 0.28183815
    #: Minimum power to lock onto a frame (ns-2 RXThresh, ≈250 m).
    rx_threshold_w: float = 3.652e-10
    #: Energy-detection carrier-sense threshold (ns-2 CSThresh, ≈550 m).
    cs_threshold_w: float = 1.559e-11
    #: Receiver noise floor in watts (thermal + noise figure).
    noise_floor_w: float = 8.8e-13
    #: Payload data rate for unicast data frames.
    data_rate_bps: float = 11e6
    #: Base rate for broadcast/control frames and PLCP.
    basic_rate_bps: float = 2e6
    #: PLCP preamble + header airtime (802.11b long preamble).
    preamble_s: float = 192e-6
    #: Linear power ratio a late frame needs over the locked frame to
    #: capture the receiver (10 dB, ns-2 convention).
    capture_ratio: float = 10.0
    #: Enable the capture rule at all.
    capture_enabled: bool = True

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0:
            raise ValueError("tx power must be positive")
        if not (self.noise_floor_w > 0):
            raise ValueError("noise floor must be positive")
        if self.cs_threshold_w > self.rx_threshold_w:
            raise ValueError(
                "carrier-sense threshold must not exceed the rx threshold "
                f"(cs={self.cs_threshold_w!r} > rx={self.rx_threshold_w!r})"
            )
        if self.capture_ratio < 1.0:
            raise ValueError("capture ratio must be ≥ 1 (linear)")


@dataclass(slots=True)
class _Reception:
    """Book-keeping for the frame currently locked onto."""

    frame: PhyFrame
    rx_power_w: float
    start: float
    segments: list[tuple[float, int]] = field(default_factory=list)
    segment_start: float = 0.0
    interference_w: float = 0.0
    corrupted: bool = False
    min_sinr: float = float("inf")


class Radio:
    """One node's PHY.

    Parameters
    ----------
    sim:
        Event engine.
    node_id:
        Owning node id (also the index into the channel position table).
    config:
        PHY parameters.
    rng:
        Node-local generator for reception Bernoulli draws.
    error_model:
        SINR → success model (default: 10 dB threshold).
    tracer:
        Optional tracer (category ``"phy"``).

    Upward interface (set by the MAC):

    * ``rx_callback(payload, rx_info)`` — successfully decoded frame.
    * ``cca_callback(busy)`` — medium busy/idle transitions.
    * ``tx_done_callback()`` — own transmission completed.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: PhyConfig,
        rng: np.random.Generator,
        error_model: ErrorModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.error_model = error_model or SinrThresholdErrorModel()
        self.tracer = tracer if tracer is not None else Tracer()
        self.channel: Any = None  # set by Channel.register

        self.state = RadioState.IDLE
        self._state_code = sinr_kernel.ST_IDLE  # int mirror for batched gathers
        self.powered = True
        self._arriving: dict[int, tuple[PhyFrame, float]] = {}
        # Frames whose rx_end must be ignored because the radio was off at
        # (or went off after) their rx_start.
        self._ignore_rx_end: set[int] = set()
        self._impinging_w = 0.0
        self._current: _Reception | None = None
        self._tx_frame: PhyFrame | None = None
        self._tx_end_handle: Any = None
        self._cca_busy = False

        self.rx_callback: Callable[[Any, RxInfo], None] | None = None
        self.cca_callback: Callable[[bool], None] | None = None
        self.tx_done_callback: Callable[[], None] | None = None
        #: Called when a power-off tears down an in-flight transmission
        #: (``tx_done_callback`` will never fire for that frame).
        self.tx_abort_callback: Callable[[], None] | None = None
        #: Observer of radio state transitions (energy metering); called
        #: with the new state after each change.
        self.state_listener: Callable[[RadioState], None] | None = None

        # Statistics.
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_corrupted = 0
        self.frames_captured = 0

    def _set_state(self, new_state: RadioState) -> None:
        if new_state is self.state:
            return
        self.state = new_state
        self._state_code = _STATE_CODE[new_state]
        if self.state_listener is not None:
            self.state_listener(new_state)

    # ------------------------------------------------------------------ #
    # Carrier sense
    # ------------------------------------------------------------------ #
    @property
    def cca_busy(self) -> bool:
        """True when the medium is busy from this radio's viewpoint."""
        return (
            self.state is not RadioState.IDLE
            or self._impinging_w >= self.config.cs_threshold_w
        )

    def _update_cca(self) -> None:
        busy = self.cca_busy
        if busy != self._cca_busy:
            self._cca_busy = busy
            if self.cca_callback is not None:
                self.cca_callback(busy)

    # ------------------------------------------------------------------ #
    # Transmit path
    # ------------------------------------------------------------------ #
    def set_power_state(self, on: bool) -> None:
        """Power the radio on/off (failure injection).

        Powering off aborts any in-progress reception *and* transmission,
        clears impinging signal tracking, and makes the radio deaf and
        mute: arriving signals are ignored and :meth:`transmit` raises.
        A torn-down transmission cancels its pending ``tx_end`` event (so
        it can never complete a later frame early) and reports through
        ``tx_abort_callback`` — ``tx_done_callback`` will not fire.
        Receivers still hear the truncated energy the channel already
        scheduled; their receptions fail through the normal SINR path.
        Powering back on restores a clean IDLE radio (frames already in
        flight toward it were lost — their ``rx_end`` events are ignored
        as unknown).
        """
        if on == self.powered:
            return
        self.powered = on
        ch = self.channel
        if ch is not None:
            # Keep the channel's unpowered-radio set current so the block
            # handlers' all-powered fast check stays O(1).
            if on:
                ch._unpowered.discard(self.node_id)
            else:
                ch._unpowered.add(self.node_id)
        if not on:
            if self._current is not None:
                self._abort_current("powered_off")
            tx_aborted = self._tx_frame is not None
            if tx_aborted:
                self.tracer.record(
                    self.sim.now, "phy", self.node_id, "tx_abort",
                    uid=self._tx_frame.uid, reason="powered_off",
                )
                self._tx_frame = None
                if self._tx_end_handle is not None:
                    if not self._tx_end_handle.expired:
                        self._tx_end_handle.cancel()
                    self._tx_end_handle = None
            self._set_state(RadioState.IDLE)
            self._ignore_rx_end.update(self._arriving)
            self._arriving.clear()
            self._impinging_w = 0.0
            self._update_cca()
            if tx_aborted and self.tx_abort_callback is not None:
                self.tx_abort_callback()
        self.tracer.record(
            self.sim.now, "phy", self.node_id,
            "power_on" if on else "power_off",
        )

    def transmit(self, frame: PhyFrame) -> None:
        """Put ``frame`` on the air.  Aborts any in-progress reception
        (half-duplex: transmitting deafens the receiver)."""
        if not self.powered:
            raise SimulationError(f"radio {self.node_id} is powered off")
        if self.channel is None:
            raise SimulationError(f"radio {self.node_id} not attached to a channel")
        if self.state is RadioState.TX:
            raise SimulationError(
                f"radio {self.node_id} asked to transmit while already transmitting"
            )
        if self._current is not None:
            self._abort_current("tx_preempt")
        self._set_state(RadioState.TX)
        self._tx_frame = frame
        self.frames_sent += 1
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx_start",
            uid=frame.uid, bits=frame.bits, dur=frame.duration_s,
        )
        self.channel.transmit(self.node_id, frame)
        self._tx_end_handle = self.sim.schedule_in(frame.duration_s, self._tx_end)
        self._update_cca()

    def _tx_end(self) -> None:
        self._tx_end_handle = None
        if self._tx_frame is None:
            return  # transmission was torn down (power-off) mid-air
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx_end",
            uid=self._tx_frame.uid,
        )
        self._tx_frame = None
        self._set_state(RadioState.IDLE)
        self._update_cca()
        if self.tx_done_callback is not None:
            self.tx_done_callback()

    # ------------------------------------------------------------------ #
    # Receive path (called by the channel)
    # ------------------------------------------------------------------ #
    def on_rx_start(self, frame: PhyFrame, rx_power_w: float) -> None:
        """A signal begins impinging on the antenna."""
        if not self.powered:
            self._ignore_rx_end.add(frame.uid)
            return
        self._arriving[frame.uid] = (frame, rx_power_w)
        self._impinging_w += rx_power_w

        if self.state is RadioState.IDLE:
            if rx_power_w >= self.config.rx_threshold_w:
                self._lock(frame, rx_power_w)
        elif self.state is RadioState.RX:
            cur = self._current
            assert cur is not None
            if (
                self.config.capture_enabled
                and rx_power_w >= self.config.rx_threshold_w
                and rx_power_w >= cur.rx_power_w * self.config.capture_ratio
            ):
                self.frames_captured += 1
                self._abort_current("captured")
                self._lock(frame, rx_power_w)
            else:
                self._reseed_segment()
        # TX state: pure interference; power already accumulated.
        self._update_cca()

    def on_rx_end(self, frame: PhyFrame) -> None:
        """A signal stops impinging on the antenna."""
        if frame.uid in self._ignore_rx_end:
            self._ignore_rx_end.discard(frame.uid)
            return
        entry = self._arriving.pop(frame.uid, None)
        if entry is None:  # pragma: no cover - channel/radio invariant
            raise SimulationError(
                f"radio {self.node_id}: rx_end for unknown frame {frame.uid}"
            )
        _, rx_power_w = entry
        self._impinging_w = max(0.0, self._impinging_w - rx_power_w)

        cur = self._current
        if cur is not None and cur.frame.uid == frame.uid:
            self._finish_current(rx_power_w)
        elif cur is not None:
            self._reseed_segment()
        self._update_cca()

    # ------------------------------------------------------------------ #
    # Reception internals
    # ------------------------------------------------------------------ #
    def _lock(self, frame: PhyFrame, rx_power_w: float) -> None:
        self._set_state(RadioState.RX)
        self._current = _Reception(
            frame=frame,
            rx_power_w=rx_power_w,
            start=self.sim.now,
            segment_start=self.sim.now,
            interference_w=self._impinging_w - rx_power_w,
        )
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "rx_lock",
            uid=frame.uid, power=rx_power_w,
        )

    def _effective_bitrate(self, frame: PhyFrame) -> float:
        # The preamble has no payload bits; spreading the payload bits over
        # the whole airtime yields the per-segment bit counts used by the
        # error model (documented approximation, see module docstring).
        return frame.bits / frame.duration_s

    def _close_segment(self, cur: _Reception) -> None:
        dt = self.sim.now - cur.segment_start
        if dt > 0:
            sinr = cur.rx_power_w / (cur.interference_w + self.config.noise_floor_w)
            bits = max(1, int(round(dt * self._effective_bitrate(cur.frame))))
            cur.segments.append((sinr, bits))
            cur.min_sinr = min(cur.min_sinr, sinr)
        cur.segment_start = self.sim.now

    def _reseed_segment(self) -> None:
        cur = self._current
        assert cur is not None
        self._close_segment(cur)
        cur.interference_w = self._impinging_w - cur.rx_power_w

    def _abort_current(self, reason: str) -> None:
        cur = self._current
        assert cur is not None
        self.frames_corrupted += 1
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "rx_abort",
            uid=cur.frame.uid, reason=reason,
        )
        self._current = None
        if self.state is RadioState.RX:
            self._set_state(RadioState.IDLE)

    def _finish_current(self, rx_power_w: float) -> None:
        cur = self._current
        assert cur is not None
        self._close_segment(cur)
        self._current = None
        self._set_state(RadioState.IDLE)

        p_ok = self.error_model.frame_success_probability(cur.segments)
        ok = p_ok >= 1.0 or (p_ok > 0.0 and self.rng.random() < p_ok)
        self._deliver(cur, rx_power_w, ok, p_ok)

    def _deliver(
        self, cur: _Reception, rx_power_w: float, ok: bool, p_ok: float
    ) -> None:
        """Outcome effects of a completed reception (stats, trace, upcall).

        Split from :meth:`_finish_current` so the batched ``rx_end`` block
        handler can inject a vectorised frame decision and still run the
        observable effects through the one shared code path.
        """
        if ok:
            self.frames_received += 1
            info = RxInfo(
                rx_power_w=rx_power_w,
                min_sinr=cur.min_sinr,
                start_time=cur.start,
                end_time=self.sim.now,
                tx_node=cur.frame.tx_node,
            )
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx_ok",
                uid=cur.frame.uid, sinr=cur.min_sinr,
            )
            if self.rx_callback is not None:
                self.rx_callback(cur.frame.payload, info)
        else:
            self.frames_corrupted += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx_error",
                uid=cur.frame.uid, p_ok=p_ok, sinr=cur.min_sinr,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Radio(node={self.node_id}, state={self.state.value}, "
            f"impinging={self._impinging_w:.3e} W)"
        )


# ---------------------------------------------------------------------- #
# Batched reception: block-event handlers (DESIGN.md §8)
# ---------------------------------------------------------------------- #
# The channel's batched path schedules one block event per (frame, delay
# group) instead of one event per receiver; these module-level handlers
# process all the group's radios in one call.  Decisions that the scalar
# path makes per-radio are evaluated through the array kernel
# (:mod:`repro.phy.sinr_kernel`); effects are then applied per radio *in
# receiver order*, so traces, callbacks, schedules and RNG draws happen in
# exactly the scalar sequence.  Correctness of the two-pass split rests on
# one repo-wide invariant: no radio/MAC callback synchronously touches
# another node's radio — cross-node interaction always goes through newly
# scheduled events.

#: RadioState → :mod:`~repro.phy.sinr_kernel` state code.
_STATE_CODE = {
    RadioState.IDLE: sinr_kernel.ST_IDLE,
    RadioState.RX: sinr_kernel.ST_RX,
    RadioState.TX: sinr_kernel.ST_TX,
}

#: Below this many receivers the array set-up costs more than it saves and
#: the block handlers run the plain per-radio loop instead.
_MIN_VECTOR = 4

_INF = float("inf")


def _group_constants(receivers: list[Radio]) -> dict:
    """Per-radio constants for one receiver group, gathered once.

    Everything here is fixed at construction time — per-radio
    :class:`PhyConfig` thresholds and the error-model instance are never
    mutated mid-run anywhere in the repo (failure injection toggles
    ``powered``, not thresholds) — so the channel caches this dict
    alongside the delay group and the block handlers skip re-gathering it
    on every slot.

    ``shared_model`` is the one error model shared (by type and threshold
    value) by the whole group when all of them run the exact
    :class:`SinrThresholdErrorModel`, else ``None`` — the homogeneity
    criterion of DESIGN.md §8, hoisted out of the per-slot path.
    """
    n = len(receivers)
    m0 = receivers[0].error_model
    shared = None
    if type(m0) is SinrThresholdErrorModel and all(
        type(r.error_model) is SinrThresholdErrorModel
        and r.error_model._threshold_linear == m0._threshold_linear
        for r in receivers
    ):
        shared = m0
    return {
        "thr": np.fromiter(
            (r.config.rx_threshold_w for r in receivers), dtype=float, count=n
        ),
        "ratio": np.fromiter(
            (r.config.capture_ratio for r in receivers), dtype=float, count=n
        ),
        "cap_en": np.fromiter(
            (r.config.capture_enabled for r in receivers), dtype=bool, count=n
        ),
        # Python-float list: read per radio in the inlined CCA check.
        "cs_thr": [r.config.cs_threshold_w for r in receivers],
        "shared_model": shared,
    }


def rx_start_block(
    receivers: list[Radio],
    frame: PhyFrame,
    powers: list[float],
    cache: dict | None = None,
) -> None:
    """One frame's signal begins impinging on a group of radios at once.

    Byte-identical to calling ``radio.on_rx_start(frame, power)`` over the
    group in order: the lock/capture/reseed decision for each radio reads
    only that radio's own pre-block state, so evaluating all decisions
    up front from a state snapshot cannot change any of them.  The CCA
    update is inlined (same computation as :meth:`Radio._update_cca`;
    skipping the call when the busy flag cannot have changed is
    unobservable).

    ``cache`` is the channel's per-group slot for :func:`_group_constants`
    (populated lazily on first use); direct callers may omit it.
    """
    n = len(receivers)
    # The channel's unpowered-radio set makes the common all-powered case
    # an O(1) check; channel-less radios (direct calls) get the full scan.
    ch = receivers[0].channel
    powered_ok = (
        not ch._unpowered
        if ch is not None
        else all(r.powered for r in receivers)
    )
    if n < _MIN_VECTOR or not powered_ok:
        # Rare shapes (tiny groups, powered-off members) go through the
        # scalar method — which *is* the reference semantics.
        for k in range(n):
            receivers[k].on_rx_start(frame, powers[k])
        return
    if cache is None:
        cache = {}
    consts = cache.get("consts")
    if consts is None:
        consts = cache["consts"] = _group_constants(receivers)
    cs_thr = consts["cs_thr"]
    uid = frame.uid
    states = np.fromiter(
        (r._state_code for r in receivers), dtype=np.int8, count=n
    )
    if not states.any():
        # Every radio IDLE — the saturated-slot common case (a fresh frame
        # arriving between receptions).  The action vector is then the
        # group-constant threshold mask: lock iff the frame is strong.
        actions = consts.get("idle_actions")
        if actions is None:
            strong = np.asarray(powers, dtype=float) >= consts["thr"]
            actions = consts["idle_actions"] = np.where(
                strong, sinr_kernel.ACT_LOCK, sinr_kernel.ACT_NONE
            ).tolist()
        for k in range(n):
            r = receivers[k]
            p = powers[k]  # Python float from the plan list, as scalar path
            r._arriving[uid] = (frame, p)
            imp = r._impinging_w + p
            r._impinging_w = imp
            if actions[k]:
                r._lock(frame, p)
                busy = True  # locking leaves the radio in RX → CCA busy
            else:
                busy = imp >= cs_thr[k]
            if busy != r._cca_busy:
                r._cca_busy = busy
                cb = r.cca_callback
                if cb is not None:
                    cb(busy)
        return
    cur_powers = np.fromiter(
        (
            r._current.rx_power_w if r._current is not None else _INF
            for r in receivers
        ),
        dtype=float,
        count=n,
    )
    actions = sinr_kernel.capture_actions(
        powers, states, cur_powers,
        consts["thr"], consts["ratio"], consts["cap_en"],
    ).tolist()
    nonidle = (states != sinr_kernel.ST_IDLE).tolist()
    for k in range(n):
        r = receivers[k]
        p = powers[k]  # Python float from the plan list, as scalar path
        r._arriving[uid] = (frame, p)
        imp = r._impinging_w + p
        r._impinging_w = imp
        a = actions[k]
        if a:
            if a == sinr_kernel.ACT_LOCK:
                r._lock(frame, p)
            elif a == sinr_kernel.ACT_RESEED:
                r._reseed_segment()
            else:
                r.frames_captured += 1
                r._abort_current("captured")
                r._lock(frame, p)
            # Every non-NONE action leaves the radio in RX → CCA busy.
            busy = True
        else:
            # NONE = TX interference, or IDLE below the rx threshold;
            # neither changes state, so busy is decided by energy alone.
            busy = nonidle[k] or imp >= cs_thr[k]
        if busy != r._cca_busy:
            r._cca_busy = busy
            cb = r.cca_callback
            if cb is not None:
                cb(busy)


def rx_end_block(
    receivers: list[Radio], frame: PhyFrame, cache: dict | None = None
) -> None:
    """One frame's signal stops impinging on a group of radios at once.

    Two passes: pass 1 performs each radio's pure bookkeeping (arrival
    tables, impinging power, SINR segment closure) — verified free of
    observable effects — then the frame decisions for every finishing
    receiver are evaluated in one array op when their error models permit
    (``exact_vectorized``, no RNG), and pass 2 applies the observable
    effects (state change, stats, traces, callbacks, CCA) per radio in
    receiver order, exactly as the scalar sequence interleaves them.
    """
    if cache is None:
        cache = {}
    consts = cache.get("consts")
    if consts is None:
        consts = cache["consts"] = _group_constants(receivers)
    cs_thr = consts["cs_thr"]
    uid = frame.uid
    n = len(receivers)
    # Pass 1: pure bookkeeping, in receiver order.  ``fin`` maps group
    # index → (finished reception, rx power); ``skipped`` holds indices of
    # radios ignoring this frame (powered off at its rx_start) — the
    # scalar path returns before _update_cca for those.
    fin: dict[int, tuple[_Reception, float]] = {}
    skipped: set[int] | None = None
    for k in range(n):
        r = receivers[k]
        if uid in r._ignore_rx_end:
            r._ignore_rx_end.discard(uid)
            if skipped is None:
                skipped = set()
            skipped.add(k)
            continue
        entry = r._arriving.pop(uid, None)
        if entry is None:  # pragma: no cover - channel/radio invariant
            raise SimulationError(
                f"radio {r.node_id}: rx_end for unknown frame {uid}"
            )
        rx_power_w = entry[1]
        # Same value as the scalar path's max(0.0, ...) — max() returns
        # +0.0 for both the 0.0 and -0.0 cases, as does this conditional.
        imp = r._impinging_w - rx_power_w
        r._impinging_w = imp if imp > 0.0 else 0.0
        cur = r._current
        if cur is not None:
            if cur.frame.uid == uid:
                r._close_segment(cur)
                r._current = None
                fin[k] = (cur, rx_power_w)
            else:
                r._reseed_segment()

    # Vectorised frame decision: only when every finishing radio runs the
    # exact threshold model (frame success ≡ min-SINR compare, no RNG
    # draw) with one shared threshold (precomputed per group).  Anything
    # else — curve models, mixed models — falls back to the per-radio
    # scalar decision below, which is the reference computation verbatim.
    oks = None
    model = consts["shared_model"]
    if model is not None and len(fin) >= 2:
        # dict preserves insertion order = ascending k, matching pass 2.
        min_sinrs = np.fromiter(
            (cur.min_sinr for cur, _ in fin.values()),
            dtype=float,
            count=len(fin),
        )
        oks = model.frame_ok_many(min_sinrs).tolist()

    # Pass 2: observable effects, in receiver order.
    i = 0
    idle_state = RadioState.IDLE
    get_fin = fin.get
    for k in range(n):
        if skipped is not None and k in skipped:
            continue
        r = receivers[k]
        e = get_fin(k)
        if e is not None:
            cur, rx_power_w = e
            r._set_state(idle_state)
            if oks is None:
                p_ok = r.error_model.frame_success_probability(cur.segments)
                ok = p_ok >= 1.0 or (p_ok > 0.0 and r.rng.random() < p_ok)
            else:
                ok = oks[i]
                # Threshold-model p is always exactly 0 or 1, so the
                # rx_error trace detail stays byte-identical.
                p_ok = 1.0 if ok else 0.0
            i += 1
            r._deliver(cur, rx_power_w, ok, p_ok)
        # Inlined Radio._update_cca (same computation; skipping the call
        # when the flag cannot change is unobservable).
        busy = r.state is not idle_state or r._impinging_w >= cs_thr[k]
        if busy != r._cca_busy:
            r._cca_busy = busy
            cb = r.cca_callback
            if cb is not None:
                cb(busy)
