"""Per-node radio state machine with SINR-segmented reception.

The radio is half-duplex with three states (IDLE/RX/TX).  Reception follows
the ns-2/ns-3 "lock + interference accumulation" abstraction:

* An arriving signal whose power clears ``rx_threshold_w`` while the radio
  is IDLE *locks* the radio onto it; every other impinging signal only adds
  interference power.
* Whenever the interference level changes during a locked reception, the
  current SINR *segment* is closed and a new one opened; at the end of the
  frame the error model converts the segment list into a success
  probability, which is Bernoulli-sampled with the node's own RNG stream.
* An optional *capture* rule lets a sufficiently stronger late arrival
  steal the lock (the old frame is marked corrupted), modelling preamble
  capture — without it, the classic 802.11 hidden-terminal collision
  destroys both frames.

Carrier sense (CCA) is energy-based: the medium is busy whenever the radio
is transmitting, receiving, or the total impinging power clears
``cs_threshold_w``.  State transitions are pushed to the MAC through the
``cca_callback`` so the MAC never polls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.phy.error_models import ErrorModel, SinrThresholdErrorModel
from repro.phy.frame import PhyFrame, RxInfo
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.trace import Tracer

__all__ = ["PhyConfig", "Radio", "RadioState"]


class RadioState(enum.Enum):
    """Half-duplex radio states."""

    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(slots=True)
class PhyConfig:
    """PHY parameters (ns-2 802.11b two-ray defaults).

    The threshold trio reproduces ns-2's canonical 250 m transmission /
    550 m carrier-sense ranges under :class:`~repro.phy.propagation.TwoRayGround`
    with 1.5 m antennas.
    """

    #: Transmit power in watts (ns-2 default 0.28183815 W ≈ 24.5 dBm).
    tx_power_w: float = 0.28183815
    #: Minimum power to lock onto a frame (ns-2 RXThresh, ≈250 m).
    rx_threshold_w: float = 3.652e-10
    #: Energy-detection carrier-sense threshold (ns-2 CSThresh, ≈550 m).
    cs_threshold_w: float = 1.559e-11
    #: Receiver noise floor in watts (thermal + noise figure).
    noise_floor_w: float = 8.8e-13
    #: Payload data rate for unicast data frames.
    data_rate_bps: float = 11e6
    #: Base rate for broadcast/control frames and PLCP.
    basic_rate_bps: float = 2e6
    #: PLCP preamble + header airtime (802.11b long preamble).
    preamble_s: float = 192e-6
    #: Linear power ratio a late frame needs over the locked frame to
    #: capture the receiver (10 dB, ns-2 convention).
    capture_ratio: float = 10.0
    #: Enable the capture rule at all.
    capture_enabled: bool = True

    def __post_init__(self) -> None:
        if self.tx_power_w <= 0:
            raise ValueError("tx power must be positive")
        if not (self.noise_floor_w > 0):
            raise ValueError("noise floor must be positive")
        if self.cs_threshold_w > self.rx_threshold_w:
            raise ValueError(
                "carrier-sense threshold must not exceed the rx threshold "
                f"(cs={self.cs_threshold_w!r} > rx={self.rx_threshold_w!r})"
            )
        if self.capture_ratio < 1.0:
            raise ValueError("capture ratio must be ≥ 1 (linear)")


@dataclass(slots=True)
class _Reception:
    """Book-keeping for the frame currently locked onto."""

    frame: PhyFrame
    rx_power_w: float
    start: float
    segments: list[tuple[float, int]] = field(default_factory=list)
    segment_start: float = 0.0
    interference_w: float = 0.0
    corrupted: bool = False
    min_sinr: float = float("inf")


class Radio:
    """One node's PHY.

    Parameters
    ----------
    sim:
        Event engine.
    node_id:
        Owning node id (also the index into the channel position table).
    config:
        PHY parameters.
    rng:
        Node-local generator for reception Bernoulli draws.
    error_model:
        SINR → success model (default: 10 dB threshold).
    tracer:
        Optional tracer (category ``"phy"``).

    Upward interface (set by the MAC):

    * ``rx_callback(payload, rx_info)`` — successfully decoded frame.
    * ``cca_callback(busy)`` — medium busy/idle transitions.
    * ``tx_done_callback()`` — own transmission completed.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: PhyConfig,
        rng: np.random.Generator,
        error_model: ErrorModel | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.rng = rng
        self.error_model = error_model or SinrThresholdErrorModel()
        self.tracer = tracer if tracer is not None else Tracer()
        self.channel: Any = None  # set by Channel.register

        self.state = RadioState.IDLE
        self.powered = True
        self._arriving: dict[int, tuple[PhyFrame, float]] = {}
        # Frames whose rx_end must be ignored because the radio was off at
        # (or went off after) their rx_start.
        self._ignore_rx_end: set[int] = set()
        self._impinging_w = 0.0
        self._current: _Reception | None = None
        self._tx_frame: PhyFrame | None = None
        self._tx_end_handle: Any = None
        self._cca_busy = False

        self.rx_callback: Callable[[Any, RxInfo], None] | None = None
        self.cca_callback: Callable[[bool], None] | None = None
        self.tx_done_callback: Callable[[], None] | None = None
        #: Called when a power-off tears down an in-flight transmission
        #: (``tx_done_callback`` will never fire for that frame).
        self.tx_abort_callback: Callable[[], None] | None = None
        #: Observer of radio state transitions (energy metering); called
        #: with the new state after each change.
        self.state_listener: Callable[[RadioState], None] | None = None

        # Statistics.
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_corrupted = 0
        self.frames_captured = 0

    def _set_state(self, new_state: RadioState) -> None:
        if new_state is self.state:
            return
        self.state = new_state
        if self.state_listener is not None:
            self.state_listener(new_state)

    # ------------------------------------------------------------------ #
    # Carrier sense
    # ------------------------------------------------------------------ #
    @property
    def cca_busy(self) -> bool:
        """True when the medium is busy from this radio's viewpoint."""
        return (
            self.state is not RadioState.IDLE
            or self._impinging_w >= self.config.cs_threshold_w
        )

    def _update_cca(self) -> None:
        busy = self.cca_busy
        if busy != self._cca_busy:
            self._cca_busy = busy
            if self.cca_callback is not None:
                self.cca_callback(busy)

    # ------------------------------------------------------------------ #
    # Transmit path
    # ------------------------------------------------------------------ #
    def set_power_state(self, on: bool) -> None:
        """Power the radio on/off (failure injection).

        Powering off aborts any in-progress reception *and* transmission,
        clears impinging signal tracking, and makes the radio deaf and
        mute: arriving signals are ignored and :meth:`transmit` raises.
        A torn-down transmission cancels its pending ``tx_end`` event (so
        it can never complete a later frame early) and reports through
        ``tx_abort_callback`` — ``tx_done_callback`` will not fire.
        Receivers still hear the truncated energy the channel already
        scheduled; their receptions fail through the normal SINR path.
        Powering back on restores a clean IDLE radio (frames already in
        flight toward it were lost — their ``rx_end`` events are ignored
        as unknown).
        """
        if on == self.powered:
            return
        self.powered = on
        if not on:
            if self._current is not None:
                self._abort_current("powered_off")
            tx_aborted = self._tx_frame is not None
            if tx_aborted:
                self.tracer.record(
                    self.sim.now, "phy", self.node_id, "tx_abort",
                    uid=self._tx_frame.uid, reason="powered_off",
                )
                self._tx_frame = None
                if self._tx_end_handle is not None:
                    if not self._tx_end_handle.expired:
                        self._tx_end_handle.cancel()
                    self._tx_end_handle = None
            self._set_state(RadioState.IDLE)
            self._ignore_rx_end.update(self._arriving)
            self._arriving.clear()
            self._impinging_w = 0.0
            self._update_cca()
            if tx_aborted and self.tx_abort_callback is not None:
                self.tx_abort_callback()
        self.tracer.record(
            self.sim.now, "phy", self.node_id,
            "power_on" if on else "power_off",
        )

    def transmit(self, frame: PhyFrame) -> None:
        """Put ``frame`` on the air.  Aborts any in-progress reception
        (half-duplex: transmitting deafens the receiver)."""
        if not self.powered:
            raise SimulationError(f"radio {self.node_id} is powered off")
        if self.channel is None:
            raise SimulationError(f"radio {self.node_id} not attached to a channel")
        if self.state is RadioState.TX:
            raise SimulationError(
                f"radio {self.node_id} asked to transmit while already transmitting"
            )
        if self._current is not None:
            self._abort_current("tx_preempt")
        self._set_state(RadioState.TX)
        self._tx_frame = frame
        self.frames_sent += 1
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx_start",
            uid=frame.uid, bits=frame.bits, dur=frame.duration_s,
        )
        self.channel.transmit(self.node_id, frame)
        self._tx_end_handle = self.sim.schedule_in(frame.duration_s, self._tx_end)
        self._update_cca()

    def _tx_end(self) -> None:
        self._tx_end_handle = None
        if self._tx_frame is None:
            return  # transmission was torn down (power-off) mid-air
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "tx_end",
            uid=self._tx_frame.uid,
        )
        self._tx_frame = None
        self._set_state(RadioState.IDLE)
        self._update_cca()
        if self.tx_done_callback is not None:
            self.tx_done_callback()

    # ------------------------------------------------------------------ #
    # Receive path (called by the channel)
    # ------------------------------------------------------------------ #
    def on_rx_start(self, frame: PhyFrame, rx_power_w: float) -> None:
        """A signal begins impinging on the antenna."""
        if not self.powered:
            self._ignore_rx_end.add(frame.uid)
            return
        self._arriving[frame.uid] = (frame, rx_power_w)
        self._impinging_w += rx_power_w

        if self.state is RadioState.IDLE:
            if rx_power_w >= self.config.rx_threshold_w:
                self._lock(frame, rx_power_w)
        elif self.state is RadioState.RX:
            cur = self._current
            assert cur is not None
            if (
                self.config.capture_enabled
                and rx_power_w >= self.config.rx_threshold_w
                and rx_power_w >= cur.rx_power_w * self.config.capture_ratio
            ):
                self.frames_captured += 1
                self._abort_current("captured")
                self._lock(frame, rx_power_w)
            else:
                self._reseed_segment()
        # TX state: pure interference; power already accumulated.
        self._update_cca()

    def on_rx_end(self, frame: PhyFrame) -> None:
        """A signal stops impinging on the antenna."""
        if frame.uid in self._ignore_rx_end:
            self._ignore_rx_end.discard(frame.uid)
            return
        entry = self._arriving.pop(frame.uid, None)
        if entry is None:  # pragma: no cover - channel/radio invariant
            raise SimulationError(
                f"radio {self.node_id}: rx_end for unknown frame {frame.uid}"
            )
        _, rx_power_w = entry
        self._impinging_w = max(0.0, self._impinging_w - rx_power_w)

        cur = self._current
        if cur is not None and cur.frame.uid == frame.uid:
            self._finish_current(rx_power_w)
        elif cur is not None:
            self._reseed_segment()
        self._update_cca()

    # ------------------------------------------------------------------ #
    # Reception internals
    # ------------------------------------------------------------------ #
    def _lock(self, frame: PhyFrame, rx_power_w: float) -> None:
        self._set_state(RadioState.RX)
        self._current = _Reception(
            frame=frame,
            rx_power_w=rx_power_w,
            start=self.sim.now,
            segment_start=self.sim.now,
            interference_w=self._impinging_w - rx_power_w,
        )
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "rx_lock",
            uid=frame.uid, power=rx_power_w,
        )

    def _effective_bitrate(self, frame: PhyFrame) -> float:
        # The preamble has no payload bits; spreading the payload bits over
        # the whole airtime yields the per-segment bit counts used by the
        # error model (documented approximation, see module docstring).
        return frame.bits / frame.duration_s

    def _close_segment(self, cur: _Reception) -> None:
        dt = self.sim.now - cur.segment_start
        if dt > 0:
            sinr = cur.rx_power_w / (cur.interference_w + self.config.noise_floor_w)
            bits = max(1, int(round(dt * self._effective_bitrate(cur.frame))))
            cur.segments.append((sinr, bits))
            cur.min_sinr = min(cur.min_sinr, sinr)
        cur.segment_start = self.sim.now

    def _reseed_segment(self) -> None:
        cur = self._current
        assert cur is not None
        self._close_segment(cur)
        cur.interference_w = self._impinging_w - cur.rx_power_w

    def _abort_current(self, reason: str) -> None:
        cur = self._current
        assert cur is not None
        self.frames_corrupted += 1
        self.tracer.record(
            self.sim.now, "phy", self.node_id, "rx_abort",
            uid=cur.frame.uid, reason=reason,
        )
        self._current = None
        if self.state is RadioState.RX:
            self._set_state(RadioState.IDLE)

    def _finish_current(self, rx_power_w: float) -> None:
        cur = self._current
        assert cur is not None
        self._close_segment(cur)
        self._current = None
        self._set_state(RadioState.IDLE)

        p_ok = self.error_model.frame_success_probability(cur.segments)
        ok = p_ok >= 1.0 or (p_ok > 0.0 and self.rng.random() < p_ok)
        if ok:
            self.frames_received += 1
            info = RxInfo(
                rx_power_w=rx_power_w,
                min_sinr=cur.min_sinr,
                start_time=cur.start,
                end_time=self.sim.now,
                tx_node=cur.frame.tx_node,
            )
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx_ok",
                uid=cur.frame.uid, sinr=cur.min_sinr,
            )
            if self.rx_callback is not None:
                self.rx_callback(cur.frame.payload, info)
        else:
            self.frames_corrupted += 1
            self.tracer.record(
                self.sim.now, "phy", self.node_id, "rx_error",
                uid=cur.frame.uid, p_ok=p_ok, sinr=cur.min_sinr,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Radio(node={self.node_id}, state={self.state.value}, "
            f"impinging={self._impinging_w:.3e} W)"
        )
