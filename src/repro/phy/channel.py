"""The shared wireless medium.

One :class:`Channel` instance connects every radio in the network.  A
transmission is dispatched by evaluating the propagation model for the
candidate receivers in a single vectorised numpy expression over the
position table (the hpc-parallel hot-path rule), then scheduling
``rx_start``/``rx_end`` events only at receivers whose power clears a
tracking cull threshold — signals far too weak to affect carrier sense or
SINR are never materialised as events.

Spatial index
-------------
With ``spatial_index=True`` (the default) the channel maintains a uniform
cell grid sized from the propagation model's *maximum interference range*
at the cull threshold (``PropagationModel.max_interference_range``).  The
grid uses the sorted-cell-key layout from particle simulation: each node's
cell is packed into one ``int64`` key (``cx·2³¹ + cy``), and an argsorted
key array turns "all nodes in a row of cells" into a contiguous slice
found by a single ``searchsorted`` over the row bounds.  A dispatch then
evaluates propagation only over the nodes in the cell block covering the
interference range instead of the full ``(n, 2)`` table — with numpy
doing both the gather and the evaluation, so per-dispatch Python overhead
stays flat as N grows.

The plan cache is invalidated *incrementally*: each cached plan records
the cells its candidate block covered (a cell → dependent-plans reverse
map), so a ``set_position`` on node *i* drops only the plans whose block
contains *i*'s old or new cell.  Mobility runs therefore keep their plan
cache for every transmitter outside the mover's neighbourhood — previously
any move cleared the cache wholesale.

**Determinism contract:** the spatial path is byte-identical to the
exhaustive path.  Candidate sets are always supersets of the true receiver
set (cells are sized with a safety margin over the interference range),
per-receiver powers/delays are element-wise numpy expressions whose values
do not depend on which other rows share the array, and receivers are
ordered by position-table index in both paths.  Propagation models that
cannot bound their reach (log-normal shadowing with ``sigma > 0``) report
an infinite interference range and the channel silently falls back to
exhaustive dispatch with wholesale invalidation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.phy.frame import PhyFrame
from repro.phy.propagation import LogNormalShadowing, PropagationModel
from repro.phy.radio import Radio, rx_end_block, rx_start_block
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.units import SPEED_OF_LIGHT

__all__ = ["Channel"]

#: Cells per interference range: finer cells tighten the candidate block
#: (block side is ``(2·reach + 1)·cell`` vs the minimal ``2·range``), at the
#: cost of more rows per gather.  2 is the classic sweet spot.
_CELLS_PER_RANGE = 2

#: Relative safety margin applied to the interference range when sizing
#: cells, so a node sitting exactly on the range boundary can never fall
#: outside the candidate block through floating-point fuzz.
_RANGE_MARGIN = 1.0 + 1e-6

#: Linear cell key stride: ``key = cx·_KSTRIDE + cy``.  Collision-free for
#: ``|cy| < 2³⁰`` and ``|cx| < 2³²`` (int64 headroom), far beyond any
#: usable arena/cell-size combination.
_KSTRIDE = 1 << 31

#: Initial capacity of the position/id tables (grown by doubling).
_INITIAL_CAPACITY = 16

_Plan = tuple[list[Radio], list[float], list[float]]
_PlanKey = tuple[int, float]  # (tx node id, tx power in watts)


class Channel:
    """Shared broadcast medium.

    Parameters
    ----------
    sim:
        Event engine.
    propagation:
        Path-loss model used for every link.
    track_threshold_w:
        Received-power cull: signals below this level at a receiver are not
        delivered at all.  Defaults to one tenth of the weakest registered
        radio's carrier-sense threshold (set lazily on first transmit).
    propagation_delay:
        When True (default) receptions start after distance/c; disabling it
        makes unit tests easier to reason about.
    spatial_index:
        When True (default) dispatch and neighbour queries use the cell
        grid described in the module docstring; when False every query
        scans the full position table (the exhaustive reference path, kept
        selectable for A/B determinism verification).
    batched:
        When True, fan-out schedules *block events* — one heap entry per
        (frame, propagation-delay group) handled by the vectorised
        reception kernel — instead of two events per receiver, and
        enables the simulator's batched drain loop.  Byte-identical to
        the scalar path (DESIGN.md §8); off by default, selectable via
        ``ScenarioConfig(batched_kernel=True)``.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        track_threshold_w: float | None = None,
        propagation_delay: bool = True,
        spatial_index: bool = True,
        batched: bool = False,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self._track_threshold_w = track_threshold_w
        self.propagation_delay = propagation_delay
        self.spatial_index = spatial_index
        self.batched = batched
        if batched:
            sim.enable_batching()
        # Node ids of currently powered-off radios (maintained by
        # Radio.set_power_state); lets block handlers check "everyone
        # powered" in O(1) instead of scanning the group.
        self._unpowered: set[int] = set()
        # Batched fan-out: _PlanKey → (plan object, delay groups).  The
        # groups are derived data; validating by plan object identity
        # (``cached[0] is plan``) makes every dispatch-cache invalidation
        # invalidate the groups for free, with no extra wiring.
        self._block_plans: dict[_PlanKey, tuple[_Plan, list]] = {}
        self._radios: dict[int, Radio] = {}
        self._id2idx: dict[int, int] = {}
        self._id_buf: np.ndarray = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._pos_buf: np.ndarray = np.empty((_INITIAL_CAPACITY, 2), dtype=float)
        self._n = 0
        self.transmissions = 0
        # Dispatch-plan cache: (tx node id, tx power) → (receiver radios,
        # powers, delays).  Mesh routers rarely move, so the propagation
        # evaluation is paid once per transmitter; the key includes the tx
        # power so heterogeneous-power scenarios can never reuse a plan
        # computed for a different power.
        self._dispatch_cache: dict[_PlanKey, _Plan] = {}
        # Spatial grid (built lazily on first query; inactive = exhaustive).
        self._grid_active = False
        self._grid_disabled = False  # unbounded propagation reach
        self._cell_size = 0.0
        self._reach = 0
        self._grid_power_w = 0.0
        self._key_buf: np.ndarray = np.empty(0, dtype=np.int64)
        self._order: np.ndarray | None = None      # argsort of live keys
        self._sorted_keys: np.ndarray | None = None
        # Incremental invalidation, keyed by *centre* cell: every cached
        # plan is registered under its transmitter's cell only (O(1) to
        # remember), and a move in cell d invalidates the plans centred in
        # the block around d — the block is symmetric, so "d is in plan c's
        # block" and "c is in the block around d" are the same condition.
        # ``_cell_cands`` shares the gathered candidate arrays between all
        # transmitters in a cell and is invalidated on the same schedule.
        self._cell_plans: dict[int, set[_PlanKey]] = {}
        self._cell_cands: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._block_cache: dict[int, tuple[int, ...]] = {}
        self._bounds_off: np.ndarray | None = None  # row-bounds template
        # Per-pair extra path loss in dB (fault injection: LinkDegrade),
        # keyed by the sorted node-id pair and applied symmetrically on top
        # of the propagation model.  Overlapping impairments stack.
        self._impairments: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------ #
    # Registration / positions
    # ------------------------------------------------------------------ #
    def register(self, radio: Radio, position: tuple[float, float]) -> None:
        """Attach ``radio`` to the medium at ``position`` (metres)."""
        if radio.node_id in self._radios:
            raise SimulationError(f"node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        radio.channel = self
        if not radio.powered:
            self._unpowered.add(radio.node_id)
        if self._n == len(self._id_buf):
            self._id_buf = np.concatenate([self._id_buf, np.empty_like(self._id_buf)])
            self._pos_buf = np.concatenate([self._pos_buf, np.empty_like(self._pos_buf)])
        idx = self._n
        self._pos_buf[idx] = position
        self._id_buf[idx] = radio.node_id
        self._id2idx[radio.node_id] = idx
        self._n += 1
        if not self._grid_active:
            self._invalidate_all()
            return
        if radio.config.tx_power_w > self._grid_power_w:
            # A stronger transmitter outranges the current cell sizing;
            # tear the grid down and rebuild lazily at the new maximum.
            self._teardown_grid()
            self._invalidate_all()
            return
        if self._n > len(self._key_buf):
            self._key_buf = np.concatenate(
                [self._key_buf, np.empty(self._n, dtype=np.int64)]
            )
        key = self._key_of(position[0], position[1])
        self._key_buf[idx] = key
        self._order = None
        self._invalidate_cells((key,))

    @property
    def _positions(self) -> np.ndarray:
        """Live ``(n, 2)`` view of the position table."""
        return self._pos_buf[: self._n]

    @property
    def _ids(self) -> np.ndarray:
        """Live ``(n,)`` view of the node-id table."""
        return self._id_buf[: self._n]

    def position_of(self, node_id: int) -> np.ndarray:
        """Current position of ``node_id`` (copy)."""
        return self._pos_buf[self._index_of(node_id)].copy()

    def set_position(self, node_id: int, position: tuple[float, float]) -> None:
        """Move a node (mobility models call this)."""
        self.move_many(((node_id, position),))

    def move_many(
        self, updates: "list[tuple[int, tuple[float, float]]] | tuple"
    ) -> None:
        """Apply a batch of position updates with one invalidation pass.

        Mobility ticks move many nodes back-to-back with no dispatch in
        between; batching lets overlapping candidate blocks be invalidated
        once instead of per mover.
        """
        if not self._grid_active:
            moved = False
            for node_id, position in updates:
                self._pos_buf[self._index_of(node_id)] = position
                moved = True
            if moved and self._dispatch_cache:
                self._invalidate_all()
            return
        touched: set[int] = set()
        key_buf = self._key_buf
        for node_id, position in updates:
            idx = self._index_of(node_id)
            self._pos_buf[idx] = position
            old = int(key_buf[idx])
            new = self._key_of(position[0], position[1])
            if new != old:
                key_buf[idx] = new
                self._order = None
            # Even an intra-cell move changes every distance to this node,
            # so plans watching the old cell are stale regardless.
            touched.add(old)
            touched.add(new)
        if touched:
            self._invalidate_cells(touched)

    def _index_of(self, node_id: int) -> int:
        idx = self._id2idx.get(node_id)
        if idx is None:
            raise SimulationError(f"node {node_id} not registered on channel")
        return idx

    @property
    def node_count(self) -> int:
        """Number of registered radios."""
        return self._n

    def radios(self) -> list["Radio"]:
        """Registered radios in node-id registration order (read-only use;
        metric collection iterates these for frame counters)."""
        return list(self._radios.values())

    # ------------------------------------------------------------------ #
    # Spatial grid
    # ------------------------------------------------------------------ #
    def _key_of(self, x: float, y: float) -> int:
        c = self._cell_size
        return math.floor(x / c) * _KSTRIDE + math.floor(y / c)

    def _ensure_grid(self) -> bool:
        """Build the grid if enabled and possible; True when active."""
        if self._grid_active:
            return True
        if not self.spatial_index or self._grid_disabled or self._n == 0:
            return False
        pmax = max(r.config.tx_power_w for r in self._radios.values())
        self._build_grid(pmax)
        return self._grid_active

    def _build_grid(self, power_w: float) -> None:
        rng = self.propagation.max_interference_range(
            power_w, self._cull_threshold()
        )
        if not math.isfinite(rng) or rng <= 0.0:
            self._grid_disabled = True
            return
        self._cell_size = rng * _RANGE_MARGIN / _CELLS_PER_RANGE
        # A node outside the (2·reach+1)² block around the transmitter is
        # at least reach·cell = range·margin away, hence below the cull
        # threshold by the max_interference_range contract.
        self._reach = _CELLS_PER_RANGE
        self._grid_power_w = power_w
        if len(self._key_buf) < len(self._id_buf):
            self._key_buf = np.empty(len(self._id_buf), dtype=np.int64)
        cells = np.floor(self._pos_buf[: self._n] / self._cell_size)
        self._key_buf[: self._n] = (
            cells[:, 0].astype(np.int64) * _KSTRIDE + cells[:, 1].astype(np.int64)
        )
        self._order = None
        self._block_cache.clear()
        self._cell_cands.clear()
        # Row-bounds template for the dispatch-reach candidate query: the
        # block rows of cell k are the key ranges k + _bounds_off[2r..2r+1].
        reach = self._reach
        off = np.empty(2 * (2 * reach + 1), dtype=np.int64)
        for r, dx in enumerate(range(-reach, reach + 1)):
            off[2 * r] = dx * _KSTRIDE - reach
            off[2 * r + 1] = dx * _KSTRIDE + reach + 1
        self._bounds_off = off
        self._grid_active = True

    def _teardown_grid(self) -> None:
        self._grid_active = False
        self._order = None
        self._block_cache.clear()
        self._cell_cands.clear()

    def _ensure_order(self) -> None:
        if self._order is None:
            keys = self._key_buf[: self._n]
            self._order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[self._order]

    def _candidates(self, center_key: int, reach: int) -> np.ndarray:
        """Node indices in the cell block around ``center_key``, ascending
        (= position-table order, which is what the exhaustive path emits).

        One ``searchsorted`` over the per-row key bounds turns the block
        into ``2·reach + 1`` contiguous slices of the sorted-key layout.
        """
        self._ensure_order()
        span = 2 * reach + 1
        if reach == self._reach:
            bounds = center_key + self._bounds_off
        else:  # neighbour queries with a caller-chosen radius
            bounds = np.empty(2 * span, dtype=np.int64)
            base = center_key - reach * _KSTRIDE
            for r in range(span):
                bounds[2 * r] = base - reach
                bounds[2 * r + 1] = base + reach + 1
                base += _KSTRIDE
        locs = np.searchsorted(self._sorted_keys, bounds)
        order = self._order
        cand = np.concatenate(
            [order[locs[2 * r]: locs[2 * r + 1]] for r in range(span)]
        )
        cand.sort()
        return cand

    def _block_keys(self, center_key: int, reach: int) -> tuple[int, ...]:
        """Linear keys of the cells in the block (memoised per centre)."""
        block = self._block_cache.get(center_key)
        if block is None:
            cy = center_key % _KSTRIDE
            if cy >= _KSTRIDE >> 1:
                cy -= _KSTRIDE
            row0 = center_key - cy
            block = tuple(
                row0 + dx * _KSTRIDE + cy + dy
                for dx in range(-reach, reach + 1)
                for dy in range(-reach, reach + 1)
            )
            self._block_cache[center_key] = block
        return block

    # ------------------------------------------------------------------ #
    # Incremental invalidation
    # ------------------------------------------------------------------ #
    def _invalidate_all(self) -> None:
        self._dispatch_cache.clear()
        self._cell_plans.clear()
        self._cell_cands.clear()

    def _invalidate_cells(self, cells) -> None:
        """Drop plans and candidate caches affected by changes in ``cells``.

        A plan centred in cell *c* depends on the nodes in the block around
        *c*; the block is symmetric, so the plans affected by a change in
        cell *d* are exactly those centred inside the block around *d*.
        """
        cell_plans = self._cell_plans
        cell_cands = self._cell_cands
        cache = self._dispatch_cache
        reach = self._reach
        for d in cells:
            for c in self._block_keys(d, reach):
                cell_cands.pop(c, None)
                plans = cell_plans.pop(c, None)
                if plans:
                    for key in plans:
                        cache.pop(key, None)

    # ------------------------------------------------------------------ #
    # Link impairments (fault injection)
    # ------------------------------------------------------------------ #
    def set_link_impairment(
        self, node_a: int, node_b: int, extra_loss_db: float
    ) -> None:
        """Add ``extra_loss_db`` of symmetric path loss between two nodes.

        Impairments stack: two concurrent 20 dB degrades yield 40 dB.
        Remove with :meth:`clear_link_impairment` passing the same value.
        """
        if node_a == node_b:
            raise SimulationError("cannot impair a node's link to itself")
        self._index_of(node_a)
        self._index_of(node_b)
        if extra_loss_db <= 0:
            raise SimulationError(
                f"extra loss must be positive dB, got {extra_loss_db!r}"
            )
        key = (min(node_a, node_b), max(node_a, node_b))
        self._impairments[key] = self._impairments.get(key, 0.0) + extra_loss_db
        self._drop_plans_of(node_a, node_b)

    def clear_link_impairment(
        self, node_a: int, node_b: int, extra_loss_db: float
    ) -> None:
        """Remove ``extra_loss_db`` previously added on the pair."""
        key = (min(node_a, node_b), max(node_a, node_b))
        remaining = self._impairments.get(key, 0.0) - extra_loss_db
        if remaining > 1e-12:
            self._impairments[key] = remaining
        else:
            self._impairments.pop(key, None)
        self._drop_plans_of(node_a, node_b)

    def _drop_plans_of(self, *nodes: int) -> None:
        """Invalidate cached dispatch plans transmitted by ``nodes``.

        Stale references left in ``_cell_plans`` are harmless: cell
        invalidation pops from the dispatch cache with a default.
        """
        dead = set(nodes)
        for key in [k for k in self._dispatch_cache if k[0] in dead]:
            del self._dispatch_cache[key]

    def _apply_impairments(
        self, tx_node: int, ids: np.ndarray, powers: np.ndarray
    ) -> None:
        """Attenuate ``powers`` in place for impaired links of ``tx_node``."""
        for (a, b), loss_db in self._impairments.items():
            if a == tx_node:
                other = b
            elif b == tx_node:
                other = a
            else:
                continue
            loc = np.nonzero(ids == other)[0]
            if len(loc):
                powers[loc] *= 10.0 ** (-loss_db / 10.0)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _cull_threshold(self) -> float:
        if self._track_threshold_w is None:
            cs = min(r.config.cs_threshold_w for r in self._radios.values())
            self._track_threshold_w = cs / 10.0
        return self._track_threshold_w

    def _plan_inputs(
        self, tx_node: int, tx_power_w: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int, bool]:
        """Candidate gather for one dispatch evaluation.

        Returns ``(tx_pos, pos, ids, self_idx, center, use_grid)`` — the
        candidate positions/ids to evaluate propagation over, the
        transmitter's own row index among them, and the grid cell the
        plan must register under for incremental invalidation.
        """
        tx_idx = self._index_of(tx_node)
        tx_pos = self._pos_buf[tx_idx]
        use_grid = self._ensure_grid()
        if use_grid and tx_power_w > self._grid_power_w:
            # Frame power exceeds what the cells were sized for; resize.
            self._teardown_grid()
            self._invalidate_all()
            self._build_grid(tx_power_w)
            use_grid = self._grid_active
        center = 0
        if use_grid:
            center = int(self._key_buf[tx_idx])
            cached = self._cell_cands.get(center)
            if cached is None:
                cand = self._candidates(center, self._reach)
                cached = (cand, self._pos_buf[cand], self._id_buf[cand])
                self._cell_cands[center] = cached
            cand, pos, ids = cached
            self_idx = int(np.searchsorted(cand, tx_idx))
        else:
            pos = self._positions
            ids = self._ids
            self_idx = tx_idx
        return tx_pos, pos, ids, self_idx, center, use_grid

    def _finish_plan(
        self,
        key: _PlanKey,
        tx_pos: np.ndarray,
        pos: np.ndarray,
        ids: np.ndarray,
        self_idx: int,
        center: int,
        use_grid: bool,
        powers: np.ndarray,
    ) -> _Plan:
        """Cull, delays, radio lookup, and cache registration — everything
        downstream of the propagation evaluation.  Shared by the lazy
        :meth:`_dispatch_plan` and the stacked :meth:`warm_plans` paths so
        both produce (and register) identical plans."""
        tx_node = key[0]
        if self._impairments:
            if powers.base is not None or not powers.flags.owndata:
                powers = powers.copy()
            self._apply_impairments(tx_node, ids, powers)
        mask = powers >= self._cull_threshold()
        mask[self_idx] = False
        rx = np.nonzero(mask)[0]
        if self.propagation_delay:
            d = np.hypot(pos[rx, 0] - tx_pos[0], pos[rx, 1] - tx_pos[1])
            delays = d / SPEED_OF_LIGHT
        else:
            delays = np.zeros(len(rx))
        radios = self._radios
        rx_ids = ids[rx].tolist()
        receivers = [radios[i] for i in rx_ids]
        # Plain Python floats: avoids numpy scalar types leaking into the
        # radio hot path (and list indexing is faster there anyway).
        plan = (receivers, powers[rx].tolist(), delays.tolist())
        self._dispatch_cache[key] = plan
        if use_grid:
            dependents = self._cell_plans.get(center)
            if dependents is None:
                self._cell_plans[center] = {key}
            else:
                dependents.add(key)
        return plan

    def _dispatch_plan(self, tx_node: int, tx_power_w: float) -> _Plan:
        """(receivers, rx powers, propagation delays) for ``tx_node`` at
        ``tx_power_w``, cached until a position change invalidates it."""
        key = (tx_node, tx_power_w)
        plan = self._dispatch_cache.get(key)
        if plan is not None:
            return plan
        tx_pos, pos, ids, self_idx, center, use_grid = self._plan_inputs(
            tx_node, tx_power_w
        )
        if isinstance(self.propagation, LogNormalShadowing):
            self.propagation.set_transmitter(tx_node)
        powers = np.asarray(
            self.propagation.rx_power_many(tx_power_w, tx_pos, pos, rx_ids=ids),
            dtype=float,
        )
        return self._finish_plan(
            key, tx_pos, pos, ids, self_idx, center, use_grid, powers
        )

    def warm_plans(self, pairs: "list[_PlanKey] | tuple") -> None:
        """Precompute dispatch plans for several ``(tx_node, tx_power_w)``
        pairs with one stacked propagation evaluation.

        Called by the batched MAC timer handler when N same-instant
        backoff expiries are about to transmit: instead of N lazy
        :meth:`_dispatch_plan` misses, the candidate rows of every
        uncached transmitter are concatenated and evaluated through the
        model's elementwise :meth:`~repro.phy.propagation.PropagationModel.rx_power_pairs`
        in one call.  Purely a cache pre-fill — the resulting plans (and
        their invalidation registration) are bit-identical to what the
        lazy path would build, so warming can never change simulation
        results.
        """
        todo = [key for key in pairs if key not in self._dispatch_cache]
        if not todo:
            return
        self._ensure_grid()
        if (
            len(todo) == 1
            or isinstance(self.propagation, LogNormalShadowing)
            or (
                self._grid_active
                and any(p > self._grid_power_w for _, p in todo)
            )
        ):
            # Per-pair fallback: shadowing needs its per-transmitter id
            # protocol, and a power above the grid sizing would rebuild
            # the grid mid-gather, staling earlier pairs' cell centres.
            for tx_node, tx_power_w in todo:
                self._dispatch_plan(tx_node, tx_power_w)
            return
        inputs = [
            (key, self._plan_inputs(key[0], key[1])) for key in todo
        ]
        counts = [len(inp[1][1]) for inp in inputs]
        tx_pos_all = np.concatenate(
            [
                np.broadcast_to(inp[1][0], (m, 2))
                for inp, m in zip(inputs, counts)
            ]
        )
        rx_pos_all = np.concatenate([inp[1][1] for inp in inputs])
        power_all = np.concatenate(
            [np.full(m, key[1]) for (key, _), m in zip(inputs, counts)]
        )
        powers_flat = np.asarray(
            self.propagation.rx_power_pairs(power_all, tx_pos_all, rx_pos_all),
            dtype=float,
        )
        off = 0
        for (key, (tx_pos, pos, ids, self_idx, center, use_grid)), m in zip(
            inputs, counts
        ):
            self._finish_plan(
                key, tx_pos, pos, ids, self_idx, center, use_grid,
                powers_flat[off : off + m],
            )
            off += m

    def transmit(self, tx_node: int, frame: PhyFrame) -> None:
        """Deliver ``frame`` from ``tx_node`` to every radio in range."""
        self.transmissions += 1
        plan = self._dispatch_plan(tx_node, frame.tx_power_w)
        receivers, powers, delays = plan
        now = self.sim.now
        dur = frame.duration_s
        if self.batched and len(receivers) > 1:
            self._transmit_batched(
                (tx_node, frame.tx_power_w), plan, frame, now, dur
            )
            return
        schedule_cb = self.sim.schedule_cb
        for k, radio in enumerate(receivers):
            t0 = now + delays[k]
            schedule_cb(t0, radio.on_rx_start, frame, powers[k])
            schedule_cb(t0 + dur, radio.on_rx_end, frame)

    def _transmit_batched(
        self, key: _PlanKey, plan: _Plan, frame: PhyFrame, now: float, dur: float
    ) -> None:
        """Fan one frame out as block events, one per propagation-delay
        group (receivers at equal delay share a heap entry).

        Ordering is provably scalar-identical: within a group the block
        handler runs receivers in plan order (= the scalar scheduling
        order); distinct groups sit at distinct times; and an ``rx_start``
        can never tie with this frame's ``rx_end`` because frame airtime
        (≥ the 192 µs PLCP preamble) dwarfs the < 2 µs delay spread of a
        ≤ 550 m interference neighbourhood.
        """
        cached = self._block_plans.get(key)
        if cached is not None and cached[0] is plan:
            groups = cached[1]
        else:
            by_delay: dict[float, tuple[list, list]] = {}
            receivers, powers, delays = plan
            for k, d in enumerate(delays):
                g = by_delay.get(d)
                if g is None:
                    by_delay[d] = g = ([], [])
                g[0].append(receivers[k])
                g[1].append(powers[k])
            # The trailing dict is the group's constants cache, populated
            # lazily by the block handlers (per-radio config gathers and
            # the error-model homogeneity check, hoisted off the hot path).
            groups = [(d, rxs, pws, {}) for d, (rxs, pws) in by_delay.items()]
            self._block_plans[key] = (plan, groups)
        sim = self.sim
        schedule_cb = sim.schedule_cb
        schedule_block = sim.schedule_block
        for delay, rxs, pws, cache in groups:
            t0 = now + delay
            if len(rxs) == 1:
                schedule_cb(t0, rxs[0].on_rx_start, frame, pws[0])
                schedule_cb(t0 + dur, rxs[0].on_rx_end, frame)
            else:
                schedule_block(
                    t0, len(rxs), rx_start_block, rxs, frame, pws, cache
                )
                schedule_block(
                    t0 + dur, len(rxs), rx_end_block, rxs, frame, cache
                )

    def neighbors_within(self, node_id: int, radius_m: float) -> list[int]:
        """Node ids within ``radius_m`` of ``node_id`` (excluding itself)."""
        idx = self._index_of(node_id)
        p = self._pos_buf[idx]
        if math.isfinite(radius_m) and radius_m >= 0 and self._ensure_grid():
            reach = int(math.ceil(radius_m / self._cell_size))
            # Wide queries (radius ≫ arena) degenerate to a full scan; the
            # exhaustive path below is then cheaper than walking the rows.
            if (2 * reach + 1) ** 2 <= 4 * self._n:
                cand = self._candidates(int(self._key_buf[idx]), reach)
                pos = self._pos_buf[cand]
                d = np.hypot(pos[:, 0] - p[0], pos[:, 1] - p[1])
                mask = d <= radius_m
                mask[np.searchsorted(cand, idx)] = False
                ids = self._id_buf
                return [int(ids[cand[i]]) for i in np.nonzero(mask)[0]]
        d = np.hypot(self._positions[:, 0] - p[0], self._positions[:, 1] - p[1])
        mask = d <= radius_m
        mask[idx] = False
        return [int(i) for i in self._ids[mask]]
