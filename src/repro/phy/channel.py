"""The shared wireless medium.

One :class:`Channel` instance connects every radio in the network.  A
transmission is dispatched by evaluating the propagation model once, for
*all* registered receivers, in a single vectorised numpy expression over the
``(n, 2)`` position table (the hpc-parallel hot-path rule), then scheduling
``rx_start``/``rx_end`` events only at receivers whose power clears a
tracking cull threshold — signals far too weak to affect carrier sense or
SINR are never materialised as events.
"""

from __future__ import annotations

import numpy as np

from repro.phy.frame import PhyFrame
from repro.phy.propagation import LogNormalShadowing, PropagationModel
from repro.phy.radio import Radio
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.units import SPEED_OF_LIGHT

__all__ = ["Channel"]


class Channel:
    """Shared broadcast medium.

    Parameters
    ----------
    sim:
        Event engine.
    propagation:
        Path-loss model used for every link.
    track_threshold_w:
        Received-power cull: signals below this level at a receiver are not
        delivered at all.  Defaults to one tenth of the weakest registered
        radio's carrier-sense threshold (set lazily on first transmit).
    propagation_delay:
        When True (default) receptions start after distance/c; disabling it
        makes unit tests easier to reason about.
    """

    def __init__(
        self,
        sim: Simulator,
        propagation: PropagationModel,
        track_threshold_w: float | None = None,
        propagation_delay: bool = True,
    ) -> None:
        self.sim = sim
        self.propagation = propagation
        self._track_threshold_w = track_threshold_w
        self.propagation_delay = propagation_delay
        self._radios: dict[int, Radio] = {}
        self._ids: np.ndarray = np.empty(0, dtype=int)
        self._positions: np.ndarray = np.empty((0, 2), dtype=float)
        self.transmissions = 0
        # Static-topology dispatch cache: tx node id → (receiver radios,
        # powers, delays).  Mesh routers rarely move, so the propagation
        # evaluation is paid once per transmitter; any position change
        # clears the cache (mobility runs simply forgo the speedup).
        self._dispatch_cache: dict[int, tuple[list[Radio], list[float], list[float]]] = {}

    # ------------------------------------------------------------------ #
    # Registration / positions
    # ------------------------------------------------------------------ #
    def register(self, radio: Radio, position: tuple[float, float]) -> None:
        """Attach ``radio`` to the medium at ``position`` (metres)."""
        if radio.node_id in self._radios:
            raise SimulationError(f"node {radio.node_id} already registered")
        self._radios[radio.node_id] = radio
        radio.channel = self
        self._positions = np.vstack(
            [self._positions, np.asarray(position, dtype=float)]
        )
        self._ids = np.append(self._ids, radio.node_id)
        self._dispatch_cache.clear()

    def position_of(self, node_id: int) -> np.ndarray:
        """Current position of ``node_id`` (copy)."""
        idx = self._index_of(node_id)
        return self._positions[idx].copy()

    def set_position(self, node_id: int, position: tuple[float, float]) -> None:
        """Move a node (mobility models call this)."""
        idx = self._index_of(node_id)
        self._positions[idx] = position
        self._dispatch_cache.clear()

    def _index_of(self, node_id: int) -> int:
        hits = np.nonzero(self._ids == node_id)[0]
        if len(hits) == 0:
            raise SimulationError(f"node {node_id} not registered on channel")
        return int(hits[0])

    @property
    def node_count(self) -> int:
        """Number of registered radios."""
        return len(self._radios)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _cull_threshold(self) -> float:
        if self._track_threshold_w is None:
            cs = min(r.config.cs_threshold_w for r in self._radios.values())
            self._track_threshold_w = cs / 10.0
        return self._track_threshold_w

    def _dispatch_plan(
        self, tx_node: int, tx_power_w: float
    ) -> tuple[list[Radio], list[float], list[float]]:
        """(receivers, rx powers, propagation delays) for ``tx_node``.

        Valid while no node moves and tx power is per-config constant (the
        cache is keyed by transmitter only; heterogeneous powers would need
        a (node, power) key — all evaluated scenarios use one power).
        """
        plan = self._dispatch_cache.get(tx_node)
        if plan is not None:
            return plan
        tx_idx = self._index_of(tx_node)
        tx_pos = self._positions[tx_idx]
        if isinstance(self.propagation, LogNormalShadowing):
            self.propagation.set_transmitter(tx_node)
        powers = np.asarray(
            self.propagation.rx_power_many(
                tx_power_w, tx_pos, self._positions, rx_ids=self._ids
            ),
            dtype=float,
        )
        mask = powers >= self._cull_threshold()
        mask[tx_idx] = False
        rx_indices = np.nonzero(mask)[0]
        if self.propagation_delay:
            d = np.hypot(
                self._positions[rx_indices, 0] - tx_pos[0],
                self._positions[rx_indices, 1] - tx_pos[1],
            )
            delays = d / SPEED_OF_LIGHT
        else:
            delays = np.zeros(len(rx_indices))
        receivers = [self._radios[int(self._ids[i])] for i in rx_indices]
        # Plain Python floats: avoids numpy scalar types leaking into the
        # radio hot path (and list indexing is faster there anyway).
        plan = (receivers, powers[rx_indices].tolist(), delays.tolist())
        self._dispatch_cache[tx_node] = plan
        return plan

    def transmit(self, tx_node: int, frame: PhyFrame) -> None:
        """Deliver ``frame`` from ``tx_node`` to every radio in range."""
        self.transmissions += 1
        receivers, powers, delays = self._dispatch_plan(tx_node, frame.tx_power_w)
        now = self.sim.now
        dur = frame.duration_s
        schedule = self.sim.schedule
        for k, radio in enumerate(receivers):
            t0 = now + delays[k]
            schedule(t0, radio.on_rx_start, frame, powers[k])
            schedule(t0 + dur, radio.on_rx_end, frame)

    def neighbors_within(self, node_id: int, radius_m: float) -> list[int]:
        """Node ids within ``radius_m`` of ``node_id`` (excluding itself)."""
        idx = self._index_of(node_id)
        p = self._positions[idx]
        d = np.hypot(self._positions[:, 0] - p[0], self._positions[:, 1] - p[1])
        mask = d <= radius_m
        mask[idx] = False
        return [int(i) for i in self._ids[mask]]
