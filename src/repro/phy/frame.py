"""Physical-layer frame wrapper and reception metadata."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["PhyFrame", "RxInfo"]

_frame_uid = itertools.count()


@dataclass(slots=True)
class PhyFrame:
    """A frame on the air.

    Attributes
    ----------
    payload:
        The MAC frame object carried (opaque to the PHY).
    bits:
        Total payload bits excluding the PLCP preamble/header (which are
        accounted for in time via ``preamble_s``, not bits).
    rate_bps:
        Payload data rate.
    preamble_s:
        PLCP preamble + header duration (transmitted at the base rate;
        192 µs for 802.11b long preamble).
    tx_power_w:
        Transmit power.
    tx_node:
        Transmitting node id.
    uid:
        Unique frame identifier (monotone per-process counter).
    """

    payload: Any
    bits: int
    rate_bps: float
    preamble_s: float
    tx_power_w: float
    tx_node: int
    uid: int = field(default_factory=lambda: next(_frame_uid))

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"frame must carry at least one bit, got {self.bits}")
        if self.rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_bps!r}")
        if self.preamble_s < 0:
            raise ValueError(f"preamble must be non-negative, got {self.preamble_s!r}")
        if self.tx_power_w <= 0:
            raise ValueError(f"tx power must be positive, got {self.tx_power_w!r}")

    @property
    def duration_s(self) -> float:
        """Total airtime: preamble plus payload at the data rate."""
        return self.preamble_s + self.bits / self.rate_bps


@dataclass(frozen=True, slots=True)
class RxInfo:
    """Metadata handed to the MAC with a successfully received frame.

    Attributes
    ----------
    rx_power_w:
        Received signal power of the decoded frame.
    min_sinr:
        Worst per-segment SINR experienced during the reception (linear).
    start_time, end_time:
        Reception interval bounds (seconds).
    tx_node:
        Transmitter node id (PHY-level ground truth, used by traces/tests;
        protocol logic reads addresses from the MAC header instead).
    """

    rx_power_w: float
    min_sinr: float
    start_time: float
    end_time: float
    tx_node: int
