"""Vectorised SINR/capture decision kernel (batched reception path).

When the channel fans one transmission out to N receivers as a block event
(DESIGN.md §8), every receiver faces the same branch structure at
``rx_start`` — lock / capture / reseed / ignore — and, at ``rx_end``, the
same frame-success decision.  This module evaluates those decisions across
all N receivers with array ops instead of N Python branch chains.

The functions here are *pure*: they read snapshots of per-radio state and
return decisions, mutating nothing.  :mod:`repro.phy.radio`'s block
handlers apply the decisions per-receiver afterwards, in receiver order,
so the observable effect sequence (traces, callbacks, RNG draws) is
exactly the scalar loop's.

Exactness: every operation is an elementwise float64 compare or multiply
— numpy evaluates these bit-identically to the equivalent scalar Python
expression, so the decisions can never diverge from ``Radio.on_rx_start``
/ ``Radio._finish_current``.  (Curve error models whose probabilities go
through transcendental functions are excluded by the
``ErrorModel.exact_vectorized`` gate.)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ACT_NONE",
    "ACT_LOCK",
    "ACT_CAPTURE",
    "ACT_RESEED",
    "ST_IDLE",
    "ST_RX",
    "ST_TX",
    "capture_actions",
    "frame_success_many",
]

# Per-receiver rx_start actions (mirror Radio.on_rx_start's branches).
ACT_NONE = 0     # pure interference (TX state, or IDLE below threshold)
ACT_LOCK = 1     # IDLE radio locks onto the frame
ACT_CAPTURE = 2  # stronger late arrival steals the lock from the current frame
ACT_RESEED = 3   # locked radio closes its SINR segment and re-seeds

# Radio state codes (RadioState → int snapshot).
ST_IDLE = 0
ST_RX = 1
ST_TX = 2


def capture_actions(
    powers: np.ndarray,
    states: np.ndarray,
    cur_powers: np.ndarray,
    rx_threshold_w: np.ndarray | float,
    capture_ratio: np.ndarray | float,
    capture_enabled: np.ndarray | bool,
) -> np.ndarray:
    """Per-receiver ``rx_start`` action codes for one arriving frame.

    Parameters
    ----------
    powers:
        Received power of the arriving frame at each radio (W).
    states:
        Radio state codes (``ST_IDLE`` / ``ST_RX`` / ``ST_TX``).
    cur_powers:
        For radios in RX, the locked frame's received power; any value
        (conventionally ``inf``) for the rest — those rows are never read
        through the capture compare's result.
    rx_threshold_w, capture_ratio, capture_enabled:
        Per-radio PHY parameters (scalars broadcast).

    Exactly reproduces, row by row, the branch structure of
    :meth:`repro.phy.radio.Radio.on_rx_start`:

    * IDLE and ``power >= rx_threshold_w`` → ``ACT_LOCK``
    * RX and capture enabled and ``power >= rx_threshold_w`` and
      ``power >= cur_power * capture_ratio`` → ``ACT_CAPTURE``
    * RX otherwise → ``ACT_RESEED``
    * TX (or IDLE below threshold) → ``ACT_NONE``
    """
    powers = np.asarray(powers, dtype=float)
    states = np.asarray(states)
    cur_powers = np.asarray(cur_powers, dtype=float)
    strong = powers >= rx_threshold_w
    actions = np.zeros(len(powers), dtype=np.int8)
    actions[(states == ST_IDLE) & strong] = ACT_LOCK
    rx = states == ST_RX
    # Same multiply-then-compare the scalar path performs; elementwise
    # float64, so the outcome can never differ from the scalar branch.
    cap = rx & capture_enabled & strong & (powers >= cur_powers * capture_ratio)
    actions[cap] = ACT_CAPTURE
    actions[rx & ~cap] = ACT_RESEED
    return actions


def frame_success_many(
    model,
    sinr: np.ndarray,
    bits: np.ndarray,
    offsets: np.ndarray,
) -> np.ndarray:
    """Per-frame success probabilities over concatenated segment arrays.

    ``sinr``/``bits`` hold every frame's segments back to back;
    ``offsets[i]`` is where frame *i*'s segments start.  Equivalent to
    calling ``model.frame_success_probability`` per frame (without the
    early-out at p == 0, which does not change the product), with the
    per-segment probabilities evaluated through the model's vectorised
    ``segment_success_probability_many``.  Frames with zero segments get
    the empty product, 1.0.

    Precondition: every segment has ``bits >= 1`` (what
    ``Radio._close_segment`` emits); segments with non-positive bit
    counts would be skipped by the scalar path but not here.
    """
    sinr = np.asarray(sinr, dtype=float)
    bits = np.asarray(bits, dtype=float)
    offsets = np.asarray(offsets, dtype=np.intp)
    n = len(offsets)
    out = np.ones(n)
    if n == 0 or len(sinr) == 0:
        return out
    p = model.segment_success_probability_many(sinr, bits)
    ends = np.append(offsets[1:], len(p))
    nonempty = ends > offsets
    # reduceat would return p[offsets[i]] (not 1.0) for an empty frame;
    # restricting the index list to non-empty frames sidesteps the quirk
    # without changing any other frame's grouping.
    if nonempty.any():
        out[nonempty] = np.multiply.reduceat(p, offsets[nonempty])
    return out
