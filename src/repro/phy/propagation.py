"""Radio propagation (path-loss) models.

Each model maps ``(tx_power_w, tx_position, rx_positions)`` to received
power in watts.  The many-receiver form is the hot path — one call per
transmission — so it is fully vectorised over a ``(n, 2)`` position array,
per the hpc-parallel guide (vectorise the inner loop, no per-node Python).

Models follow their ns-2 namesakes:

* :class:`FreeSpace` — Friis equation, exponent 2 everywhere.
* :class:`TwoRayGround` — Friis below the crossover distance, fourth-power
  ground-reflection beyond it (the ns-2 WMN default).
* :class:`LogDistance` — reference loss at ``d0`` plus ``10·n·log10(d/d0)``.
* :class:`LogNormalShadowing` — wraps any model, adding a per-link *static*
  shadowing term (dB, zero-mean Gaussian) that is deterministic per link so
  a link's quality does not fluctuate packet-to-packet.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.sim.rng import RandomStreams
from repro.sim.units import SPEED_OF_LIGHT

__all__ = [
    "PropagationModel",
    "FreeSpace",
    "TwoRayGround",
    "LogDistance",
    "LogNormalShadowing",
]

#: Distances are clamped to this minimum before path-loss evaluation to
#: avoid singularities when two nodes share a position.
MIN_DISTANCE_M = 0.1


def _distances(tx_pos: np.ndarray, rx_pos: np.ndarray) -> np.ndarray:
    """Euclidean distances from one point to an ``(n, 2)`` array, clamped."""
    d = np.hypot(rx_pos[:, 0] - tx_pos[0], rx_pos[:, 1] - tx_pos[1])
    return np.maximum(d, MIN_DISTANCE_M)


def _pair_distances(tx_pos: np.ndarray, rx_pos: np.ndarray) -> np.ndarray:
    """Row-wise distances between aligned ``(n, 2)`` arrays, clamped.

    The same ``hypot``/``maximum`` ufunc chain as :func:`_distances`, so a
    pair's distance is bit-identical whichever form computed it.
    """
    d = np.hypot(rx_pos[:, 0] - tx_pos[:, 0], rx_pos[:, 1] - tx_pos[:, 1])
    return np.maximum(d, MIN_DISTANCE_M)


class PropagationModel(ABC):
    """Deterministic path-loss model interface."""

    @abstractmethod
    def rx_power_many(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Received power (W) at each row of ``rx_pos`` for a transmitter at
        ``tx_pos`` emitting ``tx_power_w``.

        ``rx_ids`` carries the receiver node ids aligned with ``rx_pos``;
        only shadowing models need it (to key the per-link offset).
        """

    def rx_power_pairs(
        self, tx_power_w: "np.ndarray | float", tx_pos: np.ndarray,
        rx_pos: np.ndarray, tx_ids: np.ndarray | None = None,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Received power for *aligned* (tx, rx) pairs.

        ``tx_pos`` and ``rx_pos`` are both ``(n, 2)``; row *i* is one
        transmitter→receiver pair (``tx_power_w`` broadcasts).  The
        channel's batched path stacks several transmitters' dispatch
        evaluations into one call this way.

        **Exactness contract:** for the deterministic models this must be
        bit-identical to evaluating :meth:`rx_power_many` per transmitter
        — their overrides use the same elementwise ufunc chains, which
        numpy evaluates per element regardless of how rows are stacked.
        The base implementation loops per pair (correct for any model
        whose result depends only on the pair).
        """
        tx_pos = np.asarray(tx_pos, dtype=float)
        rx_pos = np.asarray(rx_pos, dtype=float)
        n = len(rx_pos)
        power = np.broadcast_to(
            np.asarray(tx_power_w, dtype=float), (n,)
        )
        return np.fromiter(
            (
                self.rx_power_many(
                    float(power[i]),
                    tx_pos[i],
                    rx_pos[i : i + 1],
                    rx_ids=None if rx_ids is None else rx_ids[i : i + 1],
                )[0]
                for i in range(n)
            ),
            dtype=float,
            count=n,
        )

    def rx_power(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        tx_id: int = -1, rx_id: int = -1,
    ) -> float:
        """Scalar convenience wrapper around :meth:`rx_power_many`."""
        out = self.rx_power_many(
            tx_power_w,
            np.asarray(tx_pos, dtype=float),
            np.asarray(rx_pos, dtype=float).reshape(1, 2),
            rx_ids=np.array([rx_id]),
        )
        return float(out[0])

    def range_for(
        self, tx_power_w: float, threshold_w: float, hi: float = 1e5
    ) -> float:
        """Distance at which received power falls to ``threshold_w``.

        Solved by bisection so it works for any monotone model; used to size
        carrier-sense neighbourhoods and validate topologies.
        """
        if threshold_w <= 0:
            raise ValueError("threshold must be positive")
        origin = np.zeros(2)

        def p(d: float) -> float:
            return self.rx_power(tx_power_w, origin, np.array([d, 0.0]))

        lo = MIN_DISTANCE_M
        if p(hi) > threshold_w:
            return hi
        if p(lo) < threshold_w:
            return 0.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if p(mid) >= threshold_w:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def max_interference_range(
        self, tx_power_w: float, threshold_w: float
    ) -> float:
        """Upper bound on the distance at which a transmission at
        ``tx_power_w`` can still be received above ``threshold_w``.

        This is the *culling contract* used by the channel's spatial index:
        any receiver farther than this distance is guaranteed to see less
        than ``threshold_w`` and may be skipped without evaluating the
        model.  Deterministic monotone models bound it exactly via
        :meth:`range_for`; models that cannot bound their reach (e.g.
        shadowing with unbounded per-link gain) return ``math.inf``, which
        disables spatial culling and falls back to exhaustive dispatch.
        """
        return self.range_for(tx_power_w, threshold_w)


class FreeSpace(PropagationModel):
    """Friis free-space model: ``Pr = Pt·Gt·Gr·λ² / ((4πd)²·L)``.

    Parameters
    ----------
    frequency_hz:
        Carrier frequency (default 2.4 GHz ISM).
    tx_gain, rx_gain, system_loss:
        Linear antenna gains and system loss (all default 1.0, as ns-2).
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        system_loss: float = 1.0,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_hz!r}")
        if min(tx_gain, rx_gain, system_loss) <= 0:
            raise ValueError("gains and system loss must be positive")
        self.frequency_hz = frequency_hz
        self.wavelength_m = SPEED_OF_LIGHT / frequency_hz
        self.tx_gain = tx_gain
        self.rx_gain = rx_gain
        self.system_loss = system_loss
        self._k = (
            tx_gain * rx_gain * self.wavelength_m**2 / ((4.0 * math.pi) ** 2 * system_loss)
        )

    def rx_power_many(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = _distances(tx_pos, rx_pos)
        return tx_power_w * self._k / (d * d)

    def rx_power_pairs(
        self, tx_power_w: "np.ndarray | float", tx_pos: np.ndarray,
        rx_pos: np.ndarray, tx_ids: np.ndarray | None = None,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = _pair_distances(np.asarray(tx_pos, float), np.asarray(rx_pos, float))
        return tx_power_w * self._k / (d * d)


class TwoRayGround(PropagationModel):
    """Two-ray ground reflection model (ns-2's WMN default).

    Friis up to the crossover distance ``dc = 4π·ht·hr/λ``, then
    ``Pr = Pt·Gt·Gr·ht²·hr² / (d⁴·L)``.

    Parameters
    ----------
    antenna_height_m:
        Height of both antennas (ns-2 default 1.5 m).
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        antenna_height_m: float = 1.5,
        tx_gain: float = 1.0,
        rx_gain: float = 1.0,
        system_loss: float = 1.0,
    ) -> None:
        if antenna_height_m <= 0:
            raise ValueError(f"antenna height must be positive, got {antenna_height_m!r}")
        self._friis = FreeSpace(frequency_hz, tx_gain, rx_gain, system_loss)
        self.antenna_height_m = antenna_height_m
        self.crossover_m = (
            4.0 * math.pi * antenna_height_m * antenna_height_m
        ) / self._friis.wavelength_m
        self._k4 = (
            tx_gain * rx_gain * antenna_height_m**4 / system_loss
        )

    def rx_power_many(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = _distances(tx_pos, rx_pos)
        near = tx_power_w * self._friis._k / (d * d)
        far = tx_power_w * self._k4 / (d**4)
        return np.where(d < self.crossover_m, near, far)

    def rx_power_pairs(
        self, tx_power_w: "np.ndarray | float", tx_pos: np.ndarray,
        rx_pos: np.ndarray, tx_ids: np.ndarray | None = None,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = _pair_distances(np.asarray(tx_pos, float), np.asarray(rx_pos, float))
        near = tx_power_w * self._friis._k / (d * d)
        far = tx_power_w * self._k4 / (d**4)
        return np.where(d < self.crossover_m, near, far)


class LogDistance(PropagationModel):
    """Log-distance path loss: ``PL(d) = PL(d0) + 10·n·log10(d/d0)`` dB.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (2 free space, 2.7–4 urban mesh).
    reference_distance_m:
        Reference distance ``d0``; loss there is computed with Friis.
    """

    def __init__(
        self,
        exponent: float = 3.0,
        reference_distance_m: float = 1.0,
        frequency_hz: float = 2.4e9,
    ) -> None:
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent!r}")
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        self.exponent = exponent
        self.d0 = reference_distance_m
        friis = FreeSpace(frequency_hz)
        # Linear gain at the reference distance (power ratio Pr/Pt at d0).
        self._g0 = friis._k / (self.d0 * self.d0)

    def rx_power_many(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = np.maximum(_distances(tx_pos, rx_pos), self.d0)
        return tx_power_w * self._g0 * (self.d0 / d) ** self.exponent

    def rx_power_pairs(
        self, tx_power_w: "np.ndarray | float", tx_pos: np.ndarray,
        rx_pos: np.ndarray, tx_ids: np.ndarray | None = None,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        d = np.maximum(
            _pair_distances(np.asarray(tx_pos, float), np.asarray(rx_pos, float)),
            self.d0,
        )
        return tx_power_w * self._g0 * (self.d0 / d) ** self.exponent


class LogNormalShadowing(PropagationModel):
    """Static per-link log-normal shadowing over any base model.

    Each *unordered* node pair gets one zero-mean Gaussian offset (dB),
    drawn deterministically from the run's seed: link quality is stable over
    a run and symmetric, but varies across links — the standard static
    shadowing abstraction for mesh (fixed-node) evaluations.

    Parameters
    ----------
    base:
        Underlying deterministic model.
    sigma_db:
        Standard deviation of the shadowing term in dB.
    streams:
        Run RNG registry (offsets keyed under ``"phy.shadowing"``).
    """

    def __init__(
        self, base: PropagationModel, sigma_db: float, streams: RandomStreams
    ) -> None:
        if sigma_db < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma_db!r}")
        self.base = base
        self.sigma_db = sigma_db
        self._streams = streams
        self._offsets_db: dict[tuple[int, int], float] = {}
        self._tx_id = -1  # set by channel before dispatch

    def set_transmitter(self, tx_id: int) -> None:
        """Record the transmitting node id for the next dispatch."""
        self._tx_id = tx_id

    def max_interference_range(
        self, tx_power_w: float, threshold_w: float
    ) -> float:
        """Shadowing gain is an unbounded Gaussian (in dB), so no finite
        distance guarantees sub-threshold power; report ``inf`` unless the
        model degenerates to its base (``sigma == 0``)."""
        if self.sigma_db == 0.0:
            return self.base.max_interference_range(tx_power_w, threshold_w)
        return math.inf

    def _offset_db(self, a: int, b: int) -> float:
        key = (a, b) if a <= b else (b, a)
        off = self._offsets_db.get(key)
        if off is None:
            gen = self._streams.stream(f"phy.shadowing.{key[0]}.{key[1]}")
            off = float(gen.normal(0.0, self.sigma_db))
            self._offsets_db[key] = off
        return off

    def rx_power_many(
        self, tx_power_w: float, tx_pos: np.ndarray, rx_pos: np.ndarray,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        p = np.asarray(
            self.base.rx_power_many(tx_power_w, tx_pos, rx_pos), dtype=float
        ).copy()
        if self.sigma_db == 0.0 or rx_ids is None:
            return p
        offs = np.fromiter(
            (self._offset_db(self._tx_id, int(r)) for r in rx_ids),
            dtype=float,
            count=len(rx_ids),
        )
        p *= 10.0 ** (offs / 10.0)
        return p

    def rx_power_pairs(
        self, tx_power_w: "np.ndarray | float", tx_pos: np.ndarray,
        rx_pos: np.ndarray, tx_ids: np.ndarray | None = None,
        rx_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        # Per-pair transmitter ids replace the set_transmitter() protocol;
        # without both id arrays the shadowing term cannot be keyed, so the
        # channel's batched path falls back to per-transmitter dispatch
        # for this model anyway.
        p = np.asarray(
            self.base.rx_power_pairs(tx_power_w, tx_pos, rx_pos), dtype=float
        ).copy()
        if self.sigma_db == 0.0 or tx_ids is None or rx_ids is None:
            return p
        offs = np.fromiter(
            (
                self._offset_db(int(t), int(r))
                for t, r in zip(tx_ids, rx_ids)
            ),
            dtype=float,
            count=len(rx_ids),
        )
        p *= 10.0 ** (offs / 10.0)
        return p
