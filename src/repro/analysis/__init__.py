"""Statistical helpers and analytical models for experiments."""

from repro.analysis.bianchi import (
    saturation_throughput_bps,
    transmission_probability,
)
from repro.analysis.stats import ConfidenceInterval, mean_ci, summarize

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "saturation_throughput_bps",
    "summarize",
    "transmission_probability",
]
