"""Replication statistics: means and Student-t confidence intervals.

Beyond the report-facing :func:`mean_ci`/:func:`summarize`, this module
holds the *sequential* helpers the adaptive campaign scheduler
(:mod:`repro.exec.adaptive`) stops on: :func:`t_critical` (the shared
Student-t quantile), :func:`sequential_halfwidth` (the conservative
stop-test statistic), and :func:`reps_to_target` (a wave-size planner).

The two families deliberately disagree on ``n = 1``: a report CI prints a
half-width of 0 for a single observation (there is nothing to spread),
while a *stopping rule* must never conclude from one sample — so
``sequential_halfwidth`` returns ``inf`` until two finite values exist.
Zero-variance samples yield a half-width of exactly ``0.0`` in both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "ConfidenceInterval",
    "mean_ci",
    "reps_to_target",
    "sequential_halfwidth",
    "summarize",
    "t_critical",
]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A sample mean with its symmetric confidence half-width.

    Attributes
    ----------
    mean:
        Sample mean.
    half_width:
        Half-width of the confidence interval (0 for n = 1).
    n:
        Sample size.
    level:
        Confidence level, e.g. 0.95.
    """

    mean: float
    half_width: float
    n: int
    level: float

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def t_critical(n: int, level: float = 0.95) -> float:
    """Two-sided Student-t critical value for a sample of size ``n``.

    ``n`` is the sample size (degrees of freedom ``n - 1``); values below 2
    have no defined quantile and raise.
    """
    if n < 2:
        raise ValueError(f"t_critical needs n ≥ 2, got {n}")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    return float(sps.t.ppf(0.5 + level / 2.0, df=n - 1))


def _finite(values: Sequence[float]) -> np.ndarray:
    x = np.asarray(list(values), dtype=float)
    return x[~np.isnan(x)]


def sequential_halfwidth(values: Sequence[float], level: float = 0.95) -> float:
    """Student-t CI half-width as a *sequential stopping* statistic.

    Degenerate inputs are pinned to the conservative side, because this
    number decides whether a campaign stops buying replicates:

    * fewer than two finite values → ``inf`` (one sample proves nothing;
      NaNs — e.g. delay with zero deliveries — are dropped first);
    * zero sample variance → exactly ``0.0`` (identical replicates, the
      interval is degenerate and any positive target is met).
    """
    x = _finite(values)
    n = len(x)
    if n < 2:
        return math.inf
    sd = float(np.std(x, ddof=1))
    if sd == 0.0:
        return 0.0
    return t_critical(n, level) * sd / math.sqrt(n)


def reps_to_target(
    values: Sequence[float], target: float, level: float = 0.95,
) -> int:
    """Estimated *total* replicates needed to reach ``target`` half-width.

    Plans the next wave from the current sample's variance:
    ``n* = (t · s / target)²`` with the t value of the current sample
    (conservative for the larger n it predicts).  Returns at least the
    current sample size; with fewer than two finite values (no variance
    estimate yet) or a non-positive target it returns ``n + 1`` — "buy at
    least one more and re-ask".
    """
    x = _finite(values)
    n = len(x)
    if n < 2 or target <= 0.0:
        return n + 1
    sd = float(np.std(x, ddof=1))
    if sd == 0.0:
        return n
    need = math.ceil((t_critical(n, level) * sd / target) ** 2)
    return max(n, int(need))


def mean_ci(values: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Mean and Student-t confidence interval of ``values``.

    NaNs are dropped (a replication with zero deliveries yields NaN delay).

    >>> ci = mean_ci([1.0, 2.0, 3.0])
    >>> round(ci.mean, 3)
    2.0
    """
    x = _finite(values)
    n = len(x)
    if n == 0:
        return ConfidenceInterval(math.nan, math.nan, 0, level)
    m = float(np.mean(x))
    if n == 1:
        return ConfidenceInterval(m, 0.0, 1, level)
    sem = float(np.std(x, ddof=1)) / math.sqrt(n)
    return ConfidenceInterval(m, t_critical(n, level) * sem, n, level)


def summarize(
    rows: Sequence[dict[str, float]], level: float = 0.95
) -> dict[str, ConfidenceInterval]:
    """Per-key :func:`mean_ci` across a list of result dicts.

    Keys missing from some rows are summarised over the rows that have
    them.
    """
    keys: set[str] = set()
    for r in rows:
        keys |= set(r)
    return {
        k: mean_ci([r[k] for r in rows if k in r], level=level) for k in sorted(keys)
    }
