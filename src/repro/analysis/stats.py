"""Replication statistics: means and Student-t confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = ["ConfidenceInterval", "mean_ci", "summarize"]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A sample mean with its symmetric confidence half-width.

    Attributes
    ----------
    mean:
        Sample mean.
    half_width:
        Half-width of the confidence interval (0 for n = 1).
    n:
        Sample size.
    level:
        Confidence level, e.g. 0.95.
    """

    mean: float
    half_width: float
    n: int
    level: float

    @property
    def low(self) -> float:
        """Lower bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(values: Sequence[float], level: float = 0.95) -> ConfidenceInterval:
    """Mean and Student-t confidence interval of ``values``.

    NaNs are dropped (a replication with zero deliveries yields NaN delay).

    >>> ci = mean_ci([1.0, 2.0, 3.0])
    >>> round(ci.mean, 3)
    2.0
    """
    x = np.asarray(list(values), dtype=float)
    x = x[~np.isnan(x)]
    n = len(x)
    if n == 0:
        return ConfidenceInterval(math.nan, math.nan, 0, level)
    m = float(np.mean(x))
    if n == 1:
        return ConfidenceInterval(m, 0.0, 1, level)
    sem = float(np.std(x, ddof=1)) / math.sqrt(n)
    t = float(sps.t.ppf(0.5 + level / 2.0, df=n - 1))
    return ConfidenceInterval(m, t * sem, n, level)


def summarize(
    rows: Sequence[dict[str, float]], level: float = 0.95
) -> dict[str, ConfidenceInterval]:
    """Per-key :func:`mean_ci` across a list of result dicts.

    Keys missing from some rows are summarised over the rows that have
    them.
    """
    keys: set[str] = set()
    for r in rows:
        keys |= set(r)
    return {
        k: mean_ci([r[k] for r in rows if k in r], level=level) for k in sorted(keys)
    }
