"""Bianchi's analytical model of 802.11 DCF saturation throughput.

Bianchi (JSAC 2000) models each saturated station as a bidimensional
backoff Markov chain and derives, for ``n`` stations in one collision
domain under basic access:

* the per-slot transmission probability τ from the fixed point

  .. math::

      \\tau = \\frac{2(1-2p)}{(1-2p)(W+1) + pW(1-(2p)^m)},
      \\qquad p = 1-(1-\\tau)^{n-1}

  where ``W = CWmin+1`` and ``m`` is the number of backoff stages;

* and the saturation throughput

  .. math::

      S = \\frac{P_s P_{tr} E[P]}
               {(1-P_{tr})\\sigma + P_{tr}P_s T_s + P_{tr}(1-P_s) T_c}

  with σ the slot time and ``T_s``/``T_c`` the success/collision slot
  durations.

The MAC validation experiment compares this closed form against the
simulator's measured saturation throughput — substrate validation, ns-2
style.  Our MAC's always-backoff simplification matches Bianchi's chain
assumptions exactly, so agreement should be tight (a few percent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.mac.csma import MacConfig
from repro.phy.radio import PhyConfig

__all__ = ["BianchiTiming", "transmission_probability", "saturation_throughput_bps"]


@dataclass(frozen=True, slots=True)
class BianchiTiming:
    """Slot durations entering Bianchi's throughput formula (seconds)."""

    slot_s: float
    success_s: float
    collision_s: float
    payload_bits: int


def _stages(mac: MacConfig) -> tuple[int, int]:
    """(W, m): initial window size and number of doubling stages."""
    w = mac.cw_min + 1
    m = round(math.log2((mac.cw_max + 1) / w))
    return w, m


def transmission_probability(n: int, mac: MacConfig) -> tuple[float, float]:
    """Solve Bianchi's fixed point; returns (τ, p).

    Parameters
    ----------
    n:
        Number of saturated stations (≥ 2).
    mac:
        DCF parameters (CWmin/CWmax used).
    """
    if n < 2:
        raise ValueError(f"Bianchi's model needs ≥ 2 stations, got {n}")
    w, m = _stages(mac)

    def tau_of_p(p: float) -> float:
        if p >= 0.5:
            # closed form's (1-2p) pole; evaluate limit-safe expression
            p = min(p, 0.499999)
        num = 2.0 * (1.0 - 2.0 * p)
        den = (1.0 - 2.0 * p) * (w + 1) + p * w * (1.0 - (2.0 * p) ** m)
        return num / den

    def residual(tau: float) -> float:
        p = 1.0 - (1.0 - tau) ** (n - 1)
        return tau - tau_of_p(p)

    tau = float(brentq(residual, 1e-9, 0.999999, xtol=1e-12))
    p = 1.0 - (1.0 - tau) ** (n - 1)
    return tau, p


def timing_for(
    mac: MacConfig, phy: PhyConfig, payload_bytes: int
) -> BianchiTiming:
    """Success/collision slot durations for our frame format.

    Basic access: ``Ts = DIFS + T_DATA + SIFS + T_ACK``, ``Tc = DIFS +
    T_DATA`` (the collider waits out the longest colliding frame).
    Propagation delay is neglected (sub-µs at mesh ranges).
    """
    data_bits = (payload_bytes + 34) * 8  # MAC overhead as on the air
    t_data = phy.preamble_s + data_bits / phy.data_rate_bps
    t_ack = phy.preamble_s + (14 * 8) / phy.basic_rate_bps
    return BianchiTiming(
        slot_s=mac.slot_s,
        success_s=mac.difs_s + t_data + mac.sifs_s + t_ack,
        collision_s=mac.difs_s + t_data + mac.sifs_s + t_ack,
        payload_bits=payload_bytes * 8,
    )


def saturation_throughput_bps(
    n: int,
    mac: MacConfig | None = None,
    phy: PhyConfig | None = None,
    payload_bytes: int = 512,
) -> float:
    """Predicted aggregate saturation throughput (application bits/s).

    ``Tc`` is taken equal to ``Ts`` because our simulated stations, lacking
    NAV-less early abort, also wait out the ACK timeout after a collision —
    matching the simulator rather than Bianchi's slightly shorter
    theoretical ``Tc`` (the difference is ≈ the ACK airtime).

    >>> s2 = saturation_throughput_bps(2)
    >>> s20 = saturation_throughput_bps(20)
    >>> s2 > s20 > 0
    True
    """
    mac = mac or MacConfig()
    phy = phy or PhyConfig()
    t = timing_for(mac, phy, payload_bytes)
    tau, _p = transmission_probability(n, mac)
    p_tr = 1.0 - (1.0 - tau) ** n
    p_s = n * tau * (1.0 - tau) ** (n - 1) / p_tr
    denom = (
        (1.0 - p_tr) * t.slot_s
        + p_tr * p_s * t.success_s
        + p_tr * (1.0 - p_s) * t.collision_s
    )
    return p_s * p_tr * t.payload_bits / denom
