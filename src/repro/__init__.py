"""repro — Cross-layer Neighbourhood Load Routing for Wireless Mesh Networks.

A from-scratch Python reproduction of Zhao, Al-Dubai & Min (IPPS 2010):
a packet-level wireless-mesh simulator (DES kernel, SINR PHY, 802.11 DCF
MAC, AODV-family routing) plus the paper's contribution — NLR, a
cross-layer, neighbourhood-load-aware probabilistic route-discovery and
route-selection scheme — and the baselines it is evaluated against.

Quickstart
----------
>>> from repro import ScenarioConfig, run_scenario
>>> cfg = ScenarioConfig(protocol="nlr", grid_nx=4, grid_ny=4,
...                      n_flows=3, sim_time_s=20.0, seed=7)
>>> result = run_scenario(cfg)          # doctest: +SKIP
>>> 0.0 <= result.pdr <= 1.0            # doctest: +SKIP
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed-figure results.
"""

from repro.core import (
    CrossLayerBus,
    LoadAdaptiveGossip,
    LoadEstimator,
    NeighbourhoodLoad,
    NlrConfig,
    NlrRouting,
)
from repro.experiments import (
    Network,
    ScenarioConfig,
    ScenarioResult,
    build_network,
    replicate,
    run_scenario,
    sweep,
)
from repro.net import AodvConfig, AodvRouting
from repro.sim import RandomStreams, Simulator

__version__ = "1.0.0"

__all__ = [
    "AodvConfig",
    "AodvRouting",
    "CrossLayerBus",
    "LoadAdaptiveGossip",
    "LoadEstimator",
    "Network",
    "NeighbourhoodLoad",
    "NlrConfig",
    "NlrRouting",
    "RandomStreams",
    "ScenarioConfig",
    "ScenarioResult",
    "Simulator",
    "build_network",
    "replicate",
    "run_scenario",
    "sweep",
    "__version__",
]
