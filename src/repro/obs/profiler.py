"""Engine profiler: wall-time attribution for the event loop's callbacks.

The simulator spends essentially all of its time inside event callbacks;
knowing *which* callbacks is what turns "the sweep is slow" into "68% of
the wall time is ``CsmaMac._tx_end``".  An :class:`EngineProfiler` is
handed to :meth:`~repro.sim.engine.Simulator.set_profiler`; the engine
then times every executed callback and reports ``(callback, dt)`` pairs
here.  Attribution is keyed by the callback's qualified name and grouped
by layer (the ``repro.<layer>`` package the callback lives in), so the
report reads as a per-layer / per-callback breakdown.

Off by default: with no profiler attached the engine's event loop runs
the exact pre-observability instruction sequence except for one local
``is not None`` check per event (see ``bench_obs_overhead.py`` for the
guard keeping that below the noise floor).

``sample_every=N`` keeps only every Nth event's timing (scaled back up in
the report) for workloads where even two ``perf_counter`` calls per event
are too much; event *counts* stay exact in either mode.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["EngineProfiler"]


def _callback_key(fn: Callable[..., Any]) -> tuple[str, str]:
    """(layer, qualified name) for an event callback."""
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == "repro":
        layer = parts[1]
    else:
        layer = module or "?"
    return layer, qualname


class EngineProfiler:
    """Aggregates per-callback event counts and wall time.

    Parameters
    ----------
    sample_every:
        1 (default) times every event (exact); N > 1 times every Nth
        event and scales the reported totals by N (sampled).
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.events = 0  # exact, both modes
        self._timed: dict[tuple[str, str], list[float]] = {}  # key -> [n, sum]
        # key -> [events, batches, sum]; batches are always timed exactly
        # (one perf_counter pair amortised over the whole batch), so their
        # wall time is never scaled by the sampling stride.
        self._batched: dict[tuple[str, str], list[float]] = {}

    # ------------------------------------------------------------------ #
    # Engine-facing API (hot path)
    # ------------------------------------------------------------------ #
    def record(self, fn: Callable[..., Any], dt: float) -> None:
        """One timed callback execution of ``fn`` taking ``dt`` seconds."""
        self.events += 1
        key = _callback_key(fn)
        cell = self._timed.get(key)
        if cell is None:
            self._timed[key] = [1.0, dt]
        else:
            cell[0] += 1.0
            cell[1] += dt

    def count_only(self, fn: Callable[..., Any]) -> None:
        """One untimed execution (sampled mode's off-stride events)."""
        self.events += 1
        key = _callback_key(fn)
        cell = self._timed.get(key)
        if cell is None:
            self._timed[key] = [1.0, 0.0]
        else:
            cell[0] += 1.0

    def record_batch(self, fn: Callable[..., Any], dt: float, n: int) -> None:
        """One batched execution covering ``n`` logical events of ``fn``.

        The batch's wall time is attributed to ``fn``'s category whole (it
        was measured around the single vector-handler or block call), and
        the batch size is recorded so the report can show how well events
        coalesced on the batched path.
        """
        self.events += n
        key = _callback_key(fn)
        cell = self._batched.get(key)
        if cell is None:
            self._batched[key] = [float(n), 1.0, dt]
        else:
            cell[0] += n
            cell[1] += 1.0
            cell[2] += dt

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def total_time_s(self) -> float:
        """Summed (scale-corrected) callback wall time."""
        return (
            sum(t for _, t in self._timed.values()) * self.sample_every
            + sum(cell[2] for cell in self._batched.values())
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready profile: per-callback and per-layer attribution.

        Wall times are estimates when ``sample_every > 1`` (scaled by the
        stride); event counts are always exact.  Batched executions merge
        into their callback's row with exact (unscaled) wall time, plus
        ``batches`` / ``batched_events`` columns showing how the batched
        path coalesced.
        """
        scale = float(self.sample_every)
        merged: dict[tuple[str, str], list[float]] = {}
        for key, (n, t) in self._timed.items():
            merged[key] = [n, t * scale, 0.0, 0.0]
        for key, (n, b, t) in self._batched.items():
            cell = merged.setdefault(key, [0.0, 0.0, 0.0, 0.0])
            cell[0] += n
            cell[1] += t
            cell[2] += b
            cell[3] += n
        callbacks = []
        layers: dict[str, list[float]] = {}
        total_batches = 0
        total_batched_events = 0
        for (layer, qualname), (n, t, b, bn) in merged.items():
            row: dict[str, Any] = {
                "layer": layer,
                "callback": qualname,
                "events": int(n),
                "time_s": t,
            }
            if b:
                row["batches"] = int(b)
                row["batched_events"] = int(bn)
                total_batches += int(b)
                total_batched_events += int(bn)
            callbacks.append(row)
            cell = layers.setdefault(layer, [0.0, 0.0])
            cell[0] += n
            cell[1] += t
        callbacks.sort(key=lambda c: (-c["time_s"], c["callback"]))
        out: dict[str, Any] = {
            "sample_every": self.sample_every,
            "events": self.events,
            "total_time_s": self.total_time_s,
            "layers": {
                layer: {"events": int(n), "time_s": t}
                for layer, (n, t) in sorted(
                    layers.items(), key=lambda kv: -kv[1][1]
                )
            },
            "callbacks": callbacks,
        }
        if total_batches:
            out["batches"] = total_batches
            out["batched_events"] = total_batched_events
        return out

    def report(self, top: int = 20) -> str:
        """Human-readable profile table, hottest callbacks first."""
        data = self.as_dict()
        total = data["total_time_s"] or 1e-12
        mode = (
            "exact" if self.sample_every == 1
            else f"sampled 1/{self.sample_every} (times are estimates)"
        )
        lines = [
            f"engine profile: {data['events']} events, "
            f"{data['total_time_s'] * 1e3:.1f} ms in callbacks ({mode})",
        ]
        if data.get("batches"):
            lines.append(
                f"batched path: {data['batched_events']} events in "
                f"{data['batches']} batches "
                f"(avg {data['batched_events'] / data['batches']:.1f}/batch)"
            )
        lines += [
            "",
            f"{'layer':<12} {'events':>10} {'time':>10} {'share':>7}",
        ]
        for layer, cell in data["layers"].items():
            lines.append(
                f"{layer:<12} {cell['events']:>10} "
                f"{cell['time_s'] * 1e3:>8.1f}ms {cell['time_s'] / total:>6.1%}"
            )
        lines.append("")
        lines.append(f"{'callback':<44} {'events':>10} {'time':>10} {'share':>7}")
        for cb in data["callbacks"][:top]:
            name = cb["callback"]
            if len(name) > 43:
                name = "…" + name[-42:]
            lines.append(
                f"{name:<44} {cb['events']:>10} "
                f"{cb['time_s'] * 1e3:>8.1f}ms {cb['time_s'] / total:>6.1%}"
            )
        remaining = len(data["callbacks"]) - top
        if remaining > 0:
            lines.append(f"… {remaining} more callbacks")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EngineProfiler(events={self.events}, "
            f"time_s={self.total_time_s:.4f}, sample_every={self.sample_every})"
        )
