"""``repro-trace``: analyse JSONL trace artifacts from the command line.

Usage::

    repro-trace summary  results/obs/run/trace.jsonl.gz
    repro-trace timeline results/obs/run/trace.jsonl.gz --bin 0.5 --category net
    repro-trace nodes    results/obs/run/trace.jsonl.gz
    repro-trace storms   results/obs/run/trace.jsonl.gz
    repro-trace csv      results/obs/run/trace.jsonl.gz -o trace.csv
    repro-trace validate results/obs/run/trace.jsonl.gz

(or ``python -m repro.obs.trace_cli ...`` without installing the entry
point).  Artifacts are self-describing — ``summary`` reproduces the
run's RREQ and PDR counters from the file alone, using the measurement
window recorded in the header.  Gzip-compressed files (``.gz``) are read
transparently.
"""

from __future__ import annotations

import argparse
import csv
import gzip
import json
import math
import sys
from pathlib import Path
from typing import Any, IO, Iterator

from repro.metrics.asciichart import line_chart
from repro.metrics.timeseries import bin_series
from repro.metrics.summary import format_table
from repro.obs.schema import (
    RECORD_KEYS,
    TRACE_SCHEMA_VERSION,
    validate_trace_line,
)

__all__ = ["main"]


def _open_text(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def read_lines(path: Path) -> Iterator[tuple[int, dict[str, Any]]]:
    """Yield ``(lineno, parsed object)`` for every line of the artifact."""
    with _open_text(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            yield lineno, json.loads(line)


def load_trace(
    path: Path,
) -> tuple[dict[str, Any], list[dict[str, Any]], dict[str, Any] | None]:
    """Read one artifact: ``(header, records, footer-or-None)``.

    Raises ``ValueError`` on a missing/unknown-version header so readers
    never misinterpret foreign JSONL.
    """
    header: dict[str, Any] | None = None
    footer: dict[str, Any] | None = None
    records: list[dict[str, Any]] = []
    for lineno, obj in read_lines(path):
        kind = obj.get("kind")
        if lineno == 1:
            if kind != "header" or obj.get("schema") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: not a v{TRACE_SCHEMA_VERSION} trace artifact "
                    f"(first line: {str(obj)[:80]})"
                )
            header = obj
            continue
        if kind == "footer":
            footer = obj
        elif kind in ("header", "warning"):
            continue
        else:
            records.append(obj)
    if header is None:
        raise ValueError(f"{path}: empty artifact (no header line)")
    return header, records, footer


# ---------------------------------------------------------------------- #
# Derived quantities
# ---------------------------------------------------------------------- #
def window_of(header: dict[str, Any]) -> tuple[float, float]:
    """The run's measurement window ``[warmup, sim_time)`` from the header."""
    return (
        float(header.get("warmup_s", 0.0)),
        float(header.get("sim_time_s", math.inf)),
    )


def rreq_tx_count(records: list[dict[str, Any]]) -> int:
    """RREQ transmissions: originations plus forwards (the storm size)."""
    return sum(
        1 for r in records if r["ev"] in ("rreq_originate", "rreq_forward")
    )


def pdr_from_trace(
    records: list[dict[str, Any]], window: tuple[float, float]
) -> tuple[int, int, float]:
    """Recompute ``(sent, received, pdr)`` under the collector's rules.

    Only packets *originated* inside the window count, for both tallies;
    duplicate deliveries of the same ``(flow, seq)`` count once.
    """
    lo, hi = window
    sent = 0
    seen: set[tuple[int, int]] = set()
    for r in records:
        if r["cat"] != "app":
            continue
        if r["ev"] == "send":
            if lo <= r["t"] < hi and r.get("flow", -1) >= 0:
                sent += 1
        elif r["ev"] == "deliver":
            flow = r.get("flow", -1)
            created = r.get("created", r["t"])
            if flow < 0 or not lo <= created < hi:
                continue
            key = (flow, r.get("seq", -1))
            if key not in seen:
                seen.add(key)
    received = len(seen)
    return sent, received, (received / sent if sent else 0.0)


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #
def cmd_summary(args: argparse.Namespace) -> int:
    header, records, footer = load_trace(args.file)
    window = window_of(header)
    by_cat: dict[str, int] = {}
    by_event: dict[str, int] = {}
    nodes: set[int] = set()
    for r in records:
        by_cat[r["cat"]] = by_cat.get(r["cat"], 0) + 1
        key = f"{r['cat']}/{r['ev']}"
        by_event[key] = by_event.get(key, 0) + 1
        nodes.add(r["node"])
    sent, received, pdr = pdr_from_trace(records, window)

    t_span = (records[0]["t"], records[-1]["t"]) if records else (0.0, 0.0)
    rows = [
        ["protocol", header.get("protocol", "?")],
        ["seed", header.get("seed", "?")],
        ["nodes (header)", header.get("nodes", "?")],
        ["records", len(records)],
        ["time span", f"{t_span[0]:.3f} .. {t_span[1]:.3f} s"],
        ["window", f"[{window[0]:g}, {window[1]:g}) s"],
        ["rreq tx", rreq_tx_count(records)],
        ["sent (window)", sent],
        ["received (window)", received],
        ["pdr", round(pdr, 6)],
    ]
    if footer is not None:
        rows.append(["footer recorded", footer.get("recorded")])
        rows.append(["retention dropped", footer.get("dropped")])
    else:
        rows.append(["footer", "MISSING (truncated artifact?)"])
    print(format_table(["field", "value"], rows, title=str(args.file)))
    print()
    print(
        format_table(
            ["category", "records"],
            [[c, n] for c, n in sorted(by_cat.items())],
            title="records by category",
        )
    )
    top = sorted(by_event.items(), key=lambda kv: (-kv[1], kv[0]))[: args.top]
    print()
    print(
        format_table(
            ["event", "records"],
            [[e, n] for e, n in top],
            title=f"top {len(top)} events",
        )
    )
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    header, records, _ = load_trace(args.file)
    if args.category:
        records = [r for r in records if r["cat"] == args.category]
    if args.event:
        records = [r for r in records if r["ev"] == args.event]
    if not records:
        print("no matching records", file=sys.stderr)
        return 1
    times = [r["t"] for r in records]
    t1 = float(header.get("sim_time_s", max(times)))
    centers, counts = bin_series(
        times, None, bin_s=args.bin, t0=0.0, t1=t1, agg="count"
    )
    label = args.category or "all"
    if args.event:
        label += f"/{args.event}"
    print(
        line_chart(
            centers,
            {label: counts},
            width=args.width,
            height=12,
            title=f"events per {args.bin:g}s bin — {args.file.name}",
            x_label="t (s)",
        )
    )
    return 0


def cmd_nodes(args: argparse.Namespace) -> int:
    _, records, _ = load_trace(args.file)
    per_node: dict[int, dict[str, int]] = {}
    cats: set[str] = set()
    for r in records:
        row = per_node.setdefault(r["node"], {})
        row[r["cat"]] = row.get(r["cat"], 0) + 1
        cats.add(r["cat"])
    cat_list = sorted(cats)
    ranked = sorted(per_node.items(), key=lambda kv: (-sum(kv[1].values()), kv[0]))
    if args.top:
        ranked = ranked[: args.top]
    rows = [
        [node, sum(row.values())] + [row.get(c, 0) for c in cat_list]
        for node, row in ranked
    ]
    title = "records per node"
    if args.top and len(per_node) > args.top:
        title += f" (top {args.top} of {len(per_node)})"
    print(format_table(["node", "total"] + cat_list, rows, title=title))
    return 0


def cmd_storms(args: argparse.Namespace) -> int:
    _, records, _ = load_trace(args.file)
    # One discovery "storm" = one (origin, rreq_id): the origination plus
    # every rebroadcast it triggered across the mesh.
    storms: dict[tuple[int, int], dict[str, Any]] = {}
    forwards_unattributed = 0
    for r in records:
        if r["ev"] == "rreq_originate":
            key = (r["node"], r.get("rreq_id", -1))
            storms[key] = {
                "t": r["t"],
                "origin": r["node"],
                "dst": r.get("dst", "?"),
                "ttl": r.get("ttl", "?"),
                "forwards": 0,
            }
        elif r["ev"] == "rreq_forward":
            key = (r.get("origin", -1), r.get("rreq_id", -1))
            if key in storms:
                storms[key]["forwards"] += 1
            else:
                forwards_unattributed += 1
    if not storms:
        print("no RREQ originations in trace", file=sys.stderr)
        return 1
    ranked = sorted(
        storms.values(), key=lambda s: (-s["forwards"], s["t"])
    )[: args.top]
    rows = [
        [f"{s['t']:.3f}", s["origin"], s["dst"], s["ttl"],
         s["forwards"], 1 + s["forwards"]]
        for s in ranked
    ]
    total_tx = sum(1 + s["forwards"] for s in storms.values())
    print(
        format_table(
            ["t", "origin", "dst", "ttl", "forwards", "total tx"],
            rows,
            title=(
                f"{len(storms)} discovery storms, "
                f"{total_tx + forwards_unattributed} RREQ tx total"
            ),
        )
    )
    if forwards_unattributed:
        print(
            f"({forwards_unattributed} forwards without a traced origination "
            "— category-filtered trace?)"
        )
    return 0


def cmd_csv(args: argparse.Namespace) -> int:
    _, records, _ = load_trace(args.file)
    detail_keys = sorted(
        {k for r in records for k in r if k not in RECORD_KEYS}
    )
    out = args.output.open("w", newline="") if args.output else sys.stdout
    try:
        writer = csv.writer(out)
        writer.writerow(list(RECORD_KEYS) + detail_keys)
        for r in records:
            writer.writerow(
                [r[k] for k in RECORD_KEYS]
                + [r.get(k, "") for k in detail_keys]
            )
    finally:
        if args.output:
            out.close()
            print(f"wrote {len(records)} rows to {args.output}", file=sys.stderr)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    errors: list[str] = []
    n = 0
    saw_header = saw_footer = False
    try:
        for lineno, obj in read_lines(args.file):
            n += 1
            if lineno == 1 and obj.get("kind") == "header":
                saw_header = True
            if obj.get("kind") == "footer":
                saw_footer = True
            if obj.get("kind") == "warning":
                continue
            errors.extend(validate_trace_line(obj, lineno))
            if len(errors) >= args.max_errors:
                break
    except json.JSONDecodeError as exc:
        errors.append(f"line {exc.lineno}: not valid JSON ({exc.msg})")
    if not saw_header:
        errors.append("line 1: missing schema header")
    if not saw_footer and args.strict:
        errors.append("missing footer (artifact truncated?)")
    for err in errors[: args.max_errors]:
        print(err, file=sys.stderr)
    if errors:
        print(f"INVALID: {len(errors)} error(s) in {n} lines", file=sys.stderr)
        return 1
    print(f"ok: {n} lines valid (schema v{TRACE_SCHEMA_VERSION})")
    return 0


# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Analyse repro JSONL trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, fn, help: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help)
        p.add_argument("file", type=Path, help="trace .jsonl or .jsonl.gz")
        p.set_defaults(fn=fn)
        return p

    p = add("summary", cmd_summary, "headline counters and per-category totals")
    p.add_argument("--top", type=int, default=15, help="event rows to show")

    p = add("timeline", cmd_timeline, "binned event-rate ASCII chart")
    p.add_argument("--bin", type=float, default=1.0, help="bin width (s)")
    p.add_argument("--category", help="restrict to one category")
    p.add_argument("--event", help="restrict to one event name")
    p.add_argument("--width", type=int, default=60)

    p = add("nodes", cmd_nodes, "per-node, per-category record counts")
    p.add_argument("--top", type=int, default=0,
                   help="busiest nodes to list (0 = all)")

    p = add("storms", cmd_storms, "RREQ discovery-storm breakdown")
    p.add_argument("--top", type=int, default=20, help="storms to list")

    p = add("csv", cmd_csv, "flatten records to CSV")
    p.add_argument("-o", "--output", type=Path, help="output file (default stdout)")

    p = add("validate", cmd_validate, "schema-validate every line")
    p.add_argument("--max-errors", type=int, default=20)
    p.add_argument(
        "--strict", action="store_true",
        help="also require the closing footer line",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
