"""Registers the standard network metric namespace on a built network.

One call — :func:`register_network_metrics` — gives every run the same
queryable namespace, pulled from the live simulation objects at snapshot
time via the registry's collect hooks.  Pull-style wiring keeps the
protocol/MAC/PHY hot paths untouched (their existing attribute counters
remain the source of truth) while presenting one canonical,
deterministic view: the ``repro_*`` series below.

Namespace convention: ``repro_<layer>_<quantity>[_total]``, with
``{label="value"}`` children for enumerable dimensions (packet kind,
drop reason).  Everything in the snapshot is simulation state — never
wall-clock — so snapshots are byte-identical across processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario import Network

__all__ = ["register_network_metrics"]

#: Busy-ratio histogram bounds: the [0, 1] interval in 0.1 steps.
BUSY_BUCKETS = tuple(round(0.1 * k, 1) for k in range(1, 11))

#: End-to-end delay histogram bounds (seconds).
DELAY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def register_network_metrics(net: "Network") -> MetricsRegistry:
    """Wire the standard ``repro_*`` namespace into ``net.metrics``."""
    reg = net.metrics

    # Callback gauges resolve lazily, so registering before stacks/traffic
    # exist is fine — they read whatever the network holds at snapshot.
    reg.gauge(
        "repro_sim_events_executed_total",
        "engine callbacks executed",
        fn=lambda: net.sim.events_executed,
    )
    reg.gauge(
        "repro_sim_now_seconds",
        "simulation clock at snapshot",
        fn=lambda: net.sim.now,
    )
    reg.gauge(
        "repro_trace_recorded_total",
        "trace records accepted by the tracer",
        fn=lambda: net.tracer.recorded,
    )
    reg.gauge(
        "repro_trace_dropped_total",
        "trace records dropped from in-memory retention",
        fn=lambda: net.tracer.dropped,
    )

    reg.on_collect(lambda r: _collect(net, r))
    return reg


def _collect(net: "Network", reg: MetricsRegistry) -> None:
    """Pull hook: refresh every gauge/histogram from the live network."""
    stacks = net.stacks

    # --- net layer ----------------------------------------------------- #
    control = reg.gauge(
        "repro_net_control_tx_total", "control transmissions by packet kind"
    )
    for kind in ("rreq", "rrep", "rerr", "hello"):
        control.labels(kind=kind).set(
            sum(s.routing.control_tx[kind] for s in stacks)
        )
    reg.gauge("repro_net_control_bytes_total", "control bytes sent").set(
        sum(s.routing.control_bytes_tx for s in stacks)
    )
    reg.gauge("repro_net_data_originated_total", "DATA packets originated").set(
        sum(s.routing.data_originated for s in stacks)
    )
    reg.gauge("repro_net_data_forwarded_total", "DATA packets forwarded").set(
        sum(s.routing.data_forwarded for s in stacks)
    )
    drops = reg.gauge(
        "repro_net_data_dropped_total", "routing-layer DATA drops by reason"
    )
    drops.labels(reason="no_route").set(
        sum(s.routing.data_dropped_no_route for s in stacks)
    )
    drops.labels(reason="ttl").set(
        sum(s.routing.data_dropped_ttl for s in stacks)
    )
    drops.labels(reason="link").set(
        sum(getattr(s.routing, "data_dropped_link", 0) for s in stacks)
    )
    drops.labels(reason="buffer").set(
        sum(getattr(s.routing, "data_dropped_buffer", 0) for s in stacks)
    )
    reg.gauge(
        "repro_net_rreq_forwarded_total", "RREQ rebroadcasts (storm size)"
    ).set(sum(getattr(s.routing, "rreq_forwarded", 0) for s in stacks))
    reg.gauge(
        "repro_net_rerr_suppressed_total",
        "RERRs suppressed by RFC 3561 rate limiting",
    ).set(sum(getattr(s.routing, "rerr_suppressed", 0) for s in stacks))
    reg.gauge(
        "repro_net_discoveries_failed_total", "route discoveries given up"
    ).set(sum(getattr(s.routing, "discoveries_failed", 0) for s in stacks))

    # --- mac layer ------------------------------------------------------ #
    mac_tx = reg.gauge(
        "repro_mac_tx_total", "MAC frame transmissions by kind"
    )
    for kind in ("data", "ack", "rts", "cts"):
        mac_tx.labels(kind=kind).set(
            sum(getattr(s.mac, f"{kind}_tx", 0) for s in stacks)
        )
    reg.gauge("repro_mac_retries_total", "MAC retransmissions").set(
        sum(getattr(s.mac, "retries_total", 0) for s in stacks)
    )
    mac_drops = reg.gauge("repro_mac_drops_total", "MAC drops by reason")
    mac_drops.labels(reason="retry").set(
        sum(getattr(s.mac, "drops_retry", 0) for s in stacks)
    )
    mac_drops.labels(reason="queue").set(
        sum(
            q.dropped
            for s in stacks
            if (q := getattr(s.mac, "queue", None)) is not None
        )
    )
    busy = reg.histogram(
        "repro_mac_busy_ratio",
        "per-node channel busy ratio at snapshot",
        buckets=BUSY_BUCKETS,
    )
    busy.reset()
    for s in stacks:
        ratio = getattr(s.mac, "channel_busy_ratio", None)
        if ratio is not None:
            busy.observe(ratio())

    # --- phy layer ------------------------------------------------------ #
    if net.channel is not None:
        frames = reg.gauge(
            "repro_phy_frames_total", "radio frame outcomes by kind"
        )
        radios = net.channel.radios()
        for kind in ("sent", "received", "corrupted", "captured"):
            frames.labels(kind=kind).set(
                sum(getattr(r, f"frames_{kind}", 0) for r in radios)
            )

    # --- flows (application) -------------------------------------------- #
    collector = net.collector
    reg.gauge("repro_flows_sent_total", "in-window originated packets").set(
        collector.total_sent
    )
    reg.gauge("repro_flows_received_total", "in-window delivered packets").set(
        collector.total_received
    )
    reg.gauge("repro_flows_pdr", "aggregate packet delivery ratio").set(
        collector.overall_pdr()
    )
    delay = reg.histogram(
        "repro_flows_delay_seconds",
        "end-to-end delay of in-window deliveries",
        buckets=DELAY_BUCKETS,
    )
    delay.reset()
    for record in collector.flows.values():
        for d in record.delays:
            delay.observe(d)
