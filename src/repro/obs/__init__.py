"""Unified observability layer: trace sinks, metrics, and profiling.

The :mod:`repro.obs` package is the production-style telemetry backbone
the NLR evaluation runs on:

* :mod:`~repro.obs.schema` — the versioned JSONL trace schema shared by
  the writer (:class:`JsonlTraceSink`) and every reader (``repro-trace``,
  the CI validator, tests).
* :mod:`~repro.obs.sinks` — streaming :class:`TraceSink` implementations:
  :class:`JsonlTraceSink` (durable, gzip-capable, bounded memory) and
  :class:`RingSink` ("last N events before failure" forensics), pluggable
  into :class:`~repro.sim.trace.Tracer` without changing its
  disabled-path cost.
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments with
  labels; :meth:`MetricsRegistry.metrics_json` is the canonical snapshot
  that travels with every :class:`~repro.experiments.runner.ScenarioResult`.
* :mod:`~repro.obs.profiler` — opt-in wall-time attribution for the
  engine's event loop, keyed by layer/callback.
* :mod:`~repro.obs.spec` — ``ScenarioConfig.trace_spec`` parsing and the
  network wiring that attaches sinks/registry/profiler to a run.
* :mod:`~repro.obs.trace_cli` — the ``repro-trace`` analysis CLI.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import EngineProfiler
from repro.obs.schema import (
    TRACE_SCHEMA_VERSION,
    record_to_dict,
    trace_header,
    validate_trace_line,
)
from repro.obs.sinks import CompositeSink, JsonlTraceSink, RingSink, TraceSink
from repro.obs.spec import TraceSpec, attach_observability, finalize_observability

__all__ = [
    "CompositeSink",
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "MetricsRegistry",
    "RingSink",
    "TRACE_SCHEMA_VERSION",
    "TraceSink",
    "TraceSpec",
    "attach_observability",
    "finalize_observability",
    "record_to_dict",
    "trace_header",
    "validate_trace_line",
]
