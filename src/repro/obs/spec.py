"""``ScenarioConfig.trace_spec`` parsing and per-run observability wiring.

A *trace spec* is a small JSON-able dict riding inside the scenario
config — so it content-hashes into exec campaign cells like any other
parameter and travels to worker processes for free:

.. code-block:: python

    ScenarioConfig(
        ...,
        trace_spec={
            "path": "{protocol}-s{seed}/trace.jsonl.gz",  # streaming JSONL
            "categories": ["net", "app"],                  # optional filter
            "ring": 5000,                                  # last-N forensics
        },
        profile=True,                                      # engine profiler
    )

Recognised keys (all optional; an empty dict just enables tracing):

* ``path`` — JSONL artifact; ``.gz`` enables gzip.  Relative paths land
  under :func:`artifact_root` (``results/obs/`` by default, override with
  ``REPRO_OBS_DIR``).  Placeholders ``{protocol}``, ``{seed}``, and
  ``{task_id}`` (the exec cell's content hash) are expanded, so a
  ``--workers N`` campaign writes one artifact tree per cell with zero
  coordination.
* ``categories`` — record only these trace categories.
* ``ring`` — capacity of an in-memory :class:`~repro.obs.sinks.RingSink`.
* ``retain`` — keep records in the tracer's in-memory list too (default:
  only when no streaming path is given, matching ``trace=True`` habits).
* ``max_records`` — in-memory retention bound (default 1M).
* ``buffer_lines`` — sink write-buffer size.

:func:`attach_observability` applies a parsed spec to a freshly built
network (sinks, tracer settings, profiler, metric namespace);
:func:`finalize_observability` flushes and closes artifacts after a run
and writes the ``metrics.json`` / ``profile.json`` companions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.profiler import EngineProfiler
from repro.obs.sinks import CompositeSink, JsonlTraceSink, RingSink
from repro.obs.wiring import register_network_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario import Network, ScenarioConfig

__all__ = [
    "TraceSpec",
    "artifact_root",
    "attach_observability",
    "finalize_observability",
]

_ALLOWED_KEYS = {
    "path", "categories", "ring", "retain", "max_records", "buffer_lines",
}


def artifact_root() -> Path:
    """Root directory for relative trace artifacts.

    Defaults to ``<repo>/results/obs``; override with ``REPRO_OBS_DIR``
    (campaign tooling and tests point this at scratch space).
    """
    env = os.environ.get("REPRO_OBS_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / "obs"


@dataclass(slots=True)
class TraceSpec:
    """Validated form of the ``trace_spec`` dict (see module docstring)."""

    path: str | None = None
    categories: tuple[str, ...] | None = None
    ring: int | None = None
    retain: bool | None = None
    max_records: int = 1_000_000
    buffer_lines: int = 512

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "TraceSpec":
        """Parse and validate; unknown keys fail loudly (config hygiene)."""
        if not isinstance(spec, dict):
            raise ValueError(
                f"trace_spec must be a dict, got {type(spec).__name__}"
            )
        unknown = set(spec) - _ALLOWED_KEYS
        if unknown:
            raise ValueError(
                f"unknown trace_spec keys {sorted(unknown)}; "
                f"allowed: {sorted(_ALLOWED_KEYS)}"
            )
        categories = spec.get("categories")
        if categories is not None:
            if not categories or not all(isinstance(c, str) for c in categories):
                raise ValueError(
                    "trace_spec categories must be a non-empty list of strings"
                )
            categories = tuple(categories)
        ring = spec.get("ring")
        if ring is not None and (not isinstance(ring, int) or ring < 1):
            raise ValueError(f"trace_spec ring must be a positive int, got {ring!r}")
        max_records = spec.get("max_records", 1_000_000)
        if not isinstance(max_records, int) or max_records < 0:
            raise ValueError(
                f"trace_spec max_records must be a non-negative int, "
                f"got {max_records!r}"
            )
        return cls(
            path=spec.get("path"),
            categories=categories,
            ring=ring,
            retain=spec.get("retain"),
            max_records=max_records,
            buffer_lines=int(spec.get("buffer_lines", 512)),
        )

    def resolve_path(self, config: "ScenarioConfig") -> Path | None:
        """Expand placeholders and anchor relative paths under the root."""
        if self.path is None:
            return None
        text = self.path
        if "{task_id}" in text:
            # Late import: the cell hash lives above this layer.
            from repro.exec.task import task_id_for

            text = text.replace("{task_id}", task_id_for(config))
        text = text.replace("{protocol}", config.protocol)
        text = text.replace("{seed}", str(config.seed))
        path = Path(text)
        if not path.is_absolute():
            path = artifact_root() / path
        return path


def _header_meta(config: "ScenarioConfig") -> dict[str, Any]:
    """Run metadata for the trace header: enough to re-derive the run's
    headline counters (RREQ storm size, PDR window) from the artifact."""
    return {
        "protocol": config.protocol,
        "seed": config.seed,
        "nodes": config.node_count,
        "sim_time_s": config.sim_time_s,
        "warmup_s": config.warmup_s,
        "n_flows": config.n_flows,
    }


def attach_observability(net: "Network") -> None:
    """Wire sinks, profiler, and the metric namespace into ``net``.

    Called by :func:`~repro.experiments.scenario.build_network` once the
    stacks exist.  Reconfigures the shared tracer in place (every layer
    already holds a reference to it).
    """
    config = net.config
    register_network_metrics(net)

    if config.trace_spec is not None:
        spec = TraceSpec.from_dict(config.trace_spec)
        tracer = net.tracer
        tracer.enabled = True
        if spec.categories is not None:
            tracer._categories = set(spec.categories)
        tracer._max = spec.max_records

        sinks = []
        path = spec.resolve_path(config)
        if path is not None:
            net.trace_sink = JsonlTraceSink(
                path, meta=_header_meta(config), buffer_lines=spec.buffer_lines
            )
            sinks.append(net.trace_sink)
        if spec.ring is not None:
            net.trace_ring = RingSink(spec.ring)
            sinks.append(net.trace_ring)
        if len(sinks) == 1:
            tracer.set_sink(sinks[0])
        elif sinks:
            tracer.set_sink(CompositeSink(*sinks))
        # Streaming runs default to bounded memory: retention off when a
        # durable sink exists, on otherwise (so filter()/tests keep working).
        retain = spec.retain
        if retain is None:
            retain = net.trace_sink is None
        tracer._retain = retain

    if config.profile:
        net.profiler = EngineProfiler()
        net.sim.set_profiler(net.profiler)


def finalize_observability(
    net: "Network", metrics: dict[str, float] | None = None
) -> dict[str, Path]:
    """Close trace artifacts and write their companions; returns paths.

    Writes, next to a streaming trace (when one was configured):

    * ``*.metrics.json`` — the canonical metrics snapshot (sorted keys,
      byte-identical across serial/parallel execution);
    * ``*.profile.json`` / ``*.profile.txt`` — profiler attribution,
      when profiling was enabled.

    Safe to call more than once; later calls are no-ops for the sink.
    """
    artifacts: dict[str, Path] = {}
    sink = net.trace_sink
    if sink is not None and not sink._closed:
        sink.dropped = net.tracer.dropped
        sink.close()
        artifacts["trace"] = sink.path
        stem = sink.path.name
        for suffix in (".gz", ".jsonl", ".json"):
            if stem.endswith(suffix):
                stem = stem[: -len(suffix)]
        if metrics is None:
            metrics = net.metrics.metrics_json()
        metrics_path = sink.path.with_name(f"{stem}.metrics.json")
        metrics_path.write_text(
            json.dumps(metrics, sort_keys=True, indent=1) + "\n"
        )
        artifacts["metrics"] = metrics_path
        if net.profiler is not None:
            profile_path = sink.path.with_name(f"{stem}.profile.json")
            profile_path.write_text(
                json.dumps(net.profiler.as_dict(), indent=1) + "\n"
            )
            report_path = sink.path.with_name(f"{stem}.profile.txt")
            report_path.write_text(net.profiler.report() + "\n")
            artifacts["profile"] = profile_path
            artifacts["profile_report"] = report_path
    return artifacts
