"""The versioned JSONL trace schema.

A trace artifact is a sequence of JSON objects, one per line:

* line 1 is a **header**: ``{"schema": N, "kind": "header", ...}`` carrying
  run metadata (protocol, seed, node count, measurement window) so an
  artifact is self-describing — ``repro-trace summary`` reproduces a run's
  counters from the file alone;
* every following line is a **record**: ``{"t": ..., "cat": ..., "node":
  ..., "ev": ..., ...details}`` — one :class:`~repro.sim.trace.TraceRecord`;
* the writer may append a **footer**: ``{"kind": "footer", ...}`` with
  recorded/dropped totals, written on close.

Writer (:class:`~repro.obs.sinks.JsonlTraceSink`) and readers
(``repro-trace``, the CI validator) share this module, so the schema can
only evolve in one place.  Bump :data:`TRACE_SCHEMA_VERSION` on any
incompatible layout change; readers reject versions they don't know.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import TraceRecord

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "record_to_dict",
    "trace_header",
    "trace_footer",
    "validate_trace_line",
]

#: Current trace artifact layout version.
TRACE_SCHEMA_VERSION = 1

#: Keys every record line carries (details ride alongside them).
RECORD_KEYS = ("t", "cat", "node", "ev")

#: Keys reserved for the envelope; detail fields may not shadow them.
RESERVED_KEYS = frozenset(RECORD_KEYS) | {"schema", "kind"}


def record_to_dict(record: "TraceRecord") -> dict[str, Any]:
    """Flatten one trace record into its JSON line layout.

    Detail fields are inlined next to the envelope keys; a detail that
    collides with a reserved key is prefixed with ``x_`` rather than
    silently overwriting the envelope.
    """
    out: dict[str, Any] = {
        "t": record.time,
        "cat": record.category,
        "node": record.node,
        "ev": record.event,
    }
    for key, value in record.details.items():
        out[f"x_{key}" if key in RESERVED_KEYS else key] = value
    return out


def trace_header(meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """The artifact's first line: schema version plus run metadata."""
    out: dict[str, Any] = {"schema": TRACE_SCHEMA_VERSION, "kind": "header"}
    if meta:
        out.update({k: v for k, v in meta.items() if k not in ("schema", "kind")})
    return out


def trace_footer(
    recorded: int, dropped: int, by_category: dict[str, int]
) -> dict[str, Any]:
    """The artifact's closing line: what the sink actually wrote."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "kind": "footer",
        "recorded": recorded,
        "dropped": dropped,
        "by_category": dict(sorted(by_category.items())),
    }


def validate_trace_line(obj: Any, lineno: int | None = None) -> list[str]:
    """Schema-validate one parsed JSONL line; returns error strings.

    An empty list means the line is valid.  Used by ``repro-trace
    validate`` and the CI artifact check.
    """
    where = f"line {lineno}: " if lineno is not None else ""
    if not isinstance(obj, dict):
        return [f"{where}expected a JSON object, got {type(obj).__name__}"]
    kind = obj.get("kind")
    if kind in ("header", "footer"):
        errors = []
        if obj.get("schema") != TRACE_SCHEMA_VERSION:
            errors.append(
                f"{where}{kind} schema {obj.get('schema')!r} != "
                f"{TRACE_SCHEMA_VERSION}"
            )
        if kind == "footer":
            for key in ("recorded", "dropped"):
                if not isinstance(obj.get(key), int):
                    errors.append(f"{where}footer {key!r} must be an int")
        return errors

    errors = []
    for key in RECORD_KEYS:
        if key not in obj:
            errors.append(f"{where}record missing {key!r}")
    t = obj.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or (
        isinstance(t, float) and not math.isfinite(t)
    ):
        errors.append(f"{where}'t' must be a finite number, got {t!r}")
    if not isinstance(obj.get("cat"), str):
        errors.append(f"{where}'cat' must be a string")
    node = obj.get("node")
    if not isinstance(node, int) or isinstance(node, bool):
        errors.append(f"{where}'node' must be an int")
    if not isinstance(obj.get("ev"), str):
        errors.append(f"{where}'ev' must be a string")
    return errors
