"""Metrics registry: Counter / Gauge / Histogram instruments with labels.

One :class:`MetricsRegistry` per network gives every layer a shared,
queryable namespace (Prometheus-style ``layer_name_unit`` names with
``{label="value"}`` children) instead of counters scattered across
protocol instances.  Two usage patterns coexist:

* **direct instruments** — hot paths hold a :class:`Counter` /
  :class:`Histogram` child and call ``inc()`` / ``observe()``;
* **collect hooks** — :meth:`MetricsRegistry.on_collect` registers a
  callback that pulls existing per-object counters (routing ``control_tx``,
  MAC queue drops, busy ratios) into gauges at snapshot time, so legacy
  counters join the namespace without touching their hot paths.

:meth:`MetricsRegistry.metrics_json` is the canonical snapshot: a flat,
sorted ``{series_name: value}`` mapping with histograms expanded into
``_bucket`` / ``_sum`` / ``_count`` series.  It is pure simulation state
(no wall-clock), so the snapshot of a run is byte-identical no matter
which process executed it — campaign cells serialise it alongside
results.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-ish scale, but unitless).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, key: _LabelKey, suffix: str = "") -> str:
    if not key:
        return name + suffix
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{suffix}{{{inner}}}"


class _Instrument:
    """Common child-management for labelled instrument families."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._children: dict[_LabelKey, "_Instrument"] = {}

    def labels(self, **labels: Any) -> "_Instrument":
        """The child instrument for this label set (created on demand)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def series(self) -> Iterator[tuple[str, float]]:
        """All ``(series_name, value)`` pairs; label children after bare."""
        if not self._children or self._touched():
            yield from self._series(())
        for key in sorted(self._children):
            yield from self._children[key]._series(key)

    def _touched(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def _make_child(self) -> "_Instrument":  # pragma: no cover - interface
        raise NotImplementedError

    def _series(
        self, key: _LabelKey
    ) -> Iterator[tuple[str, float]]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount

    def _touched(self) -> bool:
        return self.value != 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name)

    def _series(self, key: _LabelKey) -> Iterator[tuple[str, float]]:
        yield _series_name(self.name, key), self.value


class Gauge(_Instrument):
    """A value that can go anywhere; optionally callback-backed."""

    def __init__(
        self, name: str, help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, help)
        self.fn = fn
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _touched(self) -> bool:
        return self.fn is not None or self.value != 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name)

    def _series(self, key: _LabelKey) -> Iterator[tuple[str, float]]:
        value = self.fn() if self.fn is not None else self.value
        yield _series_name(self.name, key), float(value)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus layout).

    ``observe(v)`` is O(log buckets).  Serialises as ``_bucket{le=...}``
    counts (cumulative), ``_sum``, and ``_count`` series.
    """

    def __init__(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be sorted, unique, and non-empty")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if math.isnan(value):
            return
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def reset(self) -> None:
        """Zero the histogram (used by idempotent collect hooks that
        rebuild the distribution from source state at every snapshot)."""
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def _touched(self) -> bool:
        return self.count > 0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, buckets=self.buckets)

    def _series(self, key: _LabelKey) -> Iterator[tuple[str, float]]:
        cumulative = 0
        for bound, n in zip(self.buckets, self.counts):
            cumulative += n
            le_key = key + (("le", f"{bound:g}"),)
            yield _series_name(self.name, le_key, "_bucket"), float(cumulative)
        yield (
            _series_name(self.name, key + (("le", "+Inf"),), "_bucket"),
            float(self.count),
        )
        yield _series_name(self.name, key, "_sum"), self.sum
        yield _series_name(self.name, key, "_count"), float(self.count)


class MetricsRegistry:
    """Named instruments plus snapshot-time collect hooks."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._hooks: list[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create the counter ``name``."""
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(
        self, name: str, help: str = "",
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        """Get-or-create the gauge ``name`` (optionally callback-backed)."""
        gauge = self._get_or_create(name, lambda: Gauge(name, help, fn), Gauge)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get-or-create the histogram ``name``."""
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), Histogram
        )

    def _get_or_create(self, name: str, make: Callable, cls: type) -> Any:
        inst = self._instruments.get(name)
        if inst is None:
            inst = make()
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def on_collect(self, hook: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``hook(registry)`` before every snapshot (pull-style wiring)."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def collect(self) -> None:
        """Run the pull hooks (normally done by :meth:`metrics_json`)."""
        for hook in self._hooks:
            hook(self)

    def metrics_json(self) -> dict[str, float]:
        """Canonical flat snapshot: sorted ``{series_name: value}``.

        Deterministic for a deterministic simulation — contains no
        wall-clock quantities, so serial and parallel executions of the
        same cell produce byte-identical snapshots.
        """
        self.collect()
        out: dict[str, float] = {}
        for name in sorted(self._instruments):
            for series, value in self._instruments[name].series():
                out[series] = value
        return out

    def render(self) -> str:
        """Human-readable one-line-per-series dump (debugging aid)."""
        return "\n".join(
            f"{series} {value:g}" for series, value in self.metrics_json().items()
        )
