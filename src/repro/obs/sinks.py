"""Streaming trace sinks: durable JSONL and in-memory ring forensics.

A sink is any callable accepting one :class:`~repro.sim.trace.TraceRecord`
— exactly the ``sink=`` contract :class:`~repro.sim.trace.Tracer` already
exposes — plus an optional ``close()``.  Sinks stream: memory stays
bounded no matter how many events a chaos run emits, which is what lets
million-event discovery storms be captured whole instead of truncated at
the tracer's in-memory retention bound.
"""

from __future__ import annotations

import gzip
import io
import json
from collections import deque
from pathlib import Path
from typing import Any, Iterator

from repro.obs.schema import record_to_dict, trace_footer, trace_header
from repro.sim.trace import TraceRecord

__all__ = ["TraceSink", "JsonlTraceSink", "RingSink", "CompositeSink"]


class TraceSink:
    """Base class: a callable record consumer with lifecycle hooks."""

    def __call__(self, record: TraceRecord) -> None:
        self.emit(record)

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""


class JsonlTraceSink(TraceSink):
    """Streams records to a JSONL file, one JSON object per line.

    Parameters
    ----------
    path:
        Output file.  A ``.gz`` suffix enables gzip compression (override
        with ``compress=``).  Parent directories are created.
    meta:
        Run metadata written into the schema-versioned header line.
    compress:
        Force gzip on/off; default inferred from the path suffix.
    buffer_lines:
        Lines held before hitting the OS — bounds both syscall rate and
        memory.  The buffer flushes on overflow and on :meth:`close`.

    The sink counts what it writes (``recorded``, per-category) and
    appends a footer line with the totals on close, so a reader can
    detect a truncated artifact (missing footer) and tests can assert on
    drop accounting end-to-end.
    """

    def __init__(
        self,
        path: str | Path,
        meta: dict[str, Any] | None = None,
        compress: bool | None = None,
        buffer_lines: int = 512,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if compress is None:
            compress = self.path.suffix == ".gz"
        self.compressed = compress
        self.recorded = 0
        self.by_category: dict[str, int] = {}
        self.dropped = 0  # set by the tracer on close (retention drops)
        self._buffer: list[str] = []
        self._buffer_max = max(1, buffer_lines)
        self._closed = False
        if compress:
            self._fh: io.TextIOBase = io.TextIOWrapper(
                gzip.open(self.path, "wb"), encoding="utf-8"
            )
        else:
            self._fh = self.path.open("w", encoding="utf-8")
        self._write_line(trace_header(meta))

    # ------------------------------------------------------------------ #
    def emit(self, record: TraceRecord) -> None:
        if self._closed:
            return
        self.recorded += 1
        cat = record.category
        self.by_category[cat] = self.by_category.get(cat, 0) + 1
        self._buffer.append(json.dumps(record_to_dict(record)))
        if len(self._buffer) >= self._buffer_max:
            self._drain()

    def warn(self, message: str) -> None:
        """Out-of-band warning (e.g. tracer retention overflow)."""
        if not self._closed:
            self._write_line({"kind": "warning", "message": message})

    def flush(self) -> None:
        """Push buffered lines to the OS."""
        if not self._closed:
            self._drain()
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._write_line(
            trace_footer(self.recorded, self.dropped, self.by_category)
        )
        self._drain()
        self._closed = True
        self._fh.close()

    # ------------------------------------------------------------------ #
    def _write_line(self, obj: dict[str, Any]) -> None:
        self._buffer.append(json.dumps(obj))
        if len(self._buffer) >= self._buffer_max:
            self._drain()

    def _drain(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JsonlTraceSink({str(self.path)!r}, recorded={self.recorded}, "
            f"gzip={self.compressed})"
        )


class RingSink(TraceSink):
    """Keeps the last ``capacity`` records — pre-failure forensics.

    O(1) per record, strictly bounded memory.  After a crash or an
    assertion failure, :meth:`records` (or :meth:`dump`) yields the
    events that immediately preceded it, newest last.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self._ring: deque[TraceRecord] = deque(maxlen=capacity)

    def emit(self, record: TraceRecord) -> None:
        self.seen += 1
        self._ring.append(record)

    def records(self) -> list[TraceRecord]:
        """Retained records, oldest first."""
        return list(self._ring)

    def dump(self) -> str:
        """Human-readable dump of the retained window."""
        lines = [
            f"# ring: last {len(self._ring)} of {self.seen} records"
        ]
        lines.extend(str(r) for r in self._ring)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._ring)


class CompositeSink(TraceSink):
    """Fans one record stream out to several sinks (e.g. JSONL + ring)."""

    def __init__(self, *sinks: TraceSink) -> None:
        if not sinks:
            raise ValueError("need at least one sink")
        self.sinks = list(sinks)

    def emit(self, record: TraceRecord) -> None:
        for sink in self.sinks:
            sink(record)

    def warn(self, message: str) -> None:
        for sink in self.sinks:
            warn = getattr(sink, "warn", None)
            if warn is not None:
                warn(message)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
