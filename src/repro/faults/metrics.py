"""Resilience metrics: what fault injection does to delivery.

The :class:`ResilienceCollector` watches the same source/sink hooks as
:class:`~repro.metrics.flowstats.FlowStatsCollector` plus the injector's
fault notifications, and turns them into the recovery-oriented metrics
the chaos experiments plot:

* **re-convergence latency** — fault onset → first post-fault delivery
  (any measured flow); how long the network is completely dark;
* **blackout loss** — packets originated inside a fault window (onset →
  clear, overlaps merged) that were never delivered;
* **repair control overhead** — control packets transmitted between a
  fault onset and the first post-fault delivery (route-repair cost);
* **steady-state recovery time** — fault onset → first delivery followed
  by sustained service (the next inter-delivery gaps at most
  ``2.5 / rate_pps``), i.e. when the flow is *really* back, not merely
  leaking single packets through a flapping path.

Every quantity is derived in :meth:`finalize` from raw timestamped
observations, so the collector adds O(1) work per packet during the run
and the summary is a pure function of the observation log — which is what
makes the byte-identical-replay test meaningful.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.traffic.flows import FlowSpec

__all__ = ["FaultEpisode", "ResilienceCollector"]

#: A flow counts as steadily recovered once consecutive deliveries arrive
#: within this multiple of its nominal inter-packet interval.
STEADY_GAP_FACTOR = 2.5

#: Consecutive on-time gaps required to call service sustained.
STEADY_GAPS = 3


@dataclass(slots=True)
class FaultEpisode:
    """One fault onset and the network's response to it."""

    kind: str
    onset_s: float
    key: Any = None
    control_at_onset: float = math.nan
    #: Time of the first delivery (any flow) after the onset; NaN if the
    #: network never delivered again.
    first_rx_s: float = math.nan
    control_at_first_rx: float = math.nan
    #: Filled in by :meth:`ResilienceCollector.finalize`.
    recovery_s: float = math.nan

    @property
    def reconvergence_s(self) -> float:
        """Onset → first post-fault delivery (NaN if never)."""
        return self.first_rx_s - self.onset_s

    @property
    def repair_control(self) -> float:
        """Control packets spent between onset and first delivery."""
        return self.control_at_first_rx - self.control_at_onset

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "onset_s": self.onset_s,
            "reconvergence_s": self.reconvergence_s,
            "repair_control": self.repair_control,
            "recovery_s": self.recovery_s,
        }


def _merged_intervals(
    intervals: Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _in_any(t: float, intervals: list[tuple[float, float]]) -> bool:
    return any(start <= t < end for start, end in intervals)


def _nan_mean(values: list[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else math.nan


def _nan_max(values: list[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return max(finite) if finite else math.nan


class ResilienceCollector:
    """Fault-aware delivery observer.

    Parameters
    ----------
    flows:
        The scenario's :class:`~repro.traffic.flows.FlowSpec` list; the
        per-flow ``rate_pps`` defines each flow's steady-service gap
        threshold.
    control_counter:
        Zero-arg callable returning the network's cumulative control
        packet count *now*; sampled at fault onsets and at the first
        post-fault delivery to price route repair.  ``None`` disables the
        repair-overhead metric (NaN).
    """

    def __init__(
        self,
        flows: Iterable["FlowSpec"],
        control_counter: Callable[[], float] | None = None,
    ) -> None:
        self._rates = {f.flow_id: f.rate_pps for f in flows}
        self._control_counter = control_counter
        self.episodes: list[FaultEpisode] = []
        self.fault_counts: dict[str, int] = {}
        self._open_windows: dict[tuple[str, Any], float] = {}
        self._windows: list[tuple[float, float]] = []
        self._open_episodes: list[FaultEpisode] = []
        #: flow_id → packet origination times, in order.
        self._sent: dict[int, list[float]] = {}
        #: flow_id → delivery times, in order.
        self._rx: dict[int, list[float]] = {}
        #: (flow_id, seq) of every delivered packet (duplicate guard and
        #: loss attribution) mapped to its origination time.
        self._delivered: dict[tuple[int, int], float] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Observation hooks (run time)
    # ------------------------------------------------------------------ #
    def on_send(self, packet: "Packet") -> None:
        """Traffic-source hook: one originated packet."""
        if packet.flow_id < 0:
            return
        self._sent.setdefault(packet.flow_id, []).append(packet.created_at)

    def on_receive(self, packet: "Packet", now: float) -> None:
        """Sink hook: one delivered packet at sim time ``now``."""
        if packet.flow_id < 0:
            return
        dedupe = (packet.flow_id, packet.seq)
        if dedupe in self._delivered:
            return
        self._delivered[dedupe] = packet.created_at
        self._rx.setdefault(packet.flow_id, []).append(now)
        if self._open_episodes:
            still_open: list[FaultEpisode] = []
            for ep in self._open_episodes:
                if now >= ep.onset_s:
                    ep.first_rx_s = now
                    if self._control_counter is not None:
                        ep.control_at_first_rx = float(self._control_counter())
                else:  # scheduled-in-the-future onset; keep waiting
                    still_open.append(ep)
            self._open_episodes = still_open

    def on_fault(
        self, kind: str, *, time: float, onset: bool, key: Any = None
    ) -> None:
        """Injector hook: a fault fired (``onset``) or cleared."""
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if onset:
            control = (
                float(self._control_counter())
                if self._control_counter is not None
                else math.nan
            )
            ep = FaultEpisode(
                kind=kind, onset_s=time, key=key, control_at_onset=control
            )
            self.episodes.append(ep)
            self._open_episodes.append(ep)
            self._open_windows[(kind, key)] = time
        else:
            start = self._open_windows.pop((kind, key), None)
            if start is not None:
                self._windows.append((start, time))

    # ------------------------------------------------------------------ #
    # Derived metrics (end of run)
    # ------------------------------------------------------------------ #
    def _flow_recovery(self, rx: list[float], rate_pps: float, onset: float) -> float:
        """First delivery after ``onset`` with sustained service behind it."""
        threshold = STEADY_GAP_FACTOR / rate_pps
        n = len(rx)
        for i, t in enumerate(rx):
            if t < onset:
                continue
            gaps_available = min(STEADY_GAPS, n - 1 - i)
            if gaps_available < 1:
                break  # last delivery: cannot attest sustained service
            if all(rx[i + k + 1] - rx[i + k] <= threshold for k in range(gaps_available)):
                return t - onset
        return math.nan

    def finalize(self, end_s: float) -> None:
        """Close open windows at ``end_s`` and compute recovery times."""
        if self._finalized:
            return
        self._finalized = True
        for (_, _), start in list(self._open_windows.items()):
            self._windows.append((start, end_s))
        self._open_windows.clear()
        for ep in self.episodes:
            recoveries = [
                self._flow_recovery(rx, self._rates.get(fid, 1.0), ep.onset_s)
                for fid, rx in self._rx.items()
            ]
            ep.recovery_s = (
                min(v for v in recoveries if not math.isnan(v))
                if any(not math.isnan(v) for v in recoveries)
                else math.nan
            )

    def blackout_loss(self) -> int:
        """Packets originated inside fault windows and never delivered."""
        windows = _merged_intervals(self._windows)
        if not windows:
            return 0
        delivered_times: dict[int, list[float]] = {}
        for (fid, _), created in self._delivered.items():
            delivered_times.setdefault(fid, []).append(created)
        lost = 0
        for fid, sent in self._sent.items():
            got = sorted(delivered_times.get(fid, []))
            # Multiset subtraction by two-pointer sweep: sent and delivered
            # origination times, both sorted.
            j = 0
            for created in sent:
                if j < len(got) and got[j] == created:
                    j += 1
                    continue
                if _in_any(created, windows):
                    lost += 1
        return lost

    def totals(self) -> dict[str, float]:
        """Flat counters to merge into a run's ``network_totals`` dump."""
        reconv = [ep.reconvergence_s for ep in self.episodes]
        return {
            "resilience_faults": float(
                sum(self.fault_counts.values())
            ),
            "resilience_episodes": float(len(self.episodes)),
            "resilience_reconv_mean_s": _nan_mean(reconv),
            "resilience_reconv_max_s": _nan_max(reconv),
            "resilience_blackout_loss": float(self.blackout_loss()),
            "resilience_repair_control": _nan_mean(
                [ep.repair_control for ep in self.episodes]
            ),
            "resilience_recovery_mean_s": _nan_mean(
                [ep.recovery_s for ep in self.episodes]
            ),
            "resilience_unrecovered": float(
                sum(1 for ep in self.episodes if math.isnan(ep.first_rx_s))
            ),
        }

    def summary(self) -> dict[str, Any]:
        """Full structured summary (totals + per-episode detail)."""
        return {
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "episodes": [ep.as_dict() for ep in self.episodes],
            "totals": self.totals(),
        }

    def summary_json(self) -> str:
        """Canonical JSON of :meth:`summary` (replay byte-identity)."""
        return json.dumps(self.summary(), sort_keys=True)
