"""Schedules a :class:`~repro.faults.events.FaultPlan` onto a live network.

The :class:`FaultInjector` is the binding layer between declarative fault
events and the simulation: it expands each event into engine callbacks at
:meth:`start`, drives the per-layer hooks (``NodeStack.fail/recover``,
``CsmaMac.radio_off/radio_on``, ``Channel.set_link_impairment``, direct
MAC-queue noise), traces everything under category ``"fault"``, and feeds
onset/clear notifications to a
:class:`~repro.faults.metrics.ResilienceCollector`.

Invariants:

* **Faults never raise.**  Every scheduled action runs through a guard
  that records (trace + ``errors`` counter) instead of propagating, so a
  pathological fault combination degrades metrics, not the run.
* **Idempotent primitives.**  Crashing a crashed node, recovering a live
  one, or toggling the radio of a crashed node are silent no-ops — which
  is what makes overlapping events (a blackout over a flapping region)
  composable without event-ordering contracts.
* **Region blackouts resolve victims at fire time** from live channel
  positions, and recover only nodes the blackout itself took down.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.faults.events import (
    FaultPlan,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    QueueSaturate,
    RadioFlap,
    RegionBlackout,
)
from repro.mac.mac_types import BROADCAST_MAC
from repro.net.addressing import BROADCAST_ADDR
from repro.net.packet import IP_HEADER_BYTES, Packet, PacketKind
from repro.sim.errors import SimulationError
from repro.sim.process import PeriodicProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.scenario import Network
    from repro.faults.metrics import ResilienceCollector

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault plan to a built network.

    Parameters
    ----------
    net:
        A :class:`~repro.experiments.scenario.Network` built with the real
        PHY/MAC (``mac="csma"``) — the perfect MAC has no radio to fail.
    plan:
        The declarative fault plan; validated against the network here.
    collector:
        Optional resilience collector receiving onset/clear notifications.
    """

    def __init__(
        self,
        net: "Network",
        plan: FaultPlan,
        collector: "ResilienceCollector | None" = None,
    ) -> None:
        plan.validate(len(net.stacks))
        if net.channel is None:
            raise SimulationError(
                "fault injection needs the real PHY/MAC (mac='csma'); "
                "PerfectMac has no radio or channel to fail"
            )
        for stack in net.stacks:
            if not hasattr(stack.mac, "radio_off"):
                raise SimulationError(
                    f"node {stack.node_id}'s MAC does not support fault "
                    "injection (no radio_off/radio_on)"
                )
        self.net = net
        self.sim = net.sim
        self.plan = plan
        self.collector = collector
        self.tracer = net.tracer
        self.started = False
        #: Actions applied / faults that raised (must stay 0; see module
        #: docstring — tests assert on it).
        self.applied = 0
        self.errors = 0
        self._handles: list[Any] = []
        self._down: set[int] = set()
        #: Nodes whose radio the injector forced dark (flap bookkeeping).
        self._dark: set[int] = set()
        self._saturators: dict[int, PeriodicProcess] = {}
        #: Active link degrades: (a, b, loss_db) not yet restored.
        self._degrades: list[tuple[int, int, float]] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Expand the plan into scheduled engine events."""
        if self.started:
            return
        self.started = True
        for index, ev in enumerate(self.plan.sorted_events()):
            if isinstance(ev, NodeCrash):
                self._at(ev.at_s, self._crash_node, ev.node)
            elif isinstance(ev, NodeRecover):
                self._at(ev.at_s, self._recover_node, ev.node)
            elif isinstance(ev, RadioFlap):
                self._expand_flap(ev)
            elif isinstance(ev, LinkDegrade):
                self._at(ev.start_s, self._degrade_link, ev)
                self._at(ev.start_s + ev.duration_s, self._restore_link, ev)
            elif isinstance(ev, QueueSaturate):
                self._at(ev.start_s, self._start_saturation, index, ev)
                self._at(
                    ev.start_s + ev.duration_s, self._stop_saturation, index, ev
                )
            elif isinstance(ev, RegionBlackout):
                self._at(ev.start_s, self._blackout, ev)
            else:  # pragma: no cover - FaultPlan validates membership
                raise SimulationError(f"unknown fault event {ev!r}")

    def stop(self) -> None:
        """Cancel pending fault events and tear down active perturbations.

        Called at end of run; crashed nodes stay down (the run is over),
        but channel impairments and noise generators are withdrawn so the
        network object is inspectable in a clean state.
        """
        for handle in self._handles:
            if not handle.expired:
                handle.cancel()
        self._handles.clear()
        for proc in self._saturators.values():
            proc.stop()
        self._saturators.clear()
        assert self.net.channel is not None
        for a, b, loss_db in self._degrades:
            self.net.channel.clear_link_impairment(a, b, loss_db)
        self._degrades.clear()

    # ------------------------------------------------------------------ #
    # Scheduling plumbing
    # ------------------------------------------------------------------ #
    def _at(self, time_s: float, fn, *args) -> None:
        """Schedule a guarded fault action (past times clamp to now)."""
        self._handles.append(
            self.sim.schedule(
                max(time_s, self.sim.now), self._guarded, fn, *args
            )
        )

    def _guarded(self, fn, *args) -> None:
        try:
            fn(*args)
            self.applied += 1
        except Exception as exc:  # noqa: BLE001 - faults must never raise
            self.errors += 1
            self.tracer.record(
                self.sim.now, "fault", -1, "fault_error",
                action=getattr(fn, "__name__", str(fn)), error=repr(exc),
            )

    def _notify(
        self, kind: str, *, onset: bool, key: Any, node: int = -1, **detail
    ) -> None:
        self.tracer.record(
            self.sim.now, "fault", node,
            f"{kind}_{'onset' if onset else 'clear'}", key=key, **detail,
        )
        if self.collector is not None:
            self.collector.on_fault(
                kind, time=self.sim.now, onset=onset, key=key
            )

    # ------------------------------------------------------------------ #
    # Node crash / recover
    # ------------------------------------------------------------------ #
    def _crash_node(self, node: int, *, notify: bool = True) -> bool:
        if node in self._down:
            return False
        self._down.add(node)
        self._dark.discard(node)
        self.net.stacks[node].fail()
        if notify:
            self._notify("node_crash", onset=True, key=node, node=node)
        return True

    def _recover_node(self, node: int, *, notify: bool = True) -> bool:
        if node not in self._down:
            return False
        self._down.discard(node)
        self.net.stacks[node].recover()
        if notify:
            self._notify("node_crash", onset=False, key=node, node=node)
        return True

    # ------------------------------------------------------------------ #
    # Radio flapping
    # ------------------------------------------------------------------ #
    def _expand_flap(self, ev: RadioFlap) -> None:
        t = ev.start_s
        while t < ev.until_s:
            off_at = t + ev.duty_on * ev.period_s
            if off_at >= ev.until_s:
                break
            on_at = min(t + ev.period_s, ev.until_s)
            self._at(off_at, self._radio_off, ev.node)
            self._at(on_at, self._radio_on, ev.node)
            t += ev.period_s

    def _radio_off(self, node: int) -> None:
        if node in self._down or node in self._dark:
            return  # crashed (radio already off) or already dark
        self._dark.add(node)
        self.net.stacks[node].mac.radio_off()
        self._notify("radio_flap", onset=True, key=node, node=node)

    def _radio_on(self, node: int) -> None:
        if node in self._down or node not in self._dark:
            return  # crash owns the radio, or this flap's off was skipped
        self._dark.discard(node)
        self.net.stacks[node].mac.radio_on()
        self._notify("radio_flap", onset=False, key=node, node=node)

    # ------------------------------------------------------------------ #
    # Link degradation
    # ------------------------------------------------------------------ #
    def _degrade_link(self, ev: LinkDegrade) -> None:
        assert self.net.channel is not None
        self.net.channel.set_link_impairment(
            ev.node_a, ev.node_b, ev.extra_loss_db
        )
        self._degrades.append((ev.node_a, ev.node_b, ev.extra_loss_db))
        self._notify(
            "link_degrade", onset=True, key=(ev.node_a, ev.node_b),
            loss_db=ev.extra_loss_db,
        )

    def _restore_link(self, ev: LinkDegrade) -> None:
        assert self.net.channel is not None
        entry = (ev.node_a, ev.node_b, ev.extra_loss_db)
        if entry not in self._degrades:
            return
        self._degrades.remove(entry)
        self.net.channel.clear_link_impairment(
            ev.node_a, ev.node_b, ev.extra_loss_db
        )
        self._notify(
            "link_degrade", onset=False, key=(ev.node_a, ev.node_b),
        )

    # ------------------------------------------------------------------ #
    # Queue saturation
    # ------------------------------------------------------------------ #
    def _start_saturation(self, index: int, ev: QueueSaturate) -> None:
        if index in self._saturators:
            return
        proc = PeriodicProcess(
            self.sim, 1.0 / ev.rate_pps, self._saturate_tick, ev,
        )
        self._saturators[index] = proc
        proc.start()
        self._notify(
            "queue_saturate", onset=True, key=ev.node, node=ev.node,
            rate_pps=ev.rate_pps,
        )

    def _stop_saturation(self, index: int, ev: QueueSaturate) -> None:
        proc = self._saturators.pop(index, None)
        if proc is None:
            return
        proc.stop()
        self._notify("queue_saturate", onset=False, key=ev.node, node=ev.node)

    def _saturate_tick(self, ev: QueueSaturate) -> None:
        stack = self.net.stacks[ev.node]
        if ev.node in self._down or not stack.mac.radio.powered:
            return  # a dead node generates no load
        noise = Packet(
            kind=PacketKind.NOISE,
            src=ev.node,
            dst=BROADCAST_ADDR,
            ttl=1,
            payload_bytes=ev.payload_bytes,
            created_at=self.sim.now,
        )
        # Straight into the MAC queue: background load is not routing
        # traffic and must not pollute control-overhead accounting.
        stack.mac.send(noise, BROADCAST_MAC, IP_HEADER_BYTES + ev.payload_bytes)

    # ------------------------------------------------------------------ #
    # Region blackout
    # ------------------------------------------------------------------ #
    def _blackout(self, ev: RegionBlackout) -> None:
        assert self.net.channel is not None
        victims = []
        for stack in self.net.stacks:
            pos = self.net.channel.position_of(stack.node_id)
            d = math.hypot(pos[0] - ev.center_x, pos[1] - ev.center_y)
            if d <= ev.radius_m:
                victims.append(stack.node_id)
        taken_down = [v for v in victims if self._crash_node(v, notify=False)]
        self._notify(
            "region_blackout", onset=True,
            key=(ev.center_x, ev.center_y, ev.radius_m),
            victims=len(taken_down),
        )
        self._at(
            ev.start_s + ev.duration_s, self._lift_blackout, ev, taken_down
        )

    def _lift_blackout(self, ev: RegionBlackout, taken_down: list[int]) -> None:
        for node in taken_down:
            self._recover_node(node, notify=False)
        self._notify(
            "region_blackout", onset=False,
            key=(ev.center_x, ev.center_y, ev.radius_m),
        )
