"""Declarative fault injection and resilience metrics.

Compose a :class:`FaultPlan` (or expand one from a JSON-able spec via
:func:`plan_from_spec` / the stochastic generators), bind it to a built
network with :class:`FaultInjector`, and read recovery behaviour off the
:class:`ResilienceCollector`.  The scenario layer wires all three from
``ScenarioConfig(fault_spec=...)`` / ``fault_plan=...``; see
``docs/PROTOCOLS.md`` §"Fault model".
"""

from repro.faults.events import (
    FaultEvent,
    FaultPlan,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    QueueSaturate,
    RadioFlap,
    RegionBlackout,
    flapping,
    plan_from_spec,
    poisson_crashes,
)
from repro.faults.injector import FaultInjector
from repro.faults.metrics import FaultEpisode, ResilienceCollector

__all__ = [
    "FaultEvent",
    "FaultEpisode",
    "FaultInjector",
    "FaultPlan",
    "LinkDegrade",
    "NodeCrash",
    "NodeRecover",
    "QueueSaturate",
    "RadioFlap",
    "RegionBlackout",
    "ResilienceCollector",
    "flapping",
    "plan_from_spec",
    "poisson_crashes",
]
