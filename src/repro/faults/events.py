"""Declarative fault events, plans, and stochastic plan generators.

A :class:`FaultPlan` is a list of typed fault events describing *what goes
wrong and when*, independent of any particular network instance — the
:class:`~repro.faults.injector.FaultInjector` binds a plan to a built
network and schedules it on the sim engine.  Keeping the plan declarative
makes chaos campaigns first-class experiment cells: a plan round-trips
through JSON (``to_dict``/``from_dict``), travels inside
:class:`~repro.experiments.scenario.ScenarioConfig`, and therefore hashes
into the parallel executor's content-addressed task ids like any other
parameter.

Event types and the layer each one perturbs:

==================  ====================================================
:class:`NodeCrash`   whole stack down (routing silenced, MAC flushed,
                     radio off) until a matching :class:`NodeRecover`
:class:`RadioFlap`   duty-cycled PHY outages — the radio powers off/on
                     periodically while MAC state and queue survive
:class:`LinkDegrade` extra path loss on one node pair via the channel's
                     link-impairment hook (PHY perturbation)
:class:`QueueSaturate` background broadcast noise injected straight into
                     one node's MAC queue (link-layer load burst)
:class:`RegionBlackout` every node inside a disc crashes for a duration
                     (correlated spatial failure)
==================  ====================================================

Stochastic generators (:func:`poisson_crashes`, :func:`flapping`) expand a
few parameters into concrete plans; they draw from a caller-provided RNG
so a scenario's :class:`~repro.sim.rng.RandomStreams` makes the expansion
— and hence the whole chaos run — seed-deterministic.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Iterable, Sequence

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "LinkDegrade",
    "NodeCrash",
    "NodeRecover",
    "QueueSaturate",
    "RadioFlap",
    "RegionBlackout",
    "flapping",
    "plan_from_spec",
    "poisson_crashes",
]


@dataclass(slots=True, frozen=True)
class NodeCrash:
    """Node ``node`` fails completely at ``at_s`` (stack down, radio off)."""

    node: int
    at_s: float

    KIND: ClassVar[str] = "node_crash"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node id must be ≥ 0, got {self.node}")
        if self.at_s < 0:
            raise ValueError(f"event time must be ≥ 0, got {self.at_s!r}")


@dataclass(slots=True, frozen=True)
class NodeRecover:
    """Node ``node`` comes back up at ``at_s`` (no-op unless crashed)."""

    node: int
    at_s: float

    KIND: ClassVar[str] = "node_recover"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node id must be ≥ 0, got {self.node}")
        if self.at_s < 0:
            raise ValueError(f"event time must be ≥ 0, got {self.at_s!r}")


@dataclass(slots=True, frozen=True)
class RadioFlap:
    """Duty-cycled radio outages on ``node``.

    Each period starting at ``start_s`` keeps the radio ON for
    ``duty_on × period_s`` then OFF for the rest; toggling stops at
    ``until_s`` (the radio is always restored at the end).  MAC state and
    the interface queue survive — queued frames burn through the retry
    path while the radio is dark, surfacing link failures to routing.
    """

    node: int
    start_s: float
    period_s: float
    duty_on: float
    until_s: float

    KIND: ClassVar[str] = "radio_flap"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node id must be ≥ 0, got {self.node}")
        if self.start_s < 0:
            raise ValueError(f"start must be ≥ 0, got {self.start_s!r}")
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s!r}")
        if not 0.0 < self.duty_on < 1.0:
            raise ValueError(
                f"duty_on must be in (0, 1), got {self.duty_on!r}"
            )
        if self.until_s <= self.start_s:
            raise ValueError("until_s must be after start_s")
        if (self.until_s - self.start_s) / self.period_s > 100_000:
            raise ValueError("flap would schedule > 100k toggles; check period")


@dataclass(slots=True, frozen=True)
class LinkDegrade:
    """Extra path loss on the ``node_a`` ↔ ``node_b`` link for a window.

    Applied symmetrically through the channel's per-pair impairment hook;
    ``extra_loss_db`` of 40+ dB effectively severs the link without
    touching either radio.
    """

    node_a: int
    node_b: int
    start_s: float
    duration_s: float
    extra_loss_db: float

    KIND: ClassVar[str] = "link_degrade"

    def __post_init__(self) -> None:
        if self.node_a < 0 or self.node_b < 0:
            raise ValueError("node ids must be ≥ 0")
        if self.node_a == self.node_b:
            raise ValueError(f"link needs two distinct nodes, got {self.node_a}")
        if self.start_s < 0:
            raise ValueError(f"start must be ≥ 0, got {self.start_s!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s!r}")
        if self.extra_loss_db <= 0:
            raise ValueError(
                f"extra loss must be positive dB, got {self.extra_loss_db!r}"
            )


@dataclass(slots=True, frozen=True)
class QueueSaturate:
    """Background broadcast noise pushed into ``node``'s MAC queue.

    Models a misbehaving/greedy application: ``rate_pps`` broadcast frames
    of ``payload_bytes`` each for ``duration_s``, entering the interface
    queue directly (no routing, no control-byte accounting) so the queue
    fills and the neighbourhood's airtime is consumed.
    """

    node: int
    start_s: float
    duration_s: float
    rate_pps: float = 200.0
    payload_bytes: int = 512

    KIND: ClassVar[str] = "queue_saturate"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node id must be ≥ 0, got {self.node}")
        if self.start_s < 0:
            raise ValueError(f"start must be ≥ 0, got {self.start_s!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s!r}")
        if self.rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_pps!r}")
        if self.payload_bytes <= 0:
            raise ValueError(f"payload must be positive, got {self.payload_bytes}")


@dataclass(slots=True, frozen=True)
class RegionBlackout:
    """Every node within ``radius_m`` of the centre crashes for a window.

    Victims are resolved from node positions *at the start time* (so
    mobility matters), and only nodes this event actually took down are
    recovered when it lifts — independently crashed nodes keep their own
    schedule.
    """

    center_x: float
    center_y: float
    radius_m: float
    start_s: float
    duration_s: float

    KIND: ClassVar[str] = "region_blackout"

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValueError(f"radius must be positive, got {self.radius_m!r}")
        if self.start_s < 0:
            raise ValueError(f"start must be ≥ 0, got {self.start_s!r}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s!r}")


FaultEvent = (
    NodeCrash | NodeRecover | RadioFlap | LinkDegrade | QueueSaturate
    | RegionBlackout
)

_EVENT_TYPES: dict[str, type] = {
    cls.KIND: cls
    for cls in (
        NodeCrash, NodeRecover, RadioFlap, LinkDegrade, QueueSaturate,
        RegionBlackout,
    )
}


def _start_time(event: FaultEvent) -> float:
    return event.at_s if isinstance(event, (NodeCrash, NodeRecover)) else event.start_s


def _nodes_of(event: FaultEvent) -> tuple[int, ...]:
    if isinstance(event, (NodeCrash, NodeRecover, RadioFlap, QueueSaturate)):
        return (event.node,)
    if isinstance(event, LinkDegrade):
        return (event.node_a, event.node_b)
    return ()  # RegionBlackout resolves victims spatially at apply time


@dataclass(slots=True)
class FaultPlan:
    """An ordered collection of fault events.

    Events are kept in insertion order; :meth:`sorted_events` yields them
    by start time (stable), which is the order the injector schedules.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for ev in self.events:
            if type(ev) not in _EVENT_TYPES.values():
                raise ValueError(f"not a fault event: {ev!r}")

    def add(self, *events: FaultEvent) -> "FaultPlan":
        """Append events; returns self for chaining."""
        for ev in events:
            if type(ev) not in _EVENT_TYPES.values():
                raise ValueError(f"not a fault event: {ev!r}")
            self.events.append(ev)
        return self

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """New plan holding this plan's events followed by ``other``'s."""
        return FaultPlan(list(self.events) + list(other.events))

    def sorted_events(self) -> list[FaultEvent]:
        """Events by start time (stable on ties)."""
        return sorted(self.events, key=_start_time)

    def kinds(self) -> set[str]:
        """Distinct event kinds present in the plan."""
        return {ev.KIND for ev in self.events}

    def validate(self, node_count: int) -> None:
        """Check every referenced node id exists in an n-node network."""
        for ev in self.events:
            for node in _nodes_of(ev):
                if node >= node_count:
                    raise ValueError(
                        f"{ev.KIND} references node {node} but the network "
                        f"has only {node_count} nodes"
                    )

    # ------------------------------------------------------------------ #
    # JSON round-trip (kind-tagged; survives config serialisation)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; each event carries its ``kind`` tag."""
        return {
            "events": [
                {
                    "kind": ev.KIND,
                    **{
                        f.name: getattr(ev, f.name)
                        for f in dataclasses.fields(ev)
                    },
                }
                for ev in self.events
            ]
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan written by :meth:`to_dict`; unknown kinds and
        unknown keys are rejected loudly (stale specs fail fast)."""
        events: list[FaultEvent] = []
        for entry in data.get("events", []):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            ev_cls = _EVENT_TYPES.get(kind)
            if ev_cls is None:
                raise ValueError(
                    f"unknown fault event kind {kind!r}; choose from "
                    f"{sorted(_EVENT_TYPES)}"
                )
            field_names = {f.name for f in dataclasses.fields(ev_cls)}
            unknown = set(entry) - field_names
            if unknown:
                raise ValueError(
                    f"unknown {ev_cls.__name__} keys: {sorted(unknown)}"
                )
            events.append(ev_cls(**entry))
        return cls(events)


# ---------------------------------------------------------------------- #
# Stochastic generators
# ---------------------------------------------------------------------- #
def poisson_crashes(
    rate_per_s: float,
    mttr_s: float,
    *,
    nodes: Iterable[int],
    rng: Any,
    start_s: float = 0.0,
    stop_s: float,
) -> FaultPlan:
    """Poisson crash process over ``nodes`` with exponential repair.

    Crash arrivals form a Poisson process of network-wide intensity
    ``rate_per_s`` on ``[start_s, stop_s)``; each crash picks a uniform
    victim among the currently-up nodes' pool and schedules recovery after
    an Exp(``mttr_s``) outage.  A victim drawn while still down is skipped
    (the arrival is consumed), keeping the expansion deterministic for a
    given ``rng`` state.
    """
    if rate_per_s <= 0:
        raise ValueError(f"crash rate must be positive, got {rate_per_s!r}")
    if mttr_s <= 0:
        raise ValueError(f"mttr must be positive, got {mttr_s!r}")
    if stop_s <= start_s:
        raise ValueError("stop_s must be after start_s")
    pool = list(nodes)
    if not pool:
        raise ValueError("need at least one crashable node")
    events: list[FaultEvent] = []
    down_until: dict[int, float] = {}
    t = start_s
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= stop_s:
            break
        victim = int(pool[int(rng.integers(0, len(pool)))])
        if down_until.get(victim, -math.inf) > t:
            continue  # victim still down; the arrival fizzles
        recover_at = t + float(rng.exponential(mttr_s))
        down_until[victim] = recover_at
        events.append(NodeCrash(node=victim, at_s=t))
        events.append(NodeRecover(node=victim, at_s=recover_at))
    return FaultPlan(events)


def flapping(
    nodes: Iterable[int],
    period_s: float,
    duty_on: float,
    *,
    start_s: float = 0.0,
    stop_s: float,
) -> FaultPlan:
    """One :class:`RadioFlap` per node, phase-staggered across the period.

    Staggering (node *k* starts ``k·period/n`` late) avoids every radio
    dying at the same instant, which would be a synchronized blackout
    rather than flapping.
    """
    pool = list(nodes)
    if not pool:
        raise ValueError("need at least one flapping node")
    events: list[FaultEvent] = []
    for k, node in enumerate(pool):
        phase = (k * period_s) / len(pool)
        if start_s + phase >= stop_s:
            continue
        events.append(
            RadioFlap(
                node=int(node),
                start_s=start_s + phase,
                period_s=period_s,
                duty_on=duty_on,
                until_s=stop_s,
            )
        )
    return FaultPlan(events)


# ---------------------------------------------------------------------- #
# Declarative spec → plan expansion
# ---------------------------------------------------------------------- #
def _spec_keys(spec: dict[str, Any], required: set[str], optional: set[str]) -> None:
    keys = set(spec) - {"kind"}
    missing = required - keys
    if missing:
        raise ValueError(
            f"fault spec {spec.get('kind')!r} missing keys: {sorted(missing)}"
        )
    unknown = keys - required - optional
    if unknown:
        raise ValueError(
            f"unknown fault spec keys for {spec.get('kind')!r}: {sorted(unknown)}"
        )


def plan_from_spec(
    spec: dict[str, Any],
    *,
    streams: Any,
    node_count: int,
    sim_time_s: float,
) -> FaultPlan:
    """Expand a JSON-able fault spec into a concrete :class:`FaultPlan`.

    Spec kinds:

    * ``{"kind": "events", "events": [...]}`` — a literal plan
      (:meth:`FaultPlan.from_dict` layout);
    * ``{"kind": "poisson_crashes", "rate_per_s": r, "mttr_s": m,
      ["start_s", "stop_s", "nodes"]}`` — stochastic crashes seeded from
      the scenario's ``"faults.plan"`` random stream;
    * ``{"kind": "flapping", "period_s": p, "duty_on": d,
      ["start_s", "stop_s", "nodes"]}`` — deterministic staggered flaps;
    * ``{"kind": "compound", "specs": [...]}`` — merge of sub-specs.

    ``streams`` is the scenario's :class:`~repro.sim.rng.RandomStreams`;
    drawing from a dedicated named stream keeps fault expansion from
    perturbing traffic/MAC/PHY randomness, so adding faults to a scenario
    leaves the fault-free portion of the run bit-identical.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"fault spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind == "events":
        _spec_keys(spec, required={"events"}, optional=set())
        plan = FaultPlan.from_dict(spec)
    elif kind == "compound":
        _spec_keys(spec, required={"specs"}, optional=set())
        plan = FaultPlan()
        for sub in spec["specs"]:
            plan = plan.merged(
                plan_from_spec(
                    sub, streams=streams, node_count=node_count,
                    sim_time_s=sim_time_s,
                )
            )
    elif kind == "poisson_crashes":
        _spec_keys(
            spec,
            required={"rate_per_s", "mttr_s"},
            optional={"start_s", "stop_s", "nodes"},
        )
        plan = poisson_crashes(
            spec["rate_per_s"],
            spec["mttr_s"],
            nodes=spec.get("nodes") or range(node_count),
            rng=streams.stream("faults.plan"),
            start_s=spec.get("start_s", 0.0),
            stop_s=spec.get("stop_s", sim_time_s),
        )
    elif kind == "flapping":
        _spec_keys(
            spec,
            required={"period_s", "duty_on"},
            optional={"start_s", "stop_s", "nodes"},
        )
        plan = flapping(
            spec.get("nodes") or range(node_count),
            spec["period_s"],
            spec["duty_on"],
            start_s=spec.get("start_s", 0.0),
            stop_s=spec.get("stop_s", sim_time_s),
        )
    else:
        raise ValueError(
            f"unknown fault spec kind {kind!r}; choose from "
            "['compound', 'events', 'flapping', 'poisson_crashes']"
        )
    plan.validate(node_count)
    return plan
