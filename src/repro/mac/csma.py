"""IEEE 802.11 DCF CSMA/CA MAC.

Implements the distributed coordination function as network simulators
model it:

* carrier sense with DIFS deference and slotted binary-exponential backoff
  (counter frozen while the medium is busy, resumed after a fresh DIFS);
* unicast DATA acknowledged after SIFS, with ACK timeout, contention-window
  doubling, and a retry limit after which the frame is dropped and the
  network layer notified (AODV/NLR use this as the link-failure signal);
* broadcast DATA sent once at the basic rate with no ACK;
* duplicate detection via a bounded (src, seq) cache — duplicates are
  re-ACKed but not re-delivered;
* a drop-tail interface queue feeding head-of-line transmission.

One simplification relative to the letter of the standard, applied equally
to every protocol under comparison: a backoff draw precedes *every*
transmission (the standard permits transmitting immediately when the medium
has been idle ≥ DIFS).  This is the common simulator idealisation; it only
shifts absolute access delay by half a contention window.

Timing constants default to 802.11b: slot 20 µs, SIFS 10 µs, DIFS 50 µs,
CW 31–1023, long PLCP preamble.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.mac.busy_monitor import ArrayBusyMonitor, BusyMonitor
from repro.mac.mac_types import BROADCAST_MAC, MacFrame, MacFrameKind
from repro.mac.queue import DropTailQueue
from repro.phy.frame import PhyFrame, RxInfo
from repro.phy.radio import Radio, RadioState
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.trace import Tracer

__all__ = ["CsmaMac", "MacConfig", "make_timer_batch_handler"]


@dataclass(slots=True)
class MacConfig:
    """DCF parameters (802.11b defaults)."""

    slot_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 31
    cw_max: int = 1023
    retry_limit: int = 7
    queue_capacity: int = 50
    #: ACK/CTS timeout margin beyond SIFS + preamble + response airtime,
    #: to absorb propagation delay (seconds).
    ack_timeout_margin_s: float = 60e-6
    #: Entries kept in the (src, seq) duplicate-detection cache.
    dedupe_cache_size: int = 512
    #: Busy-ratio sliding window (cross-layer signal) in seconds.
    busy_window_s: float = 1.0
    #: RTS/CTS virtual carrier sense.  When enabled, unicast DATA whose
    #: payload meets ``rts_threshold_bytes`` is preceded by an RTS/CTS
    #: handshake, and overheard RTS/CTS/DATA durations arm the NAV.
    rts_cts_enabled: bool = False
    rts_threshold_bytes: int = 0

    def __post_init__(self) -> None:
        if min(self.slot_s, self.sifs_s, self.difs_s) <= 0:
            raise ValueError("DCF timing constants must be positive")
        if self.sifs_s >= self.difs_s:
            raise ValueError("SIFS must be shorter than DIFS")
        if not (0 < self.cw_min <= self.cw_max):
            raise ValueError("require 0 < cw_min <= cw_max")
        if self.retry_limit < 0:
            raise ValueError("retry limit must be ≥ 0")


class _ContendState(enum.Enum):
    IDLE = "idle"             # nothing to send
    WAIT_IDLE = "wait_idle"   # frame pending, medium busy
    DIFS = "difs"             # DIFS deference timer running
    COUNTDOWN = "countdown"   # backoff slots counting down
    TX_RTS = "tx_rts"         # our RTS is on the air
    WAIT_CTS = "wait_cts"     # RTS sent, CTS timer running
    TX_DATA = "tx_data"       # our DATA frame is on the air
    WAIT_ACK = "wait_ack"     # unicast sent, ACK timer running


class CsmaMac:
    """DCF MAC instance for one node.

    Parameters
    ----------
    sim, radio:
        Engine and the node's PHY (this MAC installs itself as the radio's
        upward callbacks).
    config:
        DCF parameters.
    rng:
        Node-local generator for backoff draws.
    tracer:
        Optional tracer (category ``"mac"``).

    Upward interface (set by the network layer):

    * ``rx_upper_callback(packet, src, rx_info)`` — received network payload.
    * ``send_done_callback(packet, dst, success)`` — transmission outcome;
      ``success`` is False on retry-limit exhaustion (link-failure signal)
      and True for delivered unicast or completed broadcast.
    """

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        config: MacConfig,
        rng: np.random.Generator,
        tracer: Tracer | None = None,
        batched: bool = False,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.config = config
        self.rng = rng
        self.tracer = tracer if tracer is not None else Tracer()
        self.node_id = radio.node_id

        self.queue = DropTailQueue(sim, config.queue_capacity)
        # ArrayBusyMonitor is the ring-buffer variant with bit-identical
        # busy-ratio output (DESIGN.md §8); selected with the batched kernel.
        monitor_cls = ArrayBusyMonitor if batched else BusyMonitor
        self.busy_monitor = monitor_cls(sim, config.busy_window_s)

        radio.rx_callback = self._on_phy_rx
        radio.cca_callback = self._on_cca
        radio.tx_done_callback = self._on_tx_done
        radio.tx_abort_callback = self._on_tx_abort

        self._state = _ContendState.IDLE
        self._current: MacFrame | None = None
        self._slots = 0
        self._countdown_start = 0.0
        self._cw = config.cw_min
        self._retries = 0
        self._seq = 0
        self._tx_kind: str | None = None  # "data" | "ack" while radio is TX

        self._timer = Timer(sim, self._on_timer)   # DIFS/backoff/ACK/CTS timeouts
        self._response_timer = Timer(sim, self._send_pending_response)
        self._pending_response: MacFrame | None = None  # ACK or CTS to send
        self._nav_until = 0.0                       # virtual carrier sense

        self._dedupe: dict[tuple[int, int], None] = {}

        self.rx_upper_callback: Callable[[Any, int, RxInfo], None] | None = None
        self.send_done_callback: Callable[[Any, int, bool], None] | None = None

        # Statistics.
        self.data_tx = 0
        self.ack_tx = 0
        self.rts_tx = 0
        self.cts_tx = 0
        self.retries_total = 0
        self.drops_retry = 0
        self.duplicates_rx = 0
        self.data_rx = 0
        self.nav_defers = 0

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Hard-stop the MAC (node failure): cancel timers, drop the
        current frame and everything queued, power the radio off."""
        self._timer.cancel()
        self._response_timer.cancel()
        self._pending_response = None
        if self._current is not None:
            self.drops_retry += 1
            self._current = None
        while self.queue.pop() is not None:
            self.drops_retry += 1
        self._state = _ContendState.IDLE
        self._tx_kind = None
        self._nav_until = 0.0
        self.radio.set_power_state(False)

    def restart(self) -> None:
        """Bring a shut-down MAC back (node recovery)."""
        self.radio.set_power_state(True)

    def radio_off(self) -> None:
        """Power the radio down, keeping MAC state and the queue intact
        (transient PHY outage — radio flapping; contrast :meth:`shutdown`,
        which models a full node crash).  Frames attempted while the radio
        is dark burn through the normal retry/drop path, surfacing link
        failures to the network layer exactly as a real dead transceiver
        would."""
        self.radio.set_power_state(False)

    def radio_on(self) -> None:
        """Power the radio back up and resume contention for queued work."""
        if self.radio.powered:
            return
        self.radio.set_power_state(True)
        if self._state is _ContendState.IDLE:
            self._next_frame()
        elif self._state is _ContendState.WAIT_IDLE and not self._medium_busy():
            self._start_difs()

    def _on_tx_abort(self) -> None:
        """The radio powered off with our frame on the air.

        ``tx_done_callback`` will never fire for that frame, so without
        this hook the MAC would deadlock in TX_RTS/TX_DATA.  Responder
        frames (ACK/CTS) need no follow-up; ``None`` means :meth:`shutdown`
        already cleared the MAC and the abort is moot.  Our own RTS/DATA is
        charged as a failed attempt through the normal retry path.
        """
        kind, self._tx_kind = self._tx_kind, None
        if kind in ("ack", "cts", None):
            return
        self._on_response_timeout()

    # ------------------------------------------------------------------ #
    # Cross-layer signals
    # ------------------------------------------------------------------ #
    @property
    def queue_occupancy(self) -> float:
        """Instantaneous interface-queue fill level in [0, 1]."""
        return self.queue.occupancy_ratio

    def channel_busy_ratio(self) -> float:
        """Trailing-window fraction of time the medium was sensed busy."""
        return self.busy_monitor.busy_ratio()

    # ------------------------------------------------------------------ #
    # Downward interface (network layer calls this)
    # ------------------------------------------------------------------ #
    def send(self, packet: Any, dst: int, payload_bytes: int) -> bool:
        """Queue a network packet for ``dst`` (``BROADCAST_MAC`` broadcasts).

        Returns False when the interface queue drops the packet.
        """
        frame = MacFrame(
            kind=MacFrameKind.DATA,
            src=self.node_id,
            dst=dst,
            seq=self._seq,
            payload=packet,
            payload_bytes=payload_bytes,
        )
        self._seq += 1
        if not self.queue.push(frame):
            self.tracer.record(
                self.sim.now, "mac", self.node_id, "queue_drop", dst=dst
            )
            return False
        if self._state is _ContendState.IDLE:
            self._next_frame()
        return True

    # ------------------------------------------------------------------ #
    # Contention machinery
    # ------------------------------------------------------------------ #
    def _next_frame(self) -> None:
        if self._state is not _ContendState.IDLE or self._current is not None:
            return  # a re-entrant send() during a completion callback won
        frame = self.queue.pop()
        if frame is None:
            return
        self._current = frame
        self._retries = 0
        self._cw = self.config.cw_min
        self._begin_contention()

    # ------------------------------------------------------------------ #
    # Virtual carrier sense (NAV)
    # ------------------------------------------------------------------ #
    def _medium_busy(self) -> bool:
        """Physical (CCA) or virtual (NAV) carrier indicates busy."""
        return self.radio.cca_busy or self.sim.now < self._nav_until

    @property
    def nav_active(self) -> bool:
        """True while the NAV reserves the medium."""
        return self.sim.now < self._nav_until

    def _set_nav(self, duration_s: float) -> None:
        if duration_s <= 0:
            return
        until = self.sim.now + duration_s
        if until <= self._nav_until:
            return
        self._nav_until = until
        self.nav_defers += 1
        self.busy_monitor.on_medium_state(True)
        if self._state is _ContendState.DIFS:
            self._timer.cancel()
            self._state = _ContendState.WAIT_IDLE
        elif self._state is _ContendState.COUNTDOWN:
            self._freeze_countdown()
        self.sim.schedule(until, self._nav_expired)

    def _nav_expired(self) -> None:
        if self.sim.now < self._nav_until:
            return  # NAV was extended meanwhile; a later event will fire
        if not self.radio.cca_busy:
            self.busy_monitor.on_medium_state(False)
            if self._state is _ContendState.WAIT_IDLE:
                self._start_difs()

    def _begin_contention(self) -> None:
        self._slots = int(self.rng.integers(0, self._cw + 1))
        if self._medium_busy():
            self._state = _ContendState.WAIT_IDLE
        else:
            self._start_difs()

    def _start_difs(self) -> None:
        self._state = _ContendState.DIFS
        self._timer.restart(self.config.difs_s)

    def _start_countdown(self) -> None:
        self._state = _ContendState.COUNTDOWN
        self._countdown_start = self.sim.now
        self._timer.restart(self._slots * self.config.slot_s)

    def _freeze_countdown(self) -> None:
        elapsed = self.sim.now - self._countdown_start
        completed = int(elapsed / self.config.slot_s)
        self._slots = max(0, self._slots - completed)
        self._timer.cancel()
        self._state = _ContendState.WAIT_IDLE

    def _on_cca(self, busy: bool) -> None:
        self.busy_monitor.on_medium_state(busy or self.nav_active)
        if busy:
            if self._state is _ContendState.DIFS:
                self._timer.cancel()
                self._state = _ContendState.WAIT_IDLE
            elif self._state is _ContendState.COUNTDOWN:
                self._freeze_countdown()
        else:
            if self._state is _ContendState.WAIT_IDLE and not self.nav_active:
                self._start_difs()

    def _on_timer(self) -> None:
        if self._state is _ContendState.DIFS:
            self._start_countdown()
        elif self._state is _ContendState.COUNTDOWN:
            self._transmit_current()
        elif self._state is _ContendState.WAIT_ACK:
            self._on_response_timeout()
        elif self._state is _ContendState.WAIT_CTS:
            self._on_response_timeout()

    # ------------------------------------------------------------------ #
    # Transmission
    # ------------------------------------------------------------------ #
    def _phy_frame(self, frame: MacFrame) -> PhyFrame:
        cfg = self.radio.config
        rate = (
            cfg.data_rate_bps
            if frame.kind is MacFrameKind.DATA and not frame.is_broadcast
            else cfg.basic_rate_bps
        )
        return PhyFrame(
            payload=frame,
            bits=frame.size_bits,
            rate_bps=rate,
            preamble_s=cfg.preamble_s,
            tx_power_w=cfg.tx_power_w,
            tx_node=self.node_id,
        )

    def _control_airtime(self, nbytes: int) -> float:
        rcfg = self.radio.config
        return rcfg.preamble_s + (nbytes * 8) / rcfg.basic_rate_bps

    def _data_airtime(self, frame: MacFrame) -> float:
        rcfg = self.radio.config
        rate = rcfg.basic_rate_bps if frame.is_broadcast else rcfg.data_rate_bps
        return rcfg.preamble_s + frame.size_bits / rate

    def _use_rts(self, frame: MacFrame) -> bool:
        return (
            self.config.rts_cts_enabled
            and not frame.is_broadcast
            and frame.payload_bytes >= self.config.rts_threshold_bytes
        )

    def _transmit_current(self) -> None:
        frame = self._current
        assert frame is not None
        if not self.radio.powered:
            # Radio died under us (failure injection without shutdown()):
            # burn the attempt through the normal retry/drop path.
            self._on_response_timeout()
            return
        if self._use_rts(frame):
            self._transmit_rts(frame)
        else:
            self._transmit_data(frame)

    def _transmit_rts(self, frame: MacFrame) -> None:
        cfg = self.config
        # NAV covers the rest of the exchange: CTS + DATA + ACK and the
        # three SIFS gaps between them.
        nav = (
            3 * cfg.sifs_s
            + self._control_airtime(14)       # CTS
            + self._data_airtime(frame)       # DATA
            + self._control_airtime(14)       # ACK
        )
        rts = MacFrame(
            kind=MacFrameKind.RTS, src=self.node_id, dst=frame.dst,
            seq=frame.seq, duration_s=nav,
        )
        self._state = _ContendState.TX_RTS
        self._tx_kind = "rts"
        self.rts_tx += 1
        self.tracer.record(
            self.sim.now, "mac", self.node_id, "rts_tx", dst=frame.dst
        )
        self.radio.transmit(self._phy_frame(rts))

    def _transmit_data(self, frame: MacFrame) -> None:
        if self._use_rts(frame):
            # overhearers of the data frame defer for the trailing ACK
            frame.duration_s = self.config.sifs_s + self._control_airtime(14)
        self._state = _ContendState.TX_DATA
        self._tx_kind = "data"
        self.data_tx += 1
        self.tracer.record(
            self.sim.now, "mac", self.node_id, "data_tx",
            dst=frame.dst, seq=frame.seq, retry=frame.retry,
        )
        self.radio.transmit(self._phy_frame(frame))

    def _on_tx_done(self) -> None:
        kind, self._tx_kind = self._tx_kind, None
        if kind in ("ack", "cts", None):
            # Responder-side frames need no follow-up; kind None means the
            # MAC was shut down (failure injection) while a frame was in
            # the air and its completion is moot.
            return
        frame = self._current
        assert frame is not None
        cfg = self.config
        if kind == "rts":
            self._state = _ContendState.WAIT_CTS
            self._timer.restart(
                cfg.sifs_s + self._control_airtime(14) + cfg.ack_timeout_margin_s
            )
            return
        assert kind == "data"
        if frame.is_broadcast:
            self._complete(success=True)
        else:
            self._state = _ContendState.WAIT_ACK
            self._timer.restart(
                cfg.sifs_s + self._control_airtime(14) + cfg.ack_timeout_margin_s
            )

    def _on_response_timeout(self) -> None:
        """Expected CTS or ACK never arrived: binary-exponential retry."""
        frame = self._current
        assert frame is not None
        self._retries += 1
        self.retries_total += 1
        if self._retries > self.config.retry_limit:
            self.drops_retry += 1
            self.tracer.record(
                self.sim.now, "mac", self.node_id, "retry_drop",
                dst=frame.dst, seq=frame.seq,
            )
            self._complete(success=False)
            return
        self._cw = min(2 * (self._cw + 1) - 1, self.config.cw_max)
        frame.retry = True
        self._begin_contention()

    def _complete(self, success: bool) -> None:
        frame = self._current
        assert frame is not None
        self._current = None
        self._state = _ContendState.IDLE
        if self.send_done_callback is not None:
            # The callback may re-entrantly send() (e.g. RERR origination on
            # a link failure), which claims the MAC; _next_frame guards.
            self.send_done_callback(frame.payload, frame.dst, success)
        self._next_frame()

    # ------------------------------------------------------------------ #
    # Reception
    # ------------------------------------------------------------------ #
    def _on_phy_rx(self, frame: MacFrame, info: RxInfo) -> None:
        if frame.kind is MacFrameKind.ACK:
            self._handle_ack(frame)
            return
        if frame.kind is MacFrameKind.RTS:
            self._handle_rts(frame)
            return
        if frame.kind is MacFrameKind.CTS:
            self._handle_cts(frame)
            return
        if frame.dst == self.node_id:
            self._schedule_response(
                MacFrame(
                    kind=MacFrameKind.ACK, src=self.node_id, dst=frame.src,
                    seq=0,
                )
            )
            if self._is_duplicate(frame):
                self.duplicates_rx += 1
                return
            self.data_rx += 1
            self._deliver(frame, info)
        elif frame.is_broadcast:
            self.data_rx += 1
            self._deliver(frame, info)
        else:
            # Overheard unicast DATA for someone else: honour its NAV
            # (covers the trailing ACK under RTS/CTS operation).
            self._set_nav(frame.duration_s)

    # ------------------------------------------------------------------ #
    # RTS/CTS handshake
    # ------------------------------------------------------------------ #
    def _handle_rts(self, rts: MacFrame) -> None:
        if rts.dst != self.node_id:
            self._set_nav(rts.duration_s)
            return
        if self.nav_active:
            return  # standard: stay silent, the sender will retry
        cts_air = self._control_airtime(14)
        cts = MacFrame(
            kind=MacFrameKind.CTS, src=self.node_id, dst=rts.src, seq=0,
            duration_s=max(0.0, rts.duration_s - self.config.sifs_s - cts_air),
        )
        self._schedule_response(cts)

    def _handle_cts(self, cts: MacFrame) -> None:
        if cts.dst != self.node_id:
            self._set_nav(cts.duration_s)
            return
        if self._state is not _ContendState.WAIT_CTS:
            return
        self._timer.cancel()
        self.tracer.record(self.sim.now, "mac", self.node_id, "cts_rx",
                           src=cts.src)
        self.sim.schedule_in(self.config.sifs_s, self._data_after_cts)

    def _data_after_cts(self) -> None:
        if self._state is not _ContendState.WAIT_CTS:
            return  # exchange was torn down meanwhile
        frame = self._current
        assert frame is not None
        if self.radio.state is RadioState.TX or not self.radio.powered:
            return  # pathological overlap or dead radio; timeout path retries
        self._transmit_data(frame)

    def _deliver(self, frame: MacFrame, info: RxInfo) -> None:
        if self.rx_upper_callback is not None:
            self.rx_upper_callback(frame.payload, frame.src, info)

    def _is_duplicate(self, frame: MacFrame) -> bool:
        key = frame.dedupe_key()
        if key in self._dedupe:
            return True
        self._dedupe[key] = None
        if len(self._dedupe) > self.config.dedupe_cache_size:
            self._dedupe.pop(next(iter(self._dedupe)))
        return False

    def _handle_ack(self, ack: MacFrame) -> None:
        if self._state is not _ContendState.WAIT_ACK:
            return
        cur = self._current
        assert cur is not None
        if ack.dst == self.node_id and ack.src == cur.dst:
            self._timer.cancel()
            self.tracer.record(
                self.sim.now, "mac", self.node_id, "ack_rx", src=ack.src
            )
            self._complete(success=True)

    def _schedule_response(self, frame: MacFrame) -> None:
        """Queue an ACK or CTS for transmission one SIFS from now.

        A newer response obligation supersedes a pending one (only possible
        under pathological capture sequences; the superseded response would
        have collided anyway).
        """
        self._pending_response = frame
        self._response_timer.restart(self.config.sifs_s)

    def _send_pending_response(self) -> None:
        frame, self._pending_response = self._pending_response, None
        if frame is None:
            return
        if self.radio.state is RadioState.TX or not self.radio.powered:
            return  # radio busy talking or dead; the response is lost
        self._tx_kind = "ack" if frame.kind is MacFrameKind.ACK else "cts"
        if frame.kind is MacFrameKind.ACK:
            self.ack_tx += 1
        else:
            self.cts_tx += 1
        self.tracer.record(
            self.sim.now, "mac", self.node_id, f"{self._tx_kind}_tx",
            dst=frame.dst,
        )
        self.radio.transmit(self._phy_frame(frame))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CsmaMac(node={self.node_id}, state={self._state.value}, "
            f"qlen={len(self.queue)})"
        )


# ---------------------------------------------------------------------- #
# Batched timer handler (DESIGN.md §8)
# ---------------------------------------------------------------------- #
def make_timer_batch_handler(channel):
    """Batch handler for same-instant :meth:`Timer._fire` events.

    N backoff counters expiring in the same slot is the signature hot spot
    of a saturated CSMA network: each expiry calls ``_transmit_current``,
    which walks the channel's dispatch-plan cache.  This handler inspects
    the batch *before* firing anything, collects the ``(node, tx power)``
    pairs of MACs that are about to transmit, and pre-fills their dispatch
    plans with one stacked propagation evaluation
    (:meth:`~repro.phy.channel.Channel.warm_plans`) instead of N lazy
    per-transmitter misses.

    Exactness: the prefetch is a pure cache warm (the plans built are
    bit-identical to lazily-built ones) and every ``(fn, args)`` pair then
    fires in heap order, so observable behaviour matches the scalar engine
    exactly.  Over-prefetching (a timer that turns out not to transmit) is
    harmless for the same reason.
    """

    def handler(sim: Simulator, batch) -> None:
        if len(batch) > 1:
            pairs = []
            for fn, _args in batch:
                timer = fn.__self__            # Timer._fire → Timer
                cb = timer._fn                 # bound MAC callback
                func = getattr(cb, "__func__", None)
                if func is CsmaMac._on_timer:
                    mac = cb.__self__
                    if mac._state is _ContendState.COUNTDOWN:
                        pairs.append((mac.node_id, mac.radio.config.tx_power_w))
            if len(pairs) > 1:
                channel.warm_plans(pairs)
        for fn, args in batch:
            fn(*args)

    return handler
