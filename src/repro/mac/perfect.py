"""Idealised collision-free MAC for testing routing logic in isolation.

:class:`PerfectMac` presents the same upward/downward interface as
:class:`~repro.mac.csma.CsmaMac` (``send``, ``rx_upper_callback``,
``send_done_callback``, ``queue_occupancy``, ``channel_busy_ratio``) but
delivers frames over an abstract adjacency relation with a fixed per-hop
delay and no loss, contention, or queueing.  Routing-protocol unit tests
use it so assertions are about protocol logic, not stochastic MAC effects.

A :class:`PerfectMacNetwork` owns the adjacency (any ``node -> neighbours``
callable, typically backed by a networkx graph from
:mod:`repro.topology.graph`).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mac.mac_types import BROADCAST_MAC
from repro.phy.frame import RxInfo
from repro.sim.engine import Simulator

__all__ = ["PerfectMac", "PerfectMacNetwork"]


class PerfectMacNetwork:
    """Registry + adjacency for a set of :class:`PerfectMac` instances.

    Parameters
    ----------
    sim:
        Event engine.
    neighbours_of:
        Callable returning the node ids adjacent to a given node id.
    hop_delay_s:
        Constant delivery latency per link.
    """

    def __init__(
        self,
        sim: Simulator,
        neighbours_of: Callable[[int], list[int]],
        hop_delay_s: float = 1e-3,
    ) -> None:
        if hop_delay_s < 0:
            raise ValueError(f"hop delay must be ≥ 0, got {hop_delay_s!r}")
        self.sim = sim
        self.neighbours_of = neighbours_of
        self.hop_delay_s = hop_delay_s
        self.macs: dict[int, "PerfectMac"] = {}
        self.deliveries = 0

    def create_mac(self, node_id: int) -> "PerfectMac":
        """Create and register the MAC for ``node_id``."""
        if node_id in self.macs:
            raise ValueError(f"node {node_id} already has a PerfectMac")
        mac = PerfectMac(self, node_id)
        self.macs[node_id] = mac
        return mac

    def _deliver(self, src: int, dst: int, packet: Any, payload_bytes: int) -> None:
        mac = self.macs.get(dst)
        if mac is None or mac.rx_upper_callback is None:
            return
        self.deliveries += 1
        now = self.sim.now
        info = RxInfo(
            rx_power_w=1e-9,
            min_sinr=float("inf"),
            start_time=now,
            end_time=now,
            tx_node=src,
        )
        mac.data_rx += 1
        mac.rx_upper_callback(packet, src, info)


class PerfectMac:
    """Loss-free, contention-free MAC bound to a :class:`PerfectMacNetwork`."""

    def __init__(self, network: PerfectMacNetwork, node_id: int) -> None:
        self.network = network
        self.sim = network.sim
        self.node_id = node_id
        self.rx_upper_callback: Callable[[Any, int, RxInfo], None] | None = None
        self.send_done_callback: Callable[[Any, int, bool], None] | None = None
        self.data_tx = 0
        self.data_rx = 0
        self.drops_retry = 0

    # Cross-layer signals: an ideal MAC is never congested.
    @property
    def queue_occupancy(self) -> float:
        """Always 0 — the ideal MAC has no queue."""
        return 0.0

    def channel_busy_ratio(self) -> float:
        """Always 0 — the ideal medium is never busy."""
        return 0.0

    def send(self, packet: Any, dst: int, payload_bytes: int) -> bool:
        """Deliver ``packet`` to ``dst`` (or all neighbours on broadcast)
        after the network's hop delay.  Unicast to a non-neighbour fails
        asynchronously via ``send_done_callback(..., success=False)``."""
        self.data_tx += 1
        delay = self.network.hop_delay_s
        neighbours = self.network.neighbours_of(self.node_id)
        if dst == BROADCAST_MAC:
            for n in neighbours:
                self.sim.schedule_in(
                    delay, self.network._deliver, self.node_id, n, packet,
                    payload_bytes,
                )
            self.sim.schedule_in(delay, self._done, packet, dst, True)
            return True
        if dst not in neighbours:
            self.drops_retry += 1
            self.sim.schedule_in(delay, self._done, packet, dst, False)
            return True
        self.sim.schedule_in(
            delay, self.network._deliver, self.node_id, dst, packet, payload_bytes
        )
        self.sim.schedule_in(delay, self._done, packet, dst, True)
        return True

    def _done(self, packet: Any, dst: int, success: bool) -> None:
        if self.send_done_callback is not None:
            self.send_done_callback(packet, dst, success)
