"""Drop-tail interface queue with time-weighted occupancy statistics.

The queue's *occupancy ratio* (time-averaged length / capacity) is one of
the two cross-layer congestion signals NLR consumes, so the queue keeps an
exact time-weighted occupancy integral rather than sampling.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Simulator

__all__ = ["DropTailQueue"]


class DropTailQueue:
    """Bounded FIFO that drops arrivals when full.

    Parameters
    ----------
    sim:
        Simulator (for time-weighted statistics).
    capacity:
        Maximum number of queued items (ns-2 ifq default is 50).
    """

    def __init__(self, sim: Simulator, capacity: int = 50) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self._occ_integral = 0.0  # ∫ len dt
        self._last_change = sim.now
        self._created = sim.now

    def _account(self) -> None:
        now = self.sim.now
        self._occ_integral += len(self._items) * (now - self._last_change)
        self._last_change = now

    def push(self, item: Any) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) when full."""
        self._account()
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Any | None:
        """Dequeue the head item, or None when empty."""
        self._account()
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def peek(self) -> Any | None:
        """Head item without removing it, or None when empty."""
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy_ratio(self) -> float:
        """Instantaneous fill level in [0, 1] — the cross-layer signal."""
        return len(self._items) / self.capacity

    def mean_occupancy(self) -> float:
        """Time-averaged queue length since construction."""
        self._account()
        total_time = self.sim.now - self._created
        if total_time <= 0:
            return float(len(self._items))
        return self._occ_integral / total_time

    def drop_ratio(self) -> float:
        """Fraction of arrivals dropped (0 when nothing arrived)."""
        arrivals = self.enqueued + self.dropped
        return self.dropped / arrivals if arrivals else 0.0
