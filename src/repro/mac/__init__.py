"""MAC substrate: IEEE 802.11 DCF CSMA/CA, queues, and the busy monitor.

* :mod:`~repro.mac.mac_types` — MAC frame formats and addressing constants.
* :mod:`~repro.mac.queue` — drop-tail interface queue with time-weighted
  occupancy statistics (one of the two cross-layer load signals).
* :mod:`~repro.mac.busy_monitor` — sliding-window channel-busy-ratio
  tracker (the other cross-layer load signal).
* :mod:`~repro.mac.csma` — the DCF state machine: DIFS/SIFS, slotted binary
  exponential backoff with freezing, unicast ACK + retries, broadcast.
* :mod:`~repro.mac.perfect` — an idealised collision-free MAC used to test
  routing logic in isolation from contention effects.
"""

from repro.mac.busy_monitor import BusyMonitor
from repro.mac.csma import CsmaMac, MacConfig
from repro.mac.mac_types import BROADCAST_MAC, MacFrame, MacFrameKind
from repro.mac.perfect import PerfectMac
from repro.mac.queue import DropTailQueue

__all__ = [
    "BROADCAST_MAC",
    "BusyMonitor",
    "CsmaMac",
    "DropTailQueue",
    "MacConfig",
    "MacFrame",
    "MacFrameKind",
    "PerfectMac",
]
