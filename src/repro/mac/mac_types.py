"""MAC frame formats and addressing constants."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["BROADCAST_MAC", "MacFrame", "MacFrameKind"]

#: Link-layer broadcast address (all-ones in a real header).
BROADCAST_MAC = -1

#: 802.11 data header + LLC/SNAP + FCS, as ns-2 accounts it (bytes).
DATA_OVERHEAD_BYTES = 34

#: 802.11 ACK frame size (bytes).
ACK_BYTES = 14

#: 802.11 RTS frame size (bytes).
RTS_BYTES = 20

#: 802.11 CTS frame size (bytes).
CTS_BYTES = 14


class MacFrameKind(enum.Enum):
    """Frame types used by the DCF MAC."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"


@dataclass(slots=True)
class MacFrame:
    """A link-layer frame.

    Attributes
    ----------
    kind:
        DATA or ACK.
    src, dst:
        Node ids; ``dst == BROADCAST_MAC`` for broadcast.
    seq:
        Per-sender sequence number (duplicate detection of retransmissions).
    payload:
        Network-layer packet carried (None for ACK).
    payload_bytes:
        Size of the network payload in bytes (0 for ACK).
    retry:
        True on retransmission attempts.
    duration_s:
        NAV value: how long (after this frame ends) the medium is reserved
        for the remainder of the exchange.  Overhearers defer for it
        (virtual carrier sense); 0 when RTS/CTS is not in use.
    """

    kind: MacFrameKind
    src: int
    dst: int
    seq: int
    payload: Any = None
    payload_bytes: int = 0
    retry: bool = False
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload size must be ≥ 0, got {self.payload_bytes}")
        if self.kind is not MacFrameKind.DATA and self.dst == BROADCAST_MAC:
            raise ValueError(f"{self.kind.value} frames cannot be broadcast")
        if self.duration_s < 0:
            raise ValueError(f"duration must be ≥ 0, got {self.duration_s!r}")

    @property
    def is_broadcast(self) -> bool:
        """True for link-layer broadcast frames."""
        return self.dst == BROADCAST_MAC

    @property
    def size_bytes(self) -> int:
        """On-air size including MAC overhead."""
        if self.kind is MacFrameKind.ACK:
            return ACK_BYTES
        if self.kind is MacFrameKind.RTS:
            return RTS_BYTES
        if self.kind is MacFrameKind.CTS:
            return CTS_BYTES
        return DATA_OVERHEAD_BYTES + self.payload_bytes

    @property
    def size_bits(self) -> int:
        """On-air size in bits."""
        return self.size_bytes * 8

    def dedupe_key(self) -> tuple[int, int]:
        """(src, seq) key identifying retransmitted copies."""
        return (self.src, self.seq)
