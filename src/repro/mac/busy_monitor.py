"""Sliding-window channel-busy-ratio tracker.

The busy ratio — fraction of recent wall-clock time the medium was sensed
busy (own TX, locked RX, or energy above the carrier-sense threshold) — is
the cross-layer signal that distinguishes *neighbourhood* congestion from
own-queue congestion: a node with an empty queue parked next to a busy
gateway still reports a high busy ratio.

The monitor is fed busy/idle *transitions* (from the radio's CCA callback
chain) and answers ``busy_ratio()`` over a configurable trailing window,
pruning intervals that age out.  A running cumulative busy-time sum is
maintained on every transition/prune, so a query costs O(intervals pruned)
rather than re-summing the whole window — ``busy_ratio()`` is called per
HELLO beacon and per NLR forwarding decision, making it a hot path in
dense networks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.engine import Simulator

__all__ = ["BusyMonitor", "ArrayBusyMonitor"]


class BusyMonitor:
    """Tracks the fraction of time the medium was busy over a window.

    Parameters
    ----------
    sim:
        Simulator, for timestamps.
    window_s:
        Trailing window length (seconds).  The group's cross-layer papers
        use ~1 s windows so the signal tracks offered-load changes quickly
        without chattering per-frame.
    """

    def __init__(self, sim: Simulator, window_s: float = 1.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s!r}")
        self.sim = sim
        self.window_s = window_s
        self._intervals: deque[tuple[float, float]] = deque()
        self._busy_sum = 0.0  # total length of intervals in the deque
        self._busy_since: float | None = None
        self._created = sim.now

    def on_medium_state(self, busy: bool) -> None:
        """Feed a busy/idle transition (idempotent on repeats)."""
        now = self.sim.now
        if busy:
            if self._busy_since is None:
                self._busy_since = now
        else:
            if self._busy_since is not None:
                if now > self._busy_since:
                    self._intervals.append((self._busy_since, now))
                    self._busy_sum += now - self._busy_since
                self._busy_since = None
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._intervals and self._intervals[0][1] <= horizon:
            start, end = self._intervals.popleft()
            self._busy_sum -= end - start

    def busy_ratio(self) -> float:
        """Busy fraction over the trailing window, in [0, 1]."""
        now = self.sim.now
        self._prune(now)
        horizon = now - self.window_s
        busy = self._busy_sum
        if self._intervals:
            # Intervals are disjoint and time-ordered, so after pruning at
            # most the oldest one can straddle the horizon; clip just it.
            start0 = self._intervals[0][0]
            if start0 < horizon:
                busy -= horizon - start0
        if self._busy_since is not None:
            busy += now - max(self._busy_since, horizon)
        # Early in the run the window extends before t=created; normalise
        # by the observed span so start-up does not read artificially idle.
        span = min(self.window_s, max(now - self._created, 1e-12))
        return min(1.0, max(0.0, busy / span))

    @property
    def currently_busy(self) -> bool:
        """True if the last transition reported busy."""
        return self._busy_since is not None


class ArrayBusyMonitor(BusyMonitor):
    """:class:`BusyMonitor` with the interval deque replaced by a numpy
    ring buffer (DESIGN.md §8).

    Pruning a batch of aged-out intervals becomes one ``searchsorted``
    over the sorted end times instead of a Python pop loop — the win in
    dense networks, where a busy-ratio query after a quiet spell can
    retire dozens of intervals at once.

    Bit-exactness: ``_busy_sum`` is updated by the *same sequence of
    Python-float subtractions* the deque version performs (every numpy
    read goes through ``float(...)``), so the busy-ratio float sequence —
    and hence every NLR forwarding decision fed by it — is byte-identical
    to the scalar monitor's.
    """

    _INITIAL = 64

    def __init__(self, sim: Simulator, window_s: float = 1.0) -> None:
        super().__init__(sim, window_s)
        self._intervals = None  # type: ignore[assignment]  # ring replaces deque
        self._starts = np.empty(self._INITIAL)
        self._ends = np.empty(self._INITIAL)
        self._head = 0
        self._tail = 0

    def on_medium_state(self, busy: bool) -> None:
        now = self.sim.now
        if busy:
            if self._busy_since is None:
                self._busy_since = now
        else:
            if self._busy_since is not None:
                if now > self._busy_since:
                    self._append(self._busy_since, now)
                    self._busy_sum += now - self._busy_since
                self._busy_since = None
        self._prune(now)

    def _append(self, start: float, end: float) -> None:
        if self._tail == len(self._starts):
            live = self._tail - self._head
            if live == len(self._starts):
                grown_s = np.empty(2 * live)
                grown_e = np.empty(2 * live)
                grown_s[:live] = self._starts
                grown_e[:live] = self._ends
                self._starts, self._ends = grown_s, grown_e
            else:
                # Compact: shift the live region back to the front.
                self._starts[:live] = self._starts[self._head : self._tail]
                self._ends[:live] = self._ends[self._head : self._tail]
            self._head = 0
            self._tail = live
        self._starts[self._tail] = start
        self._ends[self._tail] = end
        self._tail += 1

    def _prune(self, now: float) -> None:
        head, tail = self._head, self._tail
        if head == tail:
            return
        horizon = now - self.window_s
        # Ends are appended in non-decreasing time order, so the aged-out
        # prefix is found with one binary search (side="right" matches the
        # deque loop's ``end <= horizon`` condition).
        n = int(np.searchsorted(self._ends[head:tail], horizon, side="right"))
        if n == 0:
            return
        starts, ends = self._starts, self._ends
        # Sequential Python-float subtraction, one interval at a time, in
        # the deque pop order — keeps the _busy_sum rounding history (and
        # thus every downstream busy-ratio float) bit-identical.
        for i in range(head, head + n):
            self._busy_sum -= float(ends[i]) - float(starts[i])
        self._head = head + n
        if self._head == self._tail:
            self._head = self._tail = 0

    def busy_ratio(self) -> float:
        now = self.sim.now
        self._prune(now)
        horizon = now - self.window_s
        busy = self._busy_sum
        if self._head != self._tail:
            # Intervals are disjoint and time-ordered, so after pruning at
            # most the oldest one can straddle the horizon; clip just it.
            start0 = float(self._starts[self._head])
            if start0 < horizon:
                busy -= horizon - start0
        if self._busy_since is not None:
            busy += now - max(self._busy_since, horizon)
        span = min(self.window_s, max(now - self._created, 1e-12))
        return min(1.0, max(0.0, busy / span))
