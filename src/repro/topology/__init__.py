"""Topology generation, connectivity graphs, gateways, and mobility."""

from repro.topology.gateway import select_gateways
from repro.topology.graph import connectivity_graph, ensure_connected_positions
from repro.topology.mobility import RandomWaypoint, StaticMobility
from repro.topology.placement import chain_positions, grid_positions, random_positions

__all__ = [
    "RandomWaypoint",
    "StaticMobility",
    "chain_positions",
    "connectivity_graph",
    "ensure_connected_positions",
    "grid_positions",
    "random_positions",
    "select_gateways",
]
