"""Gateway selection for WMN scenarios.

Mesh traffic is gateway-oriented: most flows terminate at the router(s)
wired to the Internet.  The selector here picks ``k`` gateways spread over
the deployment by greedy max-min distance (first pick = node closest to
the area centroid, matching the "central gateway" layout of the group's
gateway-centralised routing papers).
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_gateways"]


def select_gateways(positions: np.ndarray, k: int = 1) -> list[int]:
    """Pick ``k`` well-spread gateway node ids.

    The first gateway is the node nearest the centroid; each subsequent
    one maximises its minimum distance to the gateways chosen so far.

    >>> import numpy as np
    >>> pos = np.array([[0.,0.],[100.,0.],[0.,100.],[100.,100.],[50.,50.]])
    >>> select_gateways(pos, 1)
    [4]
    """
    pos = np.asarray(positions, dtype=float)
    n = len(pos)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    centroid = pos.mean(axis=0)
    first = int(np.argmin(np.hypot(*(pos - centroid).T)))
    chosen = [first]
    while len(chosen) < k:
        d = np.full(n, np.inf)
        for g in chosen:
            d = np.minimum(d, np.hypot(*(pos - pos[g]).T))
        d[chosen] = -np.inf
        chosen.append(int(np.argmax(d)))
    return chosen
