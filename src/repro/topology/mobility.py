"""Mobility models.

Mesh routers are static — :class:`StaticMobility` is the WMN default — but
the protocol family descends from MANET work, so :class:`RandomWaypoint`
is provided for the mobile comparisons and robustness tests: each node
repeatedly picks a uniform destination in the area, moves there at a
uniform speed, pauses, and repeats.  Positions are pushed into the channel
at a fixed update period (continuous motion discretised, as ns-2 does
internally for distance queries).
"""

from __future__ import annotations

import numpy as np

from repro.phy.channel import Channel
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["StaticMobility", "RandomWaypoint"]


class StaticMobility:
    """No-op mobility for fixed mesh routers."""

    def start(self) -> None:
        """Nothing to do."""

    def stop(self) -> None:
        """Nothing to do."""


class RandomWaypoint:
    """Random-waypoint motion for a set of nodes.

    Parameters
    ----------
    sim, channel:
        Engine and the channel whose position table is updated.
    node_ids:
        Nodes that move (others stay put).
    area_m:
        (width, height) of the movement rectangle.
    speed_range:
        (min, max) uniform speed in m/s; min > 0 avoids the well-known
        speed-decay artefact of vmin = 0.
    pause_s:
        Pause at each waypoint.
    rng:
        Generator driving waypoints/speeds.
    update_interval_s:
        Position push period.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        node_ids: list[int],
        area_m: tuple[float, float],
        speed_range: tuple[float, float],
        rng: np.random.Generator,
        pause_s: float = 0.0,
        update_interval_s: float = 0.1,
    ) -> None:
        vmin, vmax = speed_range
        if not 0 < vmin <= vmax:
            raise ValueError(f"require 0 < vmin <= vmax, got {speed_range!r}")
        if pause_s < 0:
            raise ValueError(f"pause must be ≥ 0, got {pause_s!r}")
        self.sim = sim
        self.channel = channel
        self.node_ids = list(node_ids)
        self.area_m = area_m
        self.speed_range = speed_range
        self.pause_s = pause_s
        self.rng = rng
        self._proc = PeriodicProcess(sim, update_interval_s, self._tick)
        # Per node: (target, speed, pause_until)
        self._state: dict[int, tuple[np.ndarray, float, float]] = {}

    def start(self) -> None:
        """Assign first waypoints and begin position updates."""
        for nid in self.node_ids:
            self._state[nid] = self._new_leg()
        self._proc.start(initial_delay=self._proc.period)

    def stop(self) -> None:
        """Stop position updates (nodes freeze in place)."""
        self._proc.stop()

    def _new_leg(self) -> tuple[np.ndarray, float, float]:
        target = self.rng.uniform([0.0, 0.0], list(self.area_m))
        speed = float(self.rng.uniform(*self.speed_range))
        return target, speed, 0.0

    def _tick(self) -> None:
        dt = self._proc.period
        now = self.sim.now
        # Batch the whole tick's moves into one channel update so the
        # dispatch-cache invalidation pass runs once per tick, not per node.
        moves: list[tuple[int, tuple[float, float]]] = []
        for nid in self.node_ids:
            target, speed, pause_until = self._state[nid]
            if now < pause_until:
                continue
            pos = self.channel.position_of(nid)
            delta = target - pos
            dist = float(np.hypot(*delta))
            step = speed * dt
            if dist <= step:
                moves.append((nid, (float(target[0]), float(target[1]))))
                nxt = self._new_leg()
                self._state[nid] = (nxt[0], nxt[1], now + self.pause_s)
            else:
                newpos = pos + delta * (step / dist)
                moves.append((nid, (float(newpos[0]), float(newpos[1]))))
        if moves:
            self.channel.move_many(moves)

    def speed_of(self, node_id: int) -> float:
        """Current leg speed of ``node_id`` (m/s)."""
        return self._state[node_id][1]
