"""ASCII rendering of mesh topologies.

Draws node positions on a character grid — gateways as ``G``, flow sources
as ``s``, flow destinations as ``d``, other routers as ``o`` — so examples
and the CLI can show *where* a scenario's traffic concentrates without any
plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_topology"]


def render_topology(
    positions: np.ndarray,
    gateways: list[int] | None = None,
    sources: list[int] | None = None,
    destinations: list[int] | None = None,
    width: int = 48,
    height: int = 18,
    show_ids: bool = False,
) -> str:
    """Render node positions as an ASCII map.

    Marker precedence when roles overlap: gateway > destination > source >
    plain router.  With ``show_ids`` nodes print their id's last digit
    instead of role glyphs (useful for small meshes).
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2 or len(pos) == 0:
        raise ValueError("positions must be a non-empty (n, 2) array")
    if width < 8 or height < 4:
        raise ValueError("map must be at least 8×4 characters")
    gateways = set(gateways or [])
    sources = set(sources or [])
    destinations = set(destinations or [])

    x_min, y_min = pos.min(axis=0)
    x_max, y_max = pos.max(axis=0)
    x_span = max(x_max - x_min, 1.0)
    y_span = max(y_max - y_min, 1.0)

    grid = [[" "] * width for _ in range(height)]
    for node_id, (x, y) in enumerate(pos):
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        if show_ids:
            glyph = str(node_id % 10)
        elif node_id in gateways:
            glyph = "G"
        elif node_id in destinations:
            glyph = "d"
        elif node_id in sources:
            glyph = "s"
        else:
            glyph = "o"
        # Gateways win cell conflicts; otherwise first writer keeps it.
        if grid[row][col] == " " or glyph == "G":
            grid[row][col] = glyph

    lines = ["+" + "-" * width + "+"]
    lines += ["|" + "".join(r) + "|" for r in grid]
    lines.append("+" + "-" * width + "+")
    legend = ["o=router"]
    if gateways:
        legend.append("G=gateway")
    if sources:
        legend.append("s=flow src")
    if destinations:
        legend.append("d=flow dst")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)
