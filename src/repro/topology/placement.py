"""Node placement generators.

All generators return an ``(n, 2)`` float array of positions in metres.
Mesh-router evaluations use grids (the canonical WMN backbone layout in
this group's papers: n×n routers at 200 m spacing); random uniform
placement covers the irregular-deployment scenarios.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grid_positions", "random_positions", "chain_positions"]


def grid_positions(
    nx: int, ny: int, spacing_m: float = 200.0, origin: tuple[float, float] = (0.0, 0.0)
) -> np.ndarray:
    """Rectangular nx × ny grid with ``spacing_m`` between neighbours.

    >>> grid_positions(2, 2, 100.0).tolist()
    [[0.0, 0.0], [100.0, 0.0], [0.0, 100.0], [100.0, 100.0]]
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"grid dimensions must be ≥ 1, got {nx}×{ny}")
    if spacing_m <= 0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    xs, ys = np.meshgrid(
        origin[0] + spacing_m * np.arange(nx),
        origin[1] + spacing_m * np.arange(ny),
    )
    return np.column_stack([xs.ravel(), ys.ravel()]).astype(float)


def random_positions(
    n: int,
    area_m: tuple[float, float],
    rng: np.random.Generator,
    min_separation_m: float = 0.0,
    max_attempts: int = 10_000,
) -> np.ndarray:
    """``n`` points uniform in ``[0, w] × [0, h]``.

    With ``min_separation_m > 0``, rejection-samples so no two nodes are
    closer than the separation (physically co-located radios distort both
    the PHY and the load metric).

    Raises
    ------
    RuntimeError
        If the separation constraint cannot be met within ``max_attempts``
        draws (area too dense).
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    w, h = area_m
    if w <= 0 or h <= 0:
        raise ValueError(f"area must be positive, got {area_m!r}")
    if min_separation_m <= 0:
        pts = rng.uniform([0.0, 0.0], [w, h], size=(n, 2))
        return pts.astype(float)
    placed: list[np.ndarray] = []
    attempts = 0
    while len(placed) < n:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {n} nodes with separation "
                f"{min_separation_m} m in {area_m} after {max_attempts} draws"
            )
        p = rng.uniform([0.0, 0.0], [w, h])
        if all(np.hypot(*(p - q)) >= min_separation_m for q in placed):
            placed.append(p)
    return np.array(placed, dtype=float)


def chain_positions(n: int, spacing_m: float = 200.0) -> np.ndarray:
    """``n`` nodes in a straight line (the classic multi-hop chain).

    >>> chain_positions(3, 250.0).tolist()
    [[0.0, 0.0], [250.0, 0.0], [500.0, 0.0]]
    """
    if n < 1:
        raise ValueError(f"need at least one node, got {n}")
    if spacing_m <= 0:
        raise ValueError(f"spacing must be positive, got {spacing_m!r}")
    xs = spacing_m * np.arange(n, dtype=float)
    return np.column_stack([xs, np.zeros(n)])
