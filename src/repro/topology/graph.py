"""Connectivity graphs from positions and transmission range."""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["connectivity_graph", "ensure_connected_positions", "mean_degree"]


def connectivity_graph(positions: np.ndarray, range_m: float) -> nx.Graph:
    """Unit-disk connectivity graph: edge iff distance ≤ ``range_m``.

    Node ids are row indices of ``positions``.
    """
    if range_m <= 0:
        raise ValueError(f"range must be positive, got {range_m!r}")
    pos = np.asarray(positions, dtype=float)
    n = len(pos)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    if n > 1:
        diff = pos[:, None, :] - pos[None, :, :]
        d = np.hypot(diff[..., 0], diff[..., 1])
        ii, jj = np.nonzero(np.triu(d <= range_m, k=1))
        g.add_edges_from(zip(ii.tolist(), jj.tolist()))
    for i in range(n):
        g.nodes[i]["pos"] = (float(pos[i, 0]), float(pos[i, 1]))
    return g


def ensure_connected_positions(
    generator,
    range_m: float,
    max_tries: int = 200,
) -> np.ndarray:
    """Draw placements from ``generator()`` until the unit-disk graph at
    ``range_m`` is connected.

    Raises
    ------
    RuntimeError
        If no connected placement appears within ``max_tries`` draws
        (density too low for the range).
    """
    for _ in range(max_tries):
        pos = generator()
        if nx.is_connected(connectivity_graph(pos, range_m)):
            return pos
    raise RuntimeError(
        f"no connected placement within {max_tries} tries at range {range_m} m"
    )


def mean_degree(graph: nx.Graph) -> float:
    """Average node degree (network density proxy)."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / n
