"""Polynomial ridge surrogate for pruning candidate evaluations.

A :class:`RidgeSurrogate` fits fitness as a degree-2 polynomial of the
space's normalized feature vector (bias + linear + squares + pairwise
interactions) by closed-form ridge regression — pure numpy, deterministic,
and cheap enough to refit every generation.

:func:`prune_candidates` applies the model to a candidate pool: predicted
fitness strictly below the ``quantile``-quantile of the pool's predictions
is pruned (never simulated).  Every decision is returned as a
:class:`PruneDecision` and persisted in search state files, so a campaign
can always answer *which* configurations were skipped, at what predicted
fitness, against what threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.dse.space import ParameterSpace, Point, point_key

__all__ = ["RidgeSurrogate", "PruneDecision", "prune_candidates"]


class RidgeSurrogate:
    """Degree-2 polynomial ridge regression over normalized parameters."""

    def __init__(
        self,
        space: ParameterSpace,
        degree: int = 2,
        ridge: float = 1e-3,
    ) -> None:
        if degree not in (1, 2):
            raise ValueError(f"degree must be 1 or 2, got {degree}")
        if ridge <= 0:
            raise ValueError(f"ridge must be positive, got {ridge}")
        self.space = space
        self.degree = degree
        self.ridge = ridge
        self._weights: np.ndarray | None = None
        self.n_train = 0

    def _features(self, points: Sequence[Mapping[str, Any]]) -> np.ndarray:
        base = np.stack([self.space.normalize(p) for p in points])
        cols = [np.ones((base.shape[0], 1)), base]
        if self.degree == 2:
            n = base.shape[1]
            cols.append(base**2)
            for i in range(n):
                for j in range(i + 1, n):
                    cols.append((base[:, i] * base[:, j])[:, None])
        return np.hstack(cols)

    def fit(
        self, points: Sequence[Mapping[str, Any]], fitnesses: Sequence[float]
    ) -> "RidgeSurrogate":
        """Fit on evaluated ``(point, fitness)`` pairs; −inf fitnesses
        (poisoned scores) are clamped to the worst finite value so one
        broken configuration cannot blow up the regression."""
        y = np.asarray(list(fitnesses), dtype=float)
        if len(points) != len(y) or len(y) < 2:
            raise ValueError("need ≥ 2 matching training pairs")
        finite = y[np.isfinite(y)]
        floor = float(finite.min()) if finite.size else 0.0
        y = np.where(np.isfinite(y), y, floor)
        X = self._features(points)
        # Closed-form ridge; the bias column is regularised too, which is
        # harmless here (features live in [0, 1]).
        A = X.T @ X + self.ridge * np.eye(X.shape[1])
        self._weights = np.linalg.solve(A, X.T @ y)
        self.n_train = len(y)
        return self

    def predict(self, points: Sequence[Mapping[str, Any]]) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("surrogate is not fitted")
        if not points:
            return np.empty(0)
        return self._features(points) @ self._weights


@dataclass(frozen=True, slots=True)
class PruneDecision:
    """Audit record for one candidate put before the surrogate."""

    point: Point
    predicted: float
    threshold: float
    pruned: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": dict(self.point),
            "predicted": self.predicted,
            "threshold": self.threshold,
            "pruned": self.pruned,
        }


def prune_candidates(
    surrogate: RidgeSurrogate,
    candidates: Sequence[Point],
    quantile: float,
) -> tuple[list[Point], list[PruneDecision]]:
    """Split ``candidates`` into (kept, decisions) by predicted fitness.

    The threshold is the ``quantile``-quantile of the pool's own
    predictions; a candidate is pruned iff its prediction is *strictly*
    below it, so ties survive and the kept set is never empty.  Input
    order is preserved in ``kept``.
    """
    if not 0.0 <= quantile < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {quantile!r}")
    if not candidates:
        return [], []
    preds = surrogate.predict(candidates)
    threshold = float(np.quantile(preds, quantile))
    kept: list[Point] = []
    decisions: list[PruneDecision] = []
    for cand, pred in zip(candidates, preds):
        pruned = bool(pred < threshold)
        decisions.append(
            PruneDecision(dict(cand), float(pred), threshold, pruned)
        )
        if not pruned:
            kept.append(cand)
    return kept, decisions
