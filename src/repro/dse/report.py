"""Decision-support reporting over search/screening state files.

Reads the ``state.json`` a search or screening wrote and renders the
explored space three ways:

* an aligned table of the Pareto front (then the dominated rest), with
  per-dimension values, objective means, and weighted fitness;
* CSV of every evaluated point (spreadsheet-ready);
* an ASCII scatter of any two objectives, front points starred — the
  sixty-column view of the trade-off surface.
"""

from __future__ import annotations

import io
import json
import math
from pathlib import Path
from typing import Any, Sequence

from repro.dse.evaluate import PointEval
from repro.dse.evolve import STATE_SCHEMA, GenerationRecord, population_hash
from repro.dse.objectives import Objective, pareto_front
from repro.dse.space import ParameterSpace
from repro.metrics.summary import format_table

__all__ = [
    "SearchState",
    "load_state",
    "pareto_table",
    "to_csv",
    "ascii_scatter",
]


class SearchState:
    """Parsed state file: space, objectives, generations, archive."""

    def __init__(self, data: dict[str, Any], path: Path) -> None:
        if data.get("schema") != STATE_SCHEMA:
            raise ValueError(
                f"{path}: unsupported state schema {data.get('schema')!r}"
            )
        self.path = path
        self.kind: str = data.get("kind", "evolve")
        self.space = ParameterSpace.from_dict(data["space"])
        self.objectives = [Objective.from_dict(o) for o in data["objectives"]]
        self.settings: dict[str, Any] = dict(data.get("settings", {}))
        self.base_config: dict[str, Any] = dict(data.get("base_config", {}))
        self.generations = [
            GenerationRecord.from_dict(g) for g in data.get("generations", [])
        ]
        if not self.generations:
            raise ValueError(f"{path}: state has no completed generations")

    @property
    def archive(self) -> list[PointEval]:
        """Distinct evaluated points in first-evaluation order."""
        seen: dict[str, PointEval] = {}
        for gen in self.generations:
            for ev in gen.population:
                seen.setdefault(ev.key, ev)
        return list(seen.values())

    @property
    def final_population_hash(self) -> str:
        return population_hash(self.generations[-1].population)

    @property
    def evaluations_pruned(self) -> int:
        return sum(
            1 for g in self.generations for d in g.prune_log if d.pruned
        )

    def pareto(self) -> list[PointEval]:
        archive = self.archive
        idx = pareto_front([e.objectives for e in archive], self.objectives)
        return [archive[i] for i in idx]

    def best(self) -> PointEval:
        return max(self.archive, key=lambda e: (e.fitness, e.key))


def load_state(out_dir: str | Path) -> SearchState:
    """Load ``<out_dir>/state.json`` (or a direct file path)."""
    path = Path(out_dir)
    if path.is_dir():
        path = path / "state.json"
    if not path.exists():
        raise FileNotFoundError(f"no DSE state at {path}")
    with path.open() as fh:
        return SearchState(json.load(fh), path)


def _rows(
    evals: Sequence[PointEval],
    space: ParameterSpace,
    objectives: Sequence[Objective],
    front_keys: set[str],
) -> list[list[Any]]:
    rows = []
    for ev in evals:
        rows.append(
            ["*" if ev.key in front_keys else ""]
            + [ev.point[d.name] for d in space.dimensions]
            + [ev.objectives[o.key] for o in objectives]
            + [ev.fitness, ev.generation]
        )
    return rows


def pareto_table(state: SearchState, top: int = 0) -> str:
    """Aligned table: Pareto front first (starred), then the rest by
    fitness; ``top`` > 0 limits the number of printed rows."""
    front = state.pareto()
    front_keys = {e.key for e in front}
    rest = sorted(
        (e for e in state.archive if e.key not in front_keys),
        key=lambda e: (-e.fitness, e.key),
    )
    ordered = sorted(front, key=lambda e: (-e.fitness, e.key)) + rest
    if top > 0:
        ordered = ordered[:top]
    headers = (
        ["front"]
        + [d.name for d in state.space.dimensions]
        + [f"{o.key} ({o.goal})" for o in state.objectives]
        + ["fitness", "gen"]
    )
    table = format_table(
        headers,
        _rows(ordered, state.space, state.objectives, front_keys),
        title=(
            f"{state.space.name}: {len(state.archive)} evaluated, "
            f"{len(front)} on Pareto front, "
            f"{state.evaluations_pruned} pruned by surrogate"
        ),
    )
    return table


def to_csv(state: SearchState) -> str:
    """CSV of every evaluated point (front flag, dims, objectives)."""
    import csv

    front_keys = {e.key for e in state.pareto()}
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        ["front"]
        + [d.name for d in state.space.dimensions]
        + [o.key for o in state.objectives]
        + ["fitness", "generation"]
    )
    for ev in state.archive:
        writer.writerow(
            [1 if ev.key in front_keys else 0]
            + [ev.point[d.name] for d in state.space.dimensions]
            + [ev.objectives[o.key] for o in state.objectives]
            + [ev.fitness, ev.generation]
        )
    return buf.getvalue()


def ascii_scatter(
    state: SearchState,
    x_key: str | None = None,
    y_key: str | None = None,
    width: int = 60,
    height: int = 18,
) -> str:
    """Two objectives as an ASCII scatter; Pareto-front points are ``*``,
    dominated points ``·``.  Defaults to the first two objectives."""
    objectives = state.objectives
    if len(objectives) < 2 and (x_key is None or y_key is None):
        raise ValueError("need two objectives (or explicit --x/--y) to scatter")
    x_key = x_key or objectives[0].key
    y_key = y_key or objectives[1].key
    front_keys = {e.key for e in state.pareto()}
    pts = [
        (e.objectives[x_key], e.objectives[y_key], e.key in front_keys)
        for e in state.archive
        if not (
            math.isnan(e.objectives[x_key]) or math.isnan(e.objectives[y_key])
        )
    ]
    if not pts:
        raise ValueError(f"no finite ({x_key}, {y_key}) points to plot")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    # Draw dominated points first so front stars are never overwritten.
    for x, y, on_front in sorted(pts, key=lambda p: p[2]):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = height - 1 - min(
            height - 1, int((y - y_lo) / y_span * (height - 1))
        )
        grid[row][col] = "*" if on_front else "·"
    lines = [f"{state.space.name}: {y_key} vs {x_key}  (* = Pareto front)"]
    lines.append(f"{y_hi:>12.4g} ┐")
    for row in grid:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_lo:>12.4g} ┘")
    lines.append(
        " " * 14 + f"{x_lo:<.4g}".ljust(width - 8) + f"{x_hi:>.4g}"
    )
    lines.append(" " * 14 + x_key)
    return "\n".join(lines)
