"""Design-space exploration over NLR protocol parameters.

Public surface:

* :mod:`repro.dse.space` — typed :class:`ParameterSpace` (continuous /
  integer / categorical dimensions) bound declaratively onto
  :class:`~repro.experiments.scenario.ScenarioConfig` fields;
* :mod:`repro.dse.design` — full-factorial and Latin-hypercube builders;
* :mod:`repro.dse.evolve` — seeded, resumable evolutionary search whose
  evaluations run as content-hashed :mod:`repro.exec` cells;
* :mod:`repro.dse.screen` — design screening with surrogate pruning;
* :mod:`repro.dse.surrogate` — numpy polynomial-ridge surrogate;
* :mod:`repro.dse.objectives` — objectives, weighted scoring, Pareto
  fronts (multi-criteria decision support);
* :mod:`repro.dse.report` — tables / CSV / ASCII scatter over state files;
* :mod:`repro.dse.cli` — the ``repro-dse`` entry point.

See ``docs/DSE.md`` for the space JSON schema and the reproducibility
guarantees (deterministic seeds, kill-and-resume byte-identity, audited
surrogate pruning).
"""

from repro.dse.design import full_factorial, latin_hypercube
from repro.dse.evaluate import Evaluator, PointEval
from repro.dse.evolve import (
    EvolutionarySearch,
    GenerationRecord,
    SearchResult,
    SearchSettings,
    population_hash,
)
from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    Objective,
    aggregate_objectives,
    parse_objective,
    pareto_front,
    weighted_score,
)
from repro.dse.report import ascii_scatter, load_state, pareto_table, to_csv
from repro.dse.screen import ScreenResult, ScreenSettings, run_screening
from repro.dse.space import (
    CategoricalDim,
    ContinuousDim,
    IntegerDim,
    ParameterSpace,
    point_key,
    seeded_rng,
)
from repro.dse.surrogate import PruneDecision, RidgeSurrogate, prune_candidates

__all__ = [
    "CategoricalDim",
    "ContinuousDim",
    "DEFAULT_OBJECTIVES",
    "Evaluator",
    "EvolutionarySearch",
    "GenerationRecord",
    "IntegerDim",
    "Objective",
    "ParameterSpace",
    "PointEval",
    "PruneDecision",
    "RidgeSurrogate",
    "ScreenResult",
    "ScreenSettings",
    "SearchResult",
    "SearchSettings",
    "aggregate_objectives",
    "ascii_scatter",
    "full_factorial",
    "latin_hypercube",
    "load_state",
    "pareto_front",
    "pareto_table",
    "parse_objective",
    "point_key",
    "population_hash",
    "prune_candidates",
    "run_screening",
    "seeded_rng",
    "to_csv",
    "weighted_score",
]
