"""Evaluation adapter: parameter points → exec campaign cells → objectives.

The :class:`Evaluator` is the bridge between search algorithms and the
campaign fabric.  Each point is bound onto the base config, replicated
across ``n_seeds`` consecutive seeds, and the whole batch runs as one
:class:`~repro.exec.task.Campaign` through the
:class:`~repro.exec.scheduler.CampaignExecutor` — so every evaluation is a
content-hashed cell with per-cell checkpointing, worker-pool parallelism,
crash quarantine, and byte-identical parallel-vs-serial aggregates, none
of which this module has to reimplement.

Checkpoint resume is forced on: a killed search re-runs its evaluation
batches, but every cell that already completed loads from its checkpoint,
which is what makes kill-and-resume produce byte-identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.dse.objectives import (
    Objective,
    aggregate_objectives,
    weighted_score,
)
from repro.dse.space import ParameterSpace, Point, point_key
from repro.exec.policy import ExecPolicy, current_policy
from repro.exec.scheduler import CampaignExecutor
from repro.exec.task import Campaign, Task
from repro.experiments.scenario import ScenarioConfig

__all__ = ["PointEval", "Evaluator"]


@dataclass(slots=True)
class PointEval:
    """Aggregated outcome of evaluating one point.

    ``objectives`` holds the across-seed mean per objective key;
    ``fitness`` the weighted score the search climbs; ``per_seed`` the raw
    per-replicate values for CI reporting.
    """

    point: Point
    objectives: dict[str, float]
    fitness: float
    per_seed: list[dict[str, float]] = field(default_factory=list)
    generation: int = 0

    @property
    def key(self) -> str:
        return point_key(self.point)

    def to_dict(self) -> dict[str, Any]:
        return {
            "point": dict(self.point),
            "objectives": dict(self.objectives),
            "fitness": self.fitness,
            "per_seed": [dict(s) for s in self.per_seed],
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointEval":
        return cls(
            point=dict(data["point"]),
            objectives=dict(data["objectives"]),
            fitness=float(data["fitness"]),
            per_seed=[dict(s) for s in data.get("per_seed", [])],
            generation=int(data.get("generation", 0)),
        )


class Evaluator:
    """Runs points through the exec fabric and caches their outcomes.

    The cache is keyed on the point's canonical JSON: a point that
    reappears (an elite carried over, a mutation landing on explored
    ground) costs nothing.  On resume, recorded evaluations are replayed
    into the cache via :meth:`absorb` so completed generations never touch
    the executor at all.
    """

    def __init__(
        self,
        space: ParameterSpace,
        base: ScenarioConfig,
        objectives: Sequence[Objective],
        n_seeds: int = 1,
        policy: ExecPolicy | None = None,
        campaign_prefix: str = "dse",
    ) -> None:
        if n_seeds < 1:
            raise ValueError(f"n_seeds must be ≥ 1, got {n_seeds}")
        self.space = space
        self.base = base
        self.objectives = list(objectives)
        self.n_seeds = n_seeds
        base_policy = policy if policy is not None else current_policy()
        # Content-hashed cells make resume free and kill-safe; never run
        # a search without it.
        self.policy = replace(base_policy, resume=True, checkpoint=True)
        self.campaign_prefix = campaign_prefix
        self._cache: dict[str, PointEval] = {}
        self.simulations_run = 0

    # ------------------------------------------------------------------ #
    @property
    def archive(self) -> list[PointEval]:
        """Every distinct evaluated point, in first-evaluation order."""
        return list(self._cache.values())

    def absorb(self, evals: Sequence[PointEval]) -> None:
        """Seed the cache with recorded evaluations (state-file replay)."""
        for ev in evals:
            self._cache.setdefault(ev.key, ev)

    def configs_for(self, point: Point) -> list[ScenarioConfig]:
        """The replicate-seed configs one point expands into."""
        bound = self.space.bind(self.base, point)
        return [
            replace(bound, seed=self.base.seed + k) for k in range(self.n_seeds)
        ]

    # ------------------------------------------------------------------ #
    def evaluate(
        self, points: Sequence[Point], label: str, generation: int = 0
    ) -> list[PointEval]:
        """Evaluate ``points`` (one campaign), returning aligned outcomes.

        Duplicate and previously seen points are served from the cache;
        only genuinely new cells reach the executor.
        """
        points = [self.space.validate_point(p) for p in points]
        fresh: list[tuple[str, Point]] = []
        seen: set[str] = set()
        for p in points:
            k = point_key(p)
            if k in self._cache or k in seen:
                continue
            seen.add(k)
            fresh.append((k, p))

        if fresh:
            if self.policy.adaptive is not None and self.n_seeds >= 2:
                grouped = self._run_adaptive(fresh, label)
            else:
                grouped = self._run_fixed(fresh, label)
            for (k, p) in fresh:
                mine = grouped[k]
                values = aggregate_objectives(mine, self.objectives)
                per_seed = [
                    {o.key: float(vals[o.key]) for o in self.objectives}
                    for vals in (
                        aggregate_objectives([r], self.objectives) for r in mine
                    )
                ]
                self._cache[k] = PointEval(
                    point=dict(p),
                    objectives=values,
                    fitness=weighted_score(values, self.objectives),
                    per_seed=per_seed,
                    generation=generation,
                )
        return [self._cache[point_key(p)] for p in points]

    # ------------------------------------------------------------------ #
    def _run_fixed(
        self, fresh: Sequence[tuple[str, Point]], label: str
    ) -> dict[str, list]:
        """Fixed seed budget: every point buys exactly ``n_seeds`` cells."""
        tasks: list[Task] = []
        owners: list[str] = []
        for k, p in fresh:
            for cfg in self.configs_for(p):
                tasks.append(
                    Task(cfg, tag=f"{label} {self._short(p)} s{cfg.seed}")
                )
                owners.append(k)
        campaign = Campaign(f"{self.campaign_prefix}-{label}", tasks)
        outcomes = CampaignExecutor(policy=self.policy).run(campaign)
        results = outcomes.results()  # raises on any failed cell
        self.simulations_run += sum(
            1 for o in outcomes.outcomes if o.source == "run"
        )
        grouped: dict[str, list] = {k: [] for k, _ in fresh}
        for owner, result in zip(owners, results):
            grouped[owner].append(result)
        return grouped

    def _run_adaptive(
        self, fresh: Sequence[tuple[str, Point]], label: str
    ) -> dict[str, list]:
        """Sequential-CI stopping: ``n_seeds`` becomes a per-point budget.

        Each wave is one campaign across every unconverged point, so the
        search still parallelises across the generation; per-point results
        remain a seed-ladder prefix of the fixed-budget ladder, keeping
        kill-and-resume byte-identity (the same cells are simply re-bought
        from checkpoints in the same order).
        """
        from repro.exec.adaptive import run_adaptive_cells
        from repro.experiments.cache import cache_dir

        def run_fn(name, configs, policy=None, tags=None):
            campaign = Campaign.from_configs(name, configs, tags=tags)
            outcome = CampaignExecutor(policy=self.policy).run(campaign)
            self.simulations_run += sum(
                1 for o in outcome.outcomes if o.source == "run"
            )
            return outcome.results()

        log_dir = self.policy.log_dir or cache_dir() / "runs"
        report = run_adaptive_cells(
            f"{self.campaign_prefix}-{label}",
            [(k, self.space.bind(self.base, p)) for k, p in fresh],
            n_budget=self.n_seeds,
            adaptive=self.policy.adaptive,
            policy=self.policy,
            audit_path=log_dir / f"adaptive-{self.campaign_prefix}.jsonl",
            run_fn=run_fn,
        )
        return report.results

    @staticmethod
    def _short(point: Point) -> str:
        return ",".join(
            f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
            for k, v in point.items()
        )
