"""Design screening: factorial / Latin-hypercube sweeps with surrogate
pruning of predictably poor cells.

The flow mirrors response-surface practice: enumerate the design, simulate
a seeded training subset, fit the ridge surrogate on it, predict the rest,
and only simulate cells whose predicted fitness clears the configured
quantile of the remaining pool — everything below is *pruned*, logged, and
never simulated.  With the surrogate off, every design cell is simulated.

Determinism mirrors the evolutionary loop: the train-subset shuffle is
keyed on the seed alone, evaluations are content-hashed exec cells, and
the final state file records design, decisions, and outcomes, so a
screening is resumable and byte-reproducible.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.dse.design import full_factorial, latin_hypercube
from repro.dse.evaluate import Evaluator, PointEval
from repro.dse.evolve import STATE_SCHEMA, population_hash
from repro.dse.objectives import Objective, pareto_front
from repro.dse.space import ParameterSpace, Point, seeded_rng
from repro.dse.surrogate import PruneDecision, RidgeSurrogate, prune_candidates
from repro.exec.policy import ExecPolicy
from repro.experiments.cache import atomic_write_json
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_to_dict

__all__ = ["ScreenSettings", "ScreenResult", "run_screening"]

# RNG stage key for the train-subset shuffle (distinct from evolve's).
_STAGE_SHUFFLE = 2


@dataclass(frozen=True, slots=True)
class ScreenSettings:
    """Screening knobs.

    ``levels`` drives a full factorial design; set ``lhs_n`` > 0 to use an
    ``lhs_n``-point Latin hypercube instead.  ``train_fraction`` of the
    design (at least ``surrogate_min_train`` cells) is always simulated to
    fit the surrogate before any pruning happens.
    """

    levels: int = 3
    lhs_n: int = 0
    seed: int = 1
    n_seeds: int = 1
    surrogate: bool = True
    prune_quantile: float = 0.25
    train_fraction: float = 0.4
    surrogate_min_train: int = 8

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError(f"levels must be ≥ 1, got {self.levels}")
        if self.lhs_n < 0:
            raise ValueError(f"lhs_n must be ≥ 0, got {self.lhs_n}")
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be ≥ 1, got {self.n_seeds}")
        if not 0.0 <= self.prune_quantile < 1.0:
            raise ValueError("prune_quantile must be in [0, 1)")
        if not 0.0 < self.train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        if self.surrogate_min_train < 2:
            raise ValueError("surrogate_min_train must be ≥ 2")

    def to_dict(self) -> dict[str, Any]:
        return {
            "levels": self.levels,
            "lhs_n": self.lhs_n,
            "seed": self.seed,
            "n_seeds": self.n_seeds,
            "surrogate": self.surrogate,
            "prune_quantile": self.prune_quantile,
            "train_fraction": self.train_fraction,
            "surrogate_min_train": self.surrogate_min_train,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScreenSettings":
        return cls(**dict(data))


class ScreenResult:
    """Outcome of one screening: evaluated cells, prune log, and views."""

    def __init__(
        self,
        space: ParameterSpace,
        objectives: Sequence[Objective],
        design_size: int,
        evaluated: list[PointEval],
        prune_log: list[PruneDecision],
        simulations_run: int,
    ) -> None:
        self.space = space
        self.objectives = list(objectives)
        self.design_size = design_size
        self.evaluated = evaluated
        self.prune_log = prune_log
        self.simulations_run = simulations_run

    @property
    def best(self) -> PointEval:
        return max(self.evaluated, key=lambda e: (e.fitness, e.key))

    def pareto(self) -> list[PointEval]:
        idx = pareto_front(
            [e.objectives for e in self.evaluated], self.objectives
        )
        return [self.evaluated[i] for i in idx]

    @property
    def evaluations_pruned(self) -> int:
        return sum(1 for d in self.prune_log if d.pruned)

    @property
    def evaluated_hash(self) -> str:
        return population_hash(self.evaluated)


def run_screening(
    space: ParameterSpace,
    base: ScenarioConfig,
    settings: ScreenSettings = ScreenSettings(),
    objectives: Sequence[Objective] | None = None,
    out_dir: str | Path | None = None,
    policy: ExecPolicy | None = None,
) -> ScreenResult:
    """Screen a design over ``space`` anchored at ``base``; see module doc."""
    from repro.dse.objectives import DEFAULT_OBJECTIVES

    objectives = list(objectives if objectives is not None else DEFAULT_OBJECTIVES)
    evaluator = Evaluator(
        space,
        base,
        objectives,
        n_seeds=settings.n_seeds,
        policy=policy,
        campaign_prefix=f"dse-{space.name}",
    )

    if settings.lhs_n > 0:
        design = latin_hypercube(
            space, settings.lhs_n, seeded_rng(settings.seed, _STAGE_SHUFFLE, 1)
        )
    else:
        design = full_factorial(space, settings.levels)
    design = [space.validate_point(p) for p in design]

    prune_log: list[PruneDecision] = []
    if settings.surrogate and len(design) > settings.surrogate_min_train:
        order = seeded_rng(settings.seed, _STAGE_SHUFFLE, 0).permutation(
            len(design)
        )
        n_train = min(
            len(design),
            max(
                settings.surrogate_min_train,
                math.ceil(settings.train_fraction * len(design)),
            ),
        )
        train = [design[int(i)] for i in order[:n_train]]
        rest = [design[int(i)] for i in order[n_train:]]
        train_evals = evaluator.evaluate(train, "screen-train")
        if rest:
            model = RidgeSurrogate(space).fit(
                [e.point for e in train_evals],
                [e.fitness for e in train_evals],
            )
            kept, prune_log = prune_candidates(
                model, rest, settings.prune_quantile
            )
            evaluator.evaluate(kept, "screen-rest")
    else:
        evaluator.evaluate(design, "screen-full")

    result = ScreenResult(
        space,
        objectives,
        design_size=len(design),
        evaluated=evaluator.archive,
        prune_log=prune_log,
        simulations_run=evaluator.simulations_run,
    )
    if out_dir is not None:
        atomic_write_json(
            Path(out_dir) / "state.json",
            {
                "schema": STATE_SCHEMA,
                "kind": "screen",
                "space": space.to_dict(),
                "settings": settings.to_dict(),
                "objectives": [o.to_dict() for o in objectives],
                "base_config": config_to_dict(base),
                "design_size": len(design),
                "generations": [
                    {
                        "index": 0,
                        "population": [e.to_dict() for e in result.evaluated],
                        "prune_log": [d.to_dict() for d in prune_log],
                    }
                ],
            },
        )
    return result
