"""``repro-dse``: design-space exploration from the command line.

Usage::

    repro-dse template -o space.json            # bundled example space
    repro-dse search --space space.json --out results/dse/run1 \\
        --generations 6 --population 12 --workers 4
    repro-dse search --space space.json --out results/dse/run1 --resume
    repro-dse screen --space space.json --out results/dse/fact \\
        --levels 3 --prune-quantile 0.25
    repro-dse report results/dse/run1                 # Pareto table
    repro-dse report results/dse/run1 --format csv -o front.csv
    repro-dse report results/dse/run1 --format scatter --x pdr --y mean_delay_s

(or ``python -m repro.dse ...`` without installing the entry point).
Searches print their final population hash; a resumed run after a kill
must reproduce the hash of an uninterrupted run byte-for-byte — CI
asserts exactly that.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.dse.evolve import EvolutionarySearch, SearchSettings
from repro.dse.objectives import DEFAULT_OBJECTIVES, parse_objective
from repro.dse.report import ascii_scatter, load_state, pareto_table, to_csv
from repro.dse.screen import ScreenSettings, run_screening
from repro.dse.space import ParameterSpace
from repro.exec.adaptive import parse_adaptive_spec
from repro.exec.policy import BACKEND_CHOICES, ExecPolicy
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import load_config

__all__ = ["main", "EXAMPLE_SPACE"]

#: The bundled example space: the NLR tunables the paper hand-sets,
#: bounded to their meaningful ranges (see docs/DSE.md).
EXAMPLE_SPACE: dict = {
    "name": "nlr-tuning",
    "dimensions": [
        {"name": "gamma", "field": "nlr.gamma", "type": "continuous",
         "low": 0.0, "high": 1.0},
        {"name": "p_min", "field": "nlr.p_min", "type": "continuous",
         "low": 0.1, "high": 0.8},
        {"name": "queue_weight", "field": "nlr.queue_weight",
         "type": "continuous", "low": 0.0, "high": 1.0},
        {"name": "own_weight", "field": "nlr.own_weight",
         "type": "continuous", "low": 0.0, "high": 1.0},
        {"name": "hop_weight", "field": "nlr.hop_weight",
         "type": "continuous", "low": 0.0, "high": 1.0},
        {"name": "rerr_limit", "field": "aodv.rerr_rate_limit_per_s",
         "type": "integer", "low": 2, "high": 30},
    ],
}


def _add_exec_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for evaluation cells (default 1 = serial)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock budget in seconds",
    )
    p.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="auto",
        help="execution backend (auto = serial at --workers 1, else pool)",
    )
    p.add_argument(
        "--adaptive", default=None, metavar="METRIC:HW[:MIN_REPS]",
        help="with --n-seeds ≥ 2: stop replicating a point once METRIC's "
             "CI half-width is ≤ HW; --n-seeds becomes the budget",
    )
    p.add_argument(
        "--no-adaptive", action="store_true",
        help="force the fixed seed budget (the default; wins over --adaptive)",
    )


def _add_common_search_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--space", required=True, help="parameter-space JSON file")
    p.add_argument(
        "--base", default=None, metavar="CONFIG.json",
        help="base ScenarioConfig JSON (default: a small NLR grid scenario)",
    )
    p.add_argument("--out", required=True, help="output directory for state.json")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--n-seeds", type=int, default=1, metavar="K",
        help="replicate seeds per evaluated point (default 1)",
    )
    p.add_argument(
        "--objective", action="append", default=None, metavar="KEY:GOAL[:W[:S]]",
        help="objective spec, repeatable (default: pdr:max, mean_delay_s:min, "
        "normalized_routing_load:min)",
    )
    p.add_argument(
        "--no-surrogate", action="store_true",
        help="disable surrogate pruning (evaluate every candidate)",
    )
    p.add_argument(
        "--prune-quantile", type=float, default=None, metavar="Q",
        help="prune candidates predicted below this quantile",
    )
    _add_exec_args(p)


def _base_config(args) -> ScenarioConfig:
    if args.base:
        return load_config(args.base)
    # A deliberately small default so `repro-dse` is usable out of the box;
    # real campaigns pass --base with their scenario of record.
    return ScenarioConfig(
        protocol="nlr", grid_nx=4, grid_ny=4, n_flows=4,
        sim_time_s=30.0, warmup_s=5.0, seed=args.seed,
    )


def _objectives(args):
    if args.objective:
        return tuple(parse_objective(s) for s in args.objective)
    return DEFAULT_OBJECTIVES


def _policy(args) -> ExecPolicy:
    adaptive = None
    if getattr(args, "adaptive", None) and not getattr(args, "no_adaptive", False):
        adaptive = parse_adaptive_spec(args.adaptive)
    return ExecPolicy(
        workers=args.workers,
        task_timeout_s=args.task_timeout,
        backend=getattr(args, "backend", "auto"),
        adaptive=adaptive,
        progress=args.workers > 1,
    )


def _print_outcome(kind: str, result, out: Path) -> None:
    best = result.best
    print(f"{kind} done: {len(result.pareto())} Pareto points, "
          f"{result.simulations_run} simulations run, "
          f"{result.evaluations_pruned} evaluations pruned")
    print(f"best (weighted): {json.dumps(best.point, sort_keys=True)} "
          f"fitness={best.fitness:.6g}")
    for key in sorted(best.objectives):
        print(f"  {key} = {best.objectives[key]:.6g}")
    print(f"state: {out / 'state.json'}")


def cmd_template(args) -> int:
    text = json.dumps(EXAMPLE_SPACE, indent=2) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    return 0


def cmd_search(args) -> int:
    space = ParameterSpace.load(args.space)
    settings = SearchSettings(
        population=args.population,
        generations=args.generations,
        seed=args.seed,
        n_seeds=args.n_seeds,
        elites=args.elites,
        surrogate=not args.no_surrogate,
        **(
            {"prune_quantile": args.prune_quantile}
            if args.prune_quantile is not None
            else {}
        ),
    )
    out = Path(args.out)
    search = EvolutionarySearch(
        space,
        _base_config(args),
        settings,
        objectives=_objectives(args),
        out_dir=out,
        policy=_policy(args),
    )
    result = search.run(resume=args.resume)
    _print_outcome("search", result, out)
    print(f"final population hash: {result.final_population_hash}")
    return 0


def cmd_screen(args) -> int:
    space = ParameterSpace.load(args.space)
    settings = ScreenSettings(
        levels=args.levels,
        lhs_n=args.lhs,
        seed=args.seed,
        n_seeds=args.n_seeds,
        surrogate=not args.no_surrogate,
        **(
            {"prune_quantile": args.prune_quantile}
            if args.prune_quantile is not None
            else {}
        ),
    )
    out = Path(args.out)
    result = run_screening(
        space,
        _base_config(args),
        settings,
        objectives=_objectives(args),
        out_dir=out,
        policy=_policy(args),
    )
    print(f"design: {result.design_size} cells, "
          f"{len(result.evaluated)} evaluated, "
          f"{result.evaluations_pruned} pruned by surrogate")
    _print_outcome("screen", result, out)
    print(f"evaluated hash: {result.evaluated_hash}")
    return 0


def cmd_report(args) -> int:
    state = load_state(args.out_dir)
    if args.format == "table":
        text = pareto_table(state, top=args.top)
    elif args.format == "csv":
        text = to_csv(state)
    else:
        text = ascii_scatter(state, x_key=args.x, y_key=args.y)
    if args.output and args.output != "-":
        Path(args.output).write_text(
            text if text.endswith("\n") else text + "\n"
        )
        print(f"wrote {args.output}")
    else:
        print(text)
    if args.format == "table":
        print(f"\nfinal population hash: {state.final_population_hash}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dse",
        description="Design-space exploration over NLR protocol parameters.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("template", help="write the bundled example space")
    p.add_argument("-o", "--output", default="-", help="file or - for stdout")
    p.set_defaults(func=cmd_template)

    p = sub.add_parser("search", help="evolutionary search")
    _add_common_search_args(p)
    p.add_argument("--generations", type=int, default=6)
    p.add_argument("--population", type=int, default=12)
    p.add_argument("--elites", type=int, default=2)
    p.add_argument(
        "--resume", action="store_true",
        help="continue from <out>/state.json and per-cell checkpoints",
    )
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("screen", help="factorial / LHS screening")
    _add_common_search_args(p)
    p.add_argument(
        "--levels", type=int, default=3,
        help="factorial levels per dimension (default 3)",
    )
    p.add_argument(
        "--lhs", type=int, default=0, metavar="N",
        help="use an N-point Latin hypercube instead of a factorial",
    )
    p.set_defaults(func=cmd_screen)

    p = sub.add_parser("report", help="Pareto front from a state file")
    p.add_argument("out_dir", help="search output dir (or state.json path)")
    p.add_argument(
        "--format", choices=("table", "csv", "scatter"), default="table"
    )
    p.add_argument("--top", type=int, default=0, help="limit table rows")
    p.add_argument("--x", default=None, help="scatter x objective")
    p.add_argument("--y", default=None, help="scatter y objective")
    p.add_argument("-o", "--output", default=None, help="write to file")
    p.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, FileNotFoundError, KeyError) as exc:
        print(f"repro-dse: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
