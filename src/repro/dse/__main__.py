"""``python -m repro.dse`` — the :mod:`repro.dse.cli` entry point."""

from repro.dse.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
