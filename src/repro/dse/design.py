"""Deterministic design builders: full factorial and Latin hypercube.

Both return plain lists of points (``{dim: value}`` dicts) in a stable
order, so a design enumerated twice — or on two machines — yields the same
campaign cells in the same order.
"""

from __future__ import annotations

import itertools
from typing import Any

import numpy as np

from repro.dse.space import ParameterSpace, Point

__all__ = ["full_factorial", "latin_hypercube"]


def full_factorial(space: ParameterSpace, levels: int = 3) -> list[Point]:
    """Cartesian product of per-dimension factorial levels.

    Continuous dimensions get ``levels`` evenly spaced values including
    both bounds; integer dimensions get up to ``levels`` distinct evenly
    spaced integers; categorical dimensions always contribute every
    choice.  Order is lexicographic in dimension order (last dimension
    fastest), matching :func:`itertools.product`.
    """
    if levels < 1:
        raise ValueError(f"levels must be ≥ 1, got {levels}")
    axes: list[list[Any]] = [d.levels(levels) for d in space.dimensions]
    names = [d.name for d in space.dimensions]
    return [
        dict(zip(names, combo)) for combo in itertools.product(*axes)
    ]


def latin_hypercube(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> list[Point]:
    """``n`` points with stratified (one-per-stratum) marginal coverage.

    Continuous and integer dimensions are stratified into ``n`` equal
    slices with one uniform draw per slice, shuffled independently per
    dimension; categorical dimensions cycle through their choices in a
    shuffled order so every choice appears ⌊n/k⌋ or ⌈n/k⌉ times.
    """
    if n < 1:
        raise ValueError(f"n must be ≥ 1, got {n}")
    columns: dict[str, list[Any]] = {}
    for d in space.dimensions:
        if d.kind == "categorical":
            reps = [d.choices[i % len(d.choices)] for i in range(n)]
            order = rng.permutation(n)
            columns[d.name] = [reps[i] for i in order]
        else:
            strata = (np.arange(n) + rng.uniform(0.0, 1.0, size=n)) / n
            values = [
                d.clip(d.low + s * (d.high - d.low)) for s in strata
            ]
            order = rng.permutation(n)
            columns[d.name] = [values[i] for i in order]
    return [
        {name: columns[name][i] for name in (d.name for d in space.dimensions)}
        for i in range(n)
    ]
