"""Typed parameter spaces mapped declaratively onto scenario configs.

A :class:`ParameterSpace` is an ordered set of named dimensions —
continuous, integer, or categorical — each bound to one field of
:class:`~repro.experiments.scenario.ScenarioConfig` by a dotted path
(``"nlr.gamma"``, ``"aodv.rerr_rate_limit_per_s"``, ``"gossip_p"``).
A *point* is a plain ``{dim_name: value}`` dict; :meth:`ParameterSpace.bind`
turns base config + point into a fully validated ``ScenarioConfig`` by
round-tripping through the config's own JSON serialisation, so every
constructor check (gamma bounds, p_min ≤ p_max, …) fires before any
simulation is scheduled.

Spaces themselves serialise to JSON (:meth:`to_dict`/:meth:`from_dict`),
which is how the ``repro-dse`` CLI defines them and how search state files
record exactly what was explored.

Everything that draws randomness takes an explicit
:class:`numpy.random.Generator`; the space holds no RNG state of its own.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_from_dict, config_to_dict
from repro.util.validation import canonical_json_value

__all__ = [
    "ContinuousDim",
    "IntegerDim",
    "CategoricalDim",
    "ParameterSpace",
    "point_key",
    "seeded_rng",
]

#: A point is a plain mapping of dimension name → JSON-native value.
Point = dict[str, Any]


def point_key(point: Mapping[str, Any]) -> str:
    """Canonical JSON identity of a point (sorted keys, exact floats)."""
    return json.dumps(dict(point), sort_keys=True)


@dataclass(frozen=True, slots=True)
class ContinuousDim:
    """A real-valued dimension on the closed interval [low, high]."""

    name: str
    field: str
    low: float
    high: float

    kind = "continuous"

    def __post_init__(self) -> None:
        _check_name(self.name, self.field)
        if not (
            math.isfinite(self.low)
            and math.isfinite(self.high)
            and self.low < self.high
        ):
            raise ValueError(
                f"dimension {self.name!r}: need finite low < high, "
                f"got [{self.low!r}, {self.high!r}]"
            )

    def clip(self, value: float) -> float:
        return float(min(self.high, max(self.low, float(value))))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mutate(self, value: float, rng: np.random.Generator, sigma: float) -> float:
        """Gaussian perturbation with σ relative to the dimension span."""
        return self.clip(value + rng.normal(0.0, sigma * (self.high - self.low)))

    def normalize(self, value: float) -> list[float]:
        return [(float(value) - self.low) / (self.high - self.low)]

    def levels(self, n: int) -> list[float]:
        """``n`` evenly spaced factorial levels including both bounds."""
        if n < 2:
            return [float((self.low + self.high) / 2.0)]
        return [float(v) for v in np.linspace(self.low, self.high, n)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "field": self.field, "type": self.kind,
            "low": self.low, "high": self.high,
        }


@dataclass(frozen=True, slots=True)
class IntegerDim:
    """An integer dimension on the closed range [low, high]."""

    name: str
    field: str
    low: int
    high: int

    kind = "integer"

    def __post_init__(self) -> None:
        _check_name(self.name, self.field)
        if not (
            isinstance(self.low, int) and isinstance(self.high, int)
            and self.low < self.high
        ):
            raise ValueError(
                f"dimension {self.name!r}: need integer low < high, "
                f"got [{self.low!r}, {self.high!r}]"
            )

    def clip(self, value: float) -> int:
        return int(min(self.high, max(self.low, int(round(float(value))))))

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def mutate(self, value: int, rng: np.random.Generator, sigma: float) -> int:
        """Creep mutation: a ±step walk scaled to the range, never a no-op
        step draw (a zero step would make small ranges mutation-dead)."""
        span = self.high - self.low
        step_max = max(1, int(round(sigma * span)))
        step = int(rng.integers(1, step_max + 1))
        sign = 1 if rng.random() < 0.5 else -1
        return self.clip(int(value) + sign * step)

    def normalize(self, value: int) -> list[float]:
        return [(float(value) - self.low) / (self.high - self.low)]

    def levels(self, n: int) -> list[int]:
        """Up to ``n`` distinct evenly spaced integer levels."""
        raw = np.linspace(self.low, self.high, min(n, self.high - self.low + 1))
        out: list[int] = []
        for v in raw:
            iv = int(round(float(v)))
            if not out or iv != out[-1]:
                out.append(iv)
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "field": self.field, "type": self.kind,
            "low": self.low, "high": self.high,
        }


@dataclass(frozen=True, slots=True)
class CategoricalDim:
    """A dimension over an explicit list of JSON-native choices."""

    name: str
    field: str
    choices: tuple[Any, ...]

    kind = "categorical"

    def __post_init__(self) -> None:
        _check_name(self.name, self.field)
        choices = tuple(self.choices)
        object.__setattr__(self, "choices", choices)
        if len(choices) < 2:
            raise ValueError(
                f"dimension {self.name!r}: need ≥ 2 choices, got {choices!r}"
            )
        if len({json.dumps(c, sort_keys=True) for c in choices}) != len(choices):
            raise ValueError(f"dimension {self.name!r}: duplicate choices")

    def clip(self, value: Any) -> Any:
        if value not in self.choices:
            raise ValueError(
                f"dimension {self.name!r}: {value!r} not among {self.choices!r}"
            )
        return value

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(len(self.choices)))]

    def mutate(self, value: Any, rng: np.random.Generator, sigma: float) -> Any:
        """Re-draw uniformly among the *other* choices."""
        others = [c for c in self.choices if c != value]
        return others[int(rng.integers(len(others)))]

    def normalize(self, value: Any) -> list[float]:
        return [1.0 if value == c else 0.0 for c in self.choices]

    def levels(self, n: int) -> list[Any]:
        return list(self.choices)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "field": self.field, "type": self.kind,
            "choices": list(self.choices),
        }


Dimension = ContinuousDim | IntegerDim | CategoricalDim

_DIM_TYPES = {
    "continuous": ContinuousDim,
    "integer": IntegerDim,
    "categorical": CategoricalDim,
}


def _check_name(name: str, field_path: str) -> None:
    if not name or not isinstance(name, str):
        raise ValueError(f"dimension name must be a non-empty string, got {name!r}")
    if not field_path or not isinstance(field_path, str):
        raise ValueError(
            f"dimension {name!r}: field must be a dotted config path, "
            f"got {field_path!r}"
        )


@dataclass(slots=True)
class ParameterSpace:
    """An ordered, named collection of dimensions bound to config fields."""

    name: str
    dimensions: list[Dimension] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.dimensions:
            raise ValueError(f"space {self.name!r} has no dimensions")
        seen: set[str] = set()
        fields: set[str] = set()
        for dim in self.dimensions:
            if dim.name in seen:
                raise ValueError(f"duplicate dimension name {dim.name!r}")
            if dim.field in fields:
                raise ValueError(
                    f"two dimensions bind the same field {dim.field!r}"
                )
            seen.add(dim.name)
            fields.add(dim.field)

    # -- serialisation -------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "dimensions": [d.to_dict() for d in self.dimensions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ParameterSpace":
        if not isinstance(data, Mapping):
            raise ValueError(f"space must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"name", "dimensions"}
        if unknown:
            raise ValueError(f"unknown space keys: {sorted(unknown)}")
        dims: list[Dimension] = []
        for i, dd in enumerate(data.get("dimensions", [])):
            dd = dict(dd)
            kind = dd.pop("type", None)
            dim_cls = _DIM_TYPES.get(kind)
            if dim_cls is None:
                raise ValueError(
                    f"dimension #{i}: unknown type {kind!r}; choose from "
                    f"{sorted(_DIM_TYPES)}"
                )
            if kind == "categorical":
                dd["choices"] = tuple(dd.get("choices", ()))
            try:
                dims.append(dim_cls(**dd))
            except TypeError as exc:
                raise ValueError(f"dimension #{i}: {exc}") from exc
        return cls(name=data.get("name", "space"), dimensions=dims)

    @classmethod
    def load(cls, path: str | Path) -> "ParameterSpace":
        with Path(path).open() as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # -- point algebra -------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.dimensions)

    def dim(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise KeyError(name)

    def validate_point(self, point: Mapping[str, Any]) -> Point:
        """Clip/check ``point`` against every dimension; returns a copy."""
        extra = set(point) - {d.name for d in self.dimensions}
        if extra:
            raise ValueError(f"point has unknown dimensions: {sorted(extra)}")
        missing = {d.name for d in self.dimensions} - set(point)
        if missing:
            raise ValueError(f"point is missing dimensions: {sorted(missing)}")
        return {
            d.name: canonical_json_value(d.clip(point[d.name]), d.name)
            for d in self.dimensions
        }

    def random_point(self, rng: np.random.Generator) -> Point:
        return {d.name: canonical_json_value(d.sample(rng), d.name)
                for d in self.dimensions}

    def mutate(
        self,
        point: Mapping[str, Any],
        rng: np.random.Generator,
        rate: float,
        sigma: float,
    ) -> Point:
        """Per-dimension mutation with probability ``rate``; ≥ 1 dimension
        always mutates, so a child is never a byte-copy of its parent."""
        out = dict(point)
        forced = int(rng.integers(len(self.dimensions)))
        for i, d in enumerate(self.dimensions):
            if i == forced or rng.random() < rate:
                out[d.name] = canonical_json_value(
                    d.mutate(out[d.name], rng, sigma), d.name
                )
        return out

    def crossover(
        self,
        a: Mapping[str, Any],
        b: Mapping[str, Any],
        rng: np.random.Generator,
    ) -> Point:
        """Uniform crossover: each gene from parent ``a`` or ``b``."""
        return {
            d.name: (a if rng.random() < 0.5 else b)[d.name]
            for d in self.dimensions
        }

    def normalize(self, point: Mapping[str, Any]) -> np.ndarray:
        """Feature vector in [0, 1] (categoricals one-hot) for surrogates."""
        feats: list[float] = []
        for d in self.dimensions:
            feats.extend(d.normalize(point[d.name]))
        return np.asarray(feats, dtype=float)

    # -- config binding -------------------------------------------------- #
    def bind(self, base: ScenarioConfig, point: Mapping[str, Any]) -> ScenarioConfig:
        """Base config + point → fully validated :class:`ScenarioConfig`.

        Goes through the config's own dict serialisation, so nested fields
        address naturally by dotted path and *every* constructor check
        (``NlrConfig`` bounds, ``AodvConfig`` bounds, …) runs before the
        config can reach a worker.
        """
        point = self.validate_point(point)
        data = config_to_dict(base)
        for d in self.dimensions:
            _set_path(data, d.field, point[d.name], d.name)
        return config_from_dict(data)


def _set_path(data: dict[str, Any], path: str, value: Any, dim_name: str) -> None:
    parts = path.split(".")
    node: Any = data
    for i, part in enumerate(parts[:-1]):
        node = node.get(part) if isinstance(node, dict) else None
        if not isinstance(node, dict):
            raise ValueError(
                f"dimension {dim_name!r}: config has no nested section "
                f"{'.'.join(parts[: i + 1])!r}"
            )
    leaf = parts[-1]
    if not isinstance(node, dict) or leaf not in node:
        raise ValueError(
            f"dimension {dim_name!r}: config has no field {path!r}"
        )
    node[leaf] = value


def seeded_rng(*entropy: int) -> np.random.Generator:
    """A PCG64 generator keyed on explicit integers (search seed, stage,
    generation) — derivable at any point of a resumed run, so no RNG state
    ever needs persisting."""
    return np.random.default_rng(np.random.SeedSequence(list(entropy)))
