"""Seeded, resumable evolutionary search over a parameter space.

The algorithm is a steady (μ+λ)-flavoured generational EA: tournament
selection, uniform crossover, Gaussian/creep/categorical mutation, and
elitism.  Three design rules make it deterministic and kill-safe:

1. **Keyed randomness.**  Every draw for generation *g* comes from a
   generator keyed on ``(seed, stage, g)`` — no RNG state is carried
   across generations, so a resumed run reconstructs the exact stream for
   any generation from scratch.

2. **Evaluations are exec cells.**  All simulations go through the
   :class:`~repro.dse.evaluate.Evaluator`, i.e. content-hashed cells with
   per-cell checkpoints and forced resume.  Killing the process mid-
   generation loses at most in-flight cells; a resumed search replays the
   partial generation with completed cells served from checkpoints.

3. **Generation state is persisted.**  After each generation the complete
   search state (space, settings, objectives, base config, per-generation
   populations and prune decisions) is written atomically to
   ``<out>/state.json``.  Resume replays recorded generations from the
   file (exact floats — JSON round-trips shortest reprs) and continues,
   so an interrupted and a straight-through run end with byte-identical
   populations — compare :func:`population_hash`.

The candidate stream is generated identically whether surrogate pruning
is on or off (same draws, same order); pruning only chooses *which* of
the oversampled candidates get simulated.  Pruned candidates are exactly
those predicted strictly below the configured quantile, and every
decision is logged in the state file.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.dse.evaluate import Evaluator, PointEval
from repro.dse.design import latin_hypercube
from repro.dse.objectives import Objective, pareto_front
from repro.dse.space import ParameterSpace, Point, point_key, seeded_rng
from repro.dse.surrogate import PruneDecision, RidgeSurrogate, prune_candidates
from repro.exec.policy import ExecPolicy
from repro.experiments.cache import atomic_write_json
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_from_dict, config_to_dict

__all__ = [
    "SearchSettings",
    "GenerationRecord",
    "SearchResult",
    "EvolutionarySearch",
    "population_hash",
]

#: State-file layout version; bump on incompatible changes.
STATE_SCHEMA = 1

# RNG stage keys (never reuse a stage for two purposes).
_STAGE_INIT = 0
_STAGE_BREED = 1


@dataclass(frozen=True, slots=True)
class SearchSettings:
    """Evolutionary-search knobs (all deterministic given ``seed``)."""

    population: int = 12
    generations: int = 6
    seed: int = 1
    n_seeds: int = 1
    tournament_k: int = 3
    elites: int = 2
    mutation_rate: float = 0.35
    mutation_sigma: float = 0.15
    crossover_rate: float = 0.6
    oversample: float = 2.0
    surrogate: bool = True
    prune_quantile: float = 0.3
    surrogate_min_train: int = 8

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be ≥ 2, got {self.population}")
        if self.generations < 1:
            raise ValueError(f"generations must be ≥ 1, got {self.generations}")
        if self.n_seeds < 1:
            raise ValueError(f"n_seeds must be ≥ 1, got {self.n_seeds}")
        if not 0 <= self.elites < self.population:
            raise ValueError(
                f"elites must be in [0, population), got {self.elites}"
            )
        if self.tournament_k < 1:
            raise ValueError(f"tournament_k must be ≥ 1, got {self.tournament_k}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if not 0.0 < self.mutation_sigma <= 1.0:
            raise ValueError("mutation_sigma must be in (0, 1]")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.oversample < 1.0:
            raise ValueError(f"oversample must be ≥ 1, got {self.oversample}")
        if not 0.0 <= self.prune_quantile < 1.0:
            raise ValueError("prune_quantile must be in [0, 1)")
        if self.surrogate_min_train < 2:
            raise ValueError("surrogate_min_train must be ≥ 2")

    def to_dict(self) -> dict[str, Any]:
        return {
            "population": self.population,
            "generations": self.generations,
            "seed": self.seed,
            "n_seeds": self.n_seeds,
            "tournament_k": self.tournament_k,
            "elites": self.elites,
            "mutation_rate": self.mutation_rate,
            "mutation_sigma": self.mutation_sigma,
            "crossover_rate": self.crossover_rate,
            "oversample": self.oversample,
            "surrogate": self.surrogate,
            "prune_quantile": self.prune_quantile,
            "surrogate_min_train": self.surrogate_min_train,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSettings":
        return cls(**dict(data))


@dataclass(slots=True)
class GenerationRecord:
    """One generation: who was simulated, and who was pruned instead."""

    index: int
    population: list[PointEval]
    prune_log: list[PruneDecision] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "population": [e.to_dict() for e in self.population],
            "prune_log": [d.to_dict() for d in self.prune_log],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GenerationRecord":
        return cls(
            index=int(data["index"]),
            population=[PointEval.from_dict(e) for e in data["population"]],
            prune_log=[
                PruneDecision(
                    point=dict(d["point"]),
                    predicted=float(d["predicted"]),
                    threshold=float(d["threshold"]),
                    pruned=bool(d["pruned"]),
                )
                for d in data.get("prune_log", [])
            ],
        )


def population_hash(population: Sequence[PointEval]) -> str:
    """SHA-256 over the canonical JSON of a population's points,
    objective values, and fitnesses — byte-identity across runs, hosts,
    and serial/parallel execution is asserted on this."""
    blob = json.dumps(
        [
            {
                "point": e.point,
                "objectives": e.objectives,
                "fitness": e.fitness,
            }
            for e in population
        ],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


class SearchResult:
    """Everything a finished search knows, plus decision-support views."""

    def __init__(
        self,
        space: ParameterSpace,
        objectives: Sequence[Objective],
        generations: list[GenerationRecord],
        archive: list[PointEval],
        simulations_run: int,
    ) -> None:
        self.space = space
        self.objectives = list(objectives)
        self.generations = generations
        self.archive = archive
        self.simulations_run = simulations_run

    @property
    def final_population(self) -> list[PointEval]:
        return self.generations[-1].population

    @property
    def final_population_hash(self) -> str:
        return population_hash(self.final_population)

    @property
    def best(self) -> PointEval:
        """Highest-fitness evaluated point (ties broken by point key)."""
        return max(self.archive, key=lambda e: (e.fitness, e.key))

    def pareto(self) -> list[PointEval]:
        """Non-dominated archive points, stable in archive order."""
        idx = pareto_front([e.objectives for e in self.archive], self.objectives)
        return [self.archive[i] for i in idx]

    @property
    def evaluations_pruned(self) -> int:
        return sum(
            1 for g in self.generations for d in g.prune_log if d.pruned
        )


class EvolutionarySearch:
    """Drives the generational loop; see module docstring for guarantees."""

    def __init__(
        self,
        space: ParameterSpace,
        base: ScenarioConfig,
        settings: SearchSettings = SearchSettings(),
        objectives: Sequence[Objective] | None = None,
        out_dir: str | Path | None = None,
        policy: ExecPolicy | None = None,
    ) -> None:
        from repro.dse.objectives import DEFAULT_OBJECTIVES

        self.space = space
        self.base = base
        self.settings = settings
        self.objectives = list(
            objectives if objectives is not None else DEFAULT_OBJECTIVES
        )
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.evaluator = Evaluator(
            space,
            base,
            self.objectives,
            n_seeds=settings.n_seeds,
            policy=policy,
            campaign_prefix=f"dse-{space.name}",
        )

    # ------------------------------------------------------------------ #
    # State persistence
    # ------------------------------------------------------------------ #
    def _identity(self) -> dict[str, Any]:
        return {
            "space": self.space.to_dict(),
            "settings": self.settings.to_dict(),
            "objectives": [o.to_dict() for o in self.objectives],
            "base_config": config_to_dict(self.base),
        }

    @property
    def state_path(self) -> Path | None:
        if self.out_dir is None:
            return None
        return self.out_dir / "state.json"

    def _write_state(self, generations: list[GenerationRecord]) -> None:
        if self.state_path is None:
            return
        atomic_write_json(
            self.state_path,
            {
                "schema": STATE_SCHEMA,
                "kind": "evolve",
                **self._identity(),
                "generations": [g.to_dict() for g in generations],
            },
        )

    def _load_state(self) -> list[GenerationRecord]:
        """Recorded generations from a prior run of *this exact* search."""
        path = self.state_path
        if path is None or not path.exists():
            return []
        with path.open() as fh:
            data = json.load(fh)
        if data.get("schema") != STATE_SCHEMA or data.get("kind") != "evolve":
            raise ValueError(
                f"{path}: not an evolve state file of schema {STATE_SCHEMA}"
            )
        mine, theirs = self._identity(), {
            k: data.get(k)
            for k in ("space", "settings", "objectives", "base_config")
        }
        # The generation *budget* is not part of the search's identity:
        # every generation's randomness is keyed on (seed, stage, g), so a
        # recorded prefix is valid under any --generations target — resume
        # may extend or truncate a search, never silently redefine it.
        for side in (mine, theirs):
            if isinstance(side.get("settings"), dict):
                side["settings"] = {
                    k: v for k, v in side["settings"].items()
                    if k != "generations"
                }
        if json.dumps(mine, sort_keys=True) != json.dumps(theirs, sort_keys=True):
            raise ValueError(
                f"{path}: recorded search differs from the requested one "
                "(space/settings/objectives/base config mismatch) — resume "
                "must use the same definition, or use a fresh --out dir"
            )
        return [GenerationRecord.from_dict(g) for g in data["generations"]]

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def run(self, resume: bool = False) -> SearchResult:
        s = self.settings
        generations: list[GenerationRecord] = []
        if resume:
            generations = self._load_state()[: s.generations]
            for g in generations:
                self.evaluator.absorb(g.population)

        for g in range(len(generations), s.generations):
            points, prune_log = self._propose(g, generations)
            evals = self.evaluator.evaluate(points, f"gen{g}", generation=g)
            generations.append(GenerationRecord(g, evals, prune_log))
            self._write_state(generations)

        return SearchResult(
            self.space,
            self.objectives,
            generations,
            self.evaluator.archive,
            self.evaluator.simulations_run,
        )

    # ------------------------------------------------------------------ #
    def _propose(
        self, g: int, generations: list[GenerationRecord]
    ) -> tuple[list[Point], list[PruneDecision]]:
        """The generation-``g`` population (deterministic in ``g``)."""
        s = self.settings
        if g == 0:
            rng = seeded_rng(s.seed, _STAGE_INIT, 0)
            return latin_hypercube(self.space, s.population, rng), []

        rng = seeded_rng(s.seed, _STAGE_BREED, g)
        prev = generations[g - 1].population
        ranked = sorted(prev, key=lambda e: (-e.fitness, e.key))
        elites = [dict(e.point) for e in ranked[: s.elites]]
        n_children = s.population - len(elites)
        n_cand = max(n_children, math.ceil(n_children * s.oversample))

        # The candidate stream consumes the same draws regardless of
        # surrogate mode — pruning must not perturb the trajectory's
        # randomness, only the choice of which candidates simulate.
        candidates: list[Point] = []
        for _ in range(n_cand):
            parent = self._tournament(prev, rng)
            if rng.random() < s.crossover_rate:
                other = self._tournament(prev, rng)
                child = self.space.crossover(parent.point, other.point, rng)
            else:
                child = dict(parent.point)
            candidates.append(
                self.space.mutate(child, rng, s.mutation_rate, s.mutation_sigma)
            )

        prune_log: list[PruneDecision] = []
        archive = self.evaluator.archive
        if (
            s.surrogate
            and len(archive) >= s.surrogate_min_train
            and n_cand > n_children
        ):
            model = RidgeSurrogate(self.space).fit(
                [e.point for e in archive], [e.fitness for e in archive]
            )
            kept, prune_log = prune_candidates(
                model, candidates, s.prune_quantile
            )
            children = kept[:n_children]
            if len(children) < n_children:
                # Quantile pruned too deep for the pool size: refill from
                # the pruned candidates in predicted-fitness order, and
                # flip their log entries back to kept — the audit log must
                # list as pruned exactly the candidates never simulated.
                ranked_pruned = sorted(
                    (d for d in prune_log if d.pruned),
                    key=lambda d: (-d.predicted, point_key(d.point)),
                )
                refilled: set[str] = set()
                for d in ranked_pruned:
                    if len(children) == n_children:
                        break
                    children.append(dict(d.point))
                    refilled.add(point_key(d.point))
                if refilled:
                    prune_log = [
                        PruneDecision(d.point, d.predicted, d.threshold, False)
                        if d.pruned and point_key(d.point) in refilled
                        else d
                        for d in prune_log
                    ]
        else:
            children = candidates[:n_children]

        return elites + children, prune_log

    def _tournament(
        self, population: Sequence[PointEval], rng
    ) -> PointEval:
        k = min(self.settings.tournament_k, len(population))
        idx = rng.integers(len(population), size=k)
        contenders = [population[int(i)] for i in idx]
        return max(contenders, key=lambda e: (e.fitness, e.key))
