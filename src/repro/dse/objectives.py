"""Objectives, weighted scoring, and Pareto-front extraction (MCDM).

An :class:`Objective` names one scalar a run produces — a figure metric
(``pdr``, ``mean_delay_s``), any ``network_totals`` counter including the
``resilience_*`` family a :class:`~repro.faults.ResilienceCollector`
contributes under a fault plan, or any ``repro_*`` series from the
run's canonical metrics snapshot — plus a goal (min/max), a weight, and a
scale.

Two decision-support views are built on top:

* **weighted score** — the scalar fitness evolutionary search climbs:
  ``Σᵢ wᵢ · dirᵢ · vᵢ/scaleᵢ`` with ``dir`` +1 for max, −1 for min.
  NaN objective values (e.g. delay when nothing was delivered) poison the
  score to −inf, so broken configurations can never win.
* **Pareto front** — goal-adjusted non-domination over the raw objective
  values, weight-free, for "show me the trade-off surface" reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.stats import mean_ci
from repro.experiments.runner import ScenarioResult

__all__ = [
    "Objective",
    "DEFAULT_OBJECTIVES",
    "parse_objective",
    "extract_value",
    "aggregate_objectives",
    "weighted_score",
    "pareto_front",
]


@dataclass(frozen=True, slots=True)
class Objective:
    """One optimisation criterion.

    Attributes
    ----------
    key:
        Metric name, resolved against a result's scalar metrics, then its
        ``totals`` dump, then its ``metrics_snapshot`` series.
    goal:
        ``"max"`` or ``"min"``.
    weight:
        Relative importance in the weighted score.
    scale:
        Typical magnitude used to de-dimensionalise the weighted score
        (e.g. 0.1 s for delay); irrelevant to Pareto dominance.
    """

    key: str
    goal: str = "max"
    weight: float = 1.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(f"goal must be 'min' or 'max', got {self.goal!r}")
        if self.weight < 0:
            raise ValueError(f"weight must be ≥ 0, got {self.weight!r}")
        if not self.scale > 0:
            raise ValueError(f"scale must be positive, got {self.scale!r}")

    @property
    def direction(self) -> float:
        return 1.0 if self.goal == "max" else -1.0

    def adjusted(self, value: float) -> float:
        """Goal-adjusted value (higher is always better); NaN → −inf."""
        if math.isnan(value):
            return -math.inf
        return self.direction * value

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key, "goal": self.goal,
            "weight": self.weight, "scale": self.scale,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Objective":
        return cls(**dict(data))


#: The paper-family trade-off: delivery vs latency vs control overhead.
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective("pdr", "max", weight=1.0, scale=1.0),
    Objective("mean_delay_s", "min", weight=1.0, scale=0.1),
    Objective("normalized_routing_load", "min", weight=0.5, scale=5.0),
)


def parse_objective(spec: str) -> Objective:
    """Parse a CLI objective ``key:goal[:weight[:scale]]``.

    >>> parse_objective("pdr:max")
    Objective(key='pdr', goal='max', weight=1.0, scale=1.0)
    """
    parts = spec.split(":")
    if not 2 <= len(parts) <= 4:
        raise ValueError(
            f"objective {spec!r} is not key:goal[:weight[:scale]]"
        )
    key, goal = parts[0], parts[1]
    weight = float(parts[2]) if len(parts) > 2 else 1.0
    scale = float(parts[3]) if len(parts) > 3 else 1.0
    return Objective(key, goal, weight=weight, scale=scale)


def extract_value(result: ScenarioResult, key: str) -> float:
    """Resolve objective ``key`` against one run's outputs.

    Lookup order: scalar figure metrics → ``totals`` (which includes the
    ``resilience_*`` counters under a fault plan) → the ``repro_*``
    metrics snapshot.  Unknown keys raise with the closest namespaces
    listed, so a typo fails the campaign up front rather than optimising
    a constant.
    """
    scalars = result.as_dict()
    if key in scalars:
        return float(scalars[key])
    if key in result.totals:
        return float(result.totals[key])
    if key in result.metrics_snapshot:
        return float(result.metrics_snapshot[key])
    raise KeyError(
        f"objective {key!r} not found; available: scalar metrics "
        f"{sorted(scalars)}, totals {sorted(result.totals)[:12]}…, "
        f"and {len(result.metrics_snapshot)} metrics-snapshot series"
    )


def aggregate_objectives(
    results: Sequence[ScenarioResult], objectives: Sequence[Objective]
) -> dict[str, float]:
    """Mean objective values across replicate seeds (NaN seeds dropped).

    A key that is NaN in *every* replicate stays NaN — scoring then
    poisons it rather than silently treating it as zero.
    """
    out: dict[str, float] = {}
    for obj in objectives:
        values = [extract_value(r, obj.key) for r in results]
        out[obj.key] = mean_ci(values).mean  # NaN-dropping mean; NaN if empty
    return out


def weighted_score(
    values: Mapping[str, float], objectives: Sequence[Objective]
) -> float:
    """Scalar fitness of one point's aggregated objective values."""
    total = 0.0
    for obj in objectives:
        adj = obj.adjusted(float(values[obj.key]))
        if math.isinf(adj):
            return -math.inf
        total += obj.weight * adj / obj.scale
    return total


def pareto_front(
    rows: Sequence[Mapping[str, float]], objectives: Sequence[Objective]
) -> list[int]:
    """Indices of non-dominated rows, in input order.

    Row *a* dominates *b* when it is no worse on every objective and
    strictly better on at least one (goal-adjusted).  Duplicate objective
    vectors all stay on the front.  A row with any NaN objective (−inf
    after adjustment) is excluded outright — a broken configuration is
    not a trade-off, even if it looks unbeatable elsewhere.  O(n²) —
    campaign populations are hundreds, not millions.
    """
    adjusted = [
        [obj.adjusted(float(row[obj.key])) for obj in objectives] for row in rows
    ]
    front: list[int] = []
    for i, a in enumerate(adjusted):
        if not all(math.isfinite(v) for v in a):
            continue
        dominated = False
        for j, b in enumerate(adjusted):
            if j == i:
                continue
            if all(bv >= av for av, bv in zip(a, b)) and any(
                bv > av for av, bv in zip(a, b)
            ):
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front
