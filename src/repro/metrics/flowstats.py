"""Per-flow delivery, delay, and throughput statistics.

The collector observes every originated packet (via the traffic sources)
and every delivered packet (via the sinks).  A *measurement window* can
exclude warm-up and cool-down transients, as the paper family's ns-2
scripts do: only packets **originated** inside the window count, for both
the sent and received tallies, so PDR never exceeds 1 from boundary
effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

__all__ = ["FlowRecord", "FlowStatsCollector"]


@dataclass(slots=True)
class FlowRecord:
    """Accumulated statistics for one flow."""

    flow_id: int
    sent: int = 0
    received: int = 0
    bytes_received: int = 0
    delay_sum: float = 0.0
    delay_sq_sum: float = 0.0
    delay_max: float = 0.0
    hops_sum: int = 0
    first_rx: float = math.inf
    last_rx: float = -math.inf
    #: Raw per-packet delays in delivery order (percentiles and jitter).
    delays: list[float] = field(default_factory=list)
    _seen: set[int] = field(default_factory=set)

    @property
    def pdr(self) -> float:
        """Packet delivery ratio in [0, 1] (0 when nothing sent)."""
        return self.received / self.sent if self.sent else 0.0

    @property
    def mean_delay_s(self) -> float:
        """Mean end-to-end delay of delivered packets (NaN if none)."""
        return self.delay_sum / self.received if self.received else math.nan

    @property
    def delay_std_s(self) -> float:
        """Std-dev of end-to-end delay (NaN with < 2 deliveries)."""
        if self.received < 2:
            return math.nan
        mean = self.delay_sum / self.received
        var = max(0.0, self.delay_sq_sum / self.received - mean * mean)
        return math.sqrt(var)

    @property
    def mean_hops(self) -> float:
        """Mean path length of delivered packets (NaN if none)."""
        return self.hops_sum / self.received if self.received else math.nan

    def throughput_bps(self) -> float:
        """Received application throughput over the flow's active span."""
        span = self.last_rx - self.first_rx
        if span <= 0:
            return 0.0
        return self.bytes_received * 8 / span

    def delay_percentile_s(self, percentile: float) -> float:
        """Delay percentile in [0, 100] over delivered packets (NaN if none).

        Tail percentiles (p95/p99) expose the queueing spikes that mean
        delay averages away — the metric VoIP-class evaluations report.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile!r}")
        if not self.delays:
            return math.nan
        return float(np.percentile(self.delays, percentile))

    @property
    def jitter_s(self) -> float:
        """Mean absolute delay variation between consecutive deliveries
        (the RFC 3550 inter-arrival jitter estimator's steady state;
        NaN with < 2 deliveries)."""
        if len(self.delays) < 2:
            return math.nan
        d = np.asarray(self.delays)
        return float(np.mean(np.abs(np.diff(d))))


class FlowStatsCollector:
    """Network-wide per-flow statistics.

    Parameters
    ----------
    measure_from_s, measure_until_s:
        Only packets *originated* in ``[measure_from_s, measure_until_s)``
        are counted.
    """

    def __init__(
        self, measure_from_s: float = 0.0, measure_until_s: float = math.inf
    ) -> None:
        if measure_until_s <= measure_from_s:
            raise ValueError("measurement window must be non-empty")
        self.measure_from_s = measure_from_s
        self.measure_until_s = measure_until_s
        self.flows: dict[int, FlowRecord] = {}

    def _in_window(self, packet: "Packet") -> bool:
        return self.measure_from_s <= packet.created_at < self.measure_until_s

    def _record(self, flow_id: int) -> FlowRecord:
        rec = self.flows.get(flow_id)
        if rec is None:
            rec = FlowRecord(flow_id=flow_id)
            self.flows[flow_id] = rec
        return rec

    def on_send(self, packet: "Packet") -> None:
        """Observe an originated packet (traffic-source hook)."""
        if not self._in_window(packet):
            return
        self._record(packet.flow_id).sent += 1

    def on_receive(self, packet: "Packet", now: float | None = None) -> None:
        """Observe a delivered packet (sink hook).

        ``now`` defaults to ``created_at + 0`` being unavailable — pass the
        simulator time; sinks wire this via a lambda capturing the sim.
        """
        if not self._in_window(packet) or packet.flow_id < 0:
            return
        rec = self._record(packet.flow_id)
        if packet.seq in rec._seen:
            return  # duplicate delivery guard
        rec._seen.add(packet.seq)
        rx_time = now if now is not None else packet.created_at
        delay = rx_time - packet.created_at
        rec.received += 1
        rec.bytes_received += packet.payload_bytes
        rec.delay_sum += delay
        rec.delay_sq_sum += delay * delay
        rec.delays.append(delay)
        rec.delay_max = max(rec.delay_max, delay)
        rec.hops_sum += packet.hops
        rec.first_rx = min(rec.first_rx, rx_time)
        rec.last_rx = max(rec.last_rx, rx_time)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_sent(self) -> int:
        """Packets originated in the window, all flows."""
        return sum(r.sent for r in self.flows.values())

    @property
    def total_received(self) -> int:
        """Packets delivered (originated in the window), all flows."""
        return sum(r.received for r in self.flows.values())

    def overall_pdr(self) -> float:
        """Aggregate packet delivery ratio."""
        sent = self.total_sent
        return self.total_received / sent if sent else 0.0

    def mean_delay_s(self) -> float:
        """Delivery-weighted mean end-to-end delay (NaN if none)."""
        rx = self.total_received
        if rx == 0:
            return math.nan
        return sum(r.delay_sum for r in self.flows.values()) / rx

    def delay_percentile_s(self, percentile: float) -> float:
        """Delay percentile pooled over every flow's deliveries."""
        pooled: list[float] = []
        for r in self.flows.values():
            pooled.extend(r.delays)
        if not pooled:
            return math.nan
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile!r}")
        return float(np.percentile(pooled, percentile))

    def aggregate_throughput_bps(self, span_s: float) -> float:
        """Total received application bits over ``span_s`` seconds."""
        if span_s <= 0:
            raise ValueError(f"span must be positive, got {span_s!r}")
        return sum(r.bytes_received for r in self.flows.values()) * 8 / span_s

    def mean_hops(self) -> float:
        """Delivery-weighted mean hop count (NaN if none)."""
        rx = self.total_received
        if rx == 0:
            return math.nan
        return sum(r.hops_sum for r in self.flows.values()) / rx

    def per_flow_pdrs(self) -> dict[int, float]:
        """Flow id → PDR."""
        return {fid: r.pdr for fid, r in self.flows.items()}
