"""Terminal line charts for experiment output.

The examples and the CLI render result series as compact ASCII charts so
the reconstructed figures are *viewable* without any plotting dependency
(the repository is matplotlib-free by design).  One chart plots several
named series over a shared x-axis with distinct glyphs and a legend.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_chart"]

#: Glyphs assigned to series in order.
GLYPHS = "ox+*#@%&"


def _format_tick(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:.3g}"


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render named y-series against shared ``x`` as an ASCII chart.

    NaNs are skipped.  Points that would land on the same cell keep the
    glyph of the first series plotted there (legend order = dict order).

    >>> out = line_chart([0, 1, 2], {"a": [0.0, 0.5, 1.0]}, width=20, height=5)
    >>> "a" in out and "o" in out
    True
    """
    if not x or not series:
        raise ValueError("need at least one x value and one series")
    if len(series) > len(GLYPHS):
        raise ValueError(f"at most {len(GLYPHS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x has {len(x)}"
            )
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10×4 cells")

    finite = [
        v for ys in series.values() for v in ys if not math.isnan(v)
    ]
    if not finite:
        raise ValueError("all series values are NaN")
    y_min, y_max = min(finite), max(finite)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, ys) in zip(GLYPHS, series.items()):
        for xi, yi in zip(x, ys):
            if math.isnan(yi):
                continue
            col = round((xi - x_min) / (x_max - x_min) * (width - 1))
            row = round((yi - y_min) / (y_max - y_min) * (height - 1))
            cell = height - 1 - row
            if grid[cell][col] == " ":
                grid[cell][col] = glyph

    top = _format_tick(y_max)
    bottom = _format_tick(y_min)
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    for r, row_cells in enumerate(grid):
        if r == 0:
            label = top
        elif r == height - 1:
            label = bottom
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row_cells))
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{_format_tick(x_min)}{' ' * max(1, width - 12)}{_format_tick(x_max)}"
    lines.append(" " * margin + "  " + x_axis + (f"  {x_label}" if x_label else ""))
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(GLYPHS, series)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)
