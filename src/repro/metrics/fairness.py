"""Load-distribution fairness metrics.

Jain's fairness index over per-node forwarding counts quantifies how well
a routing scheme spreads traffic over the mesh: 1/n when one node carries
everything, 1.0 when all nodes carry equal load.  NLR's load-aware path
selection should push this up relative to shortest-hop AODV (reconstructed
Fig 5).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["jain_index", "forwarding_load", "load_concentration"]


def jain_index(values: Sequence[float] | np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)``.

    Returns 1.0 for an empty or all-zero vector (degenerate but
    conventional: nothing is being shared unfairly).

    >>> jain_index([1, 1, 1, 1])
    1.0
    >>> round(jain_index([4, 0, 0, 0]), 3)
    0.25
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("fairness index requires non-negative values")
    sq = float(np.sum(x * x))
    if sq == 0.0:
        return 1.0
    s = float(np.sum(x))
    return (s * s) / (x.size * sq)


def forwarding_load(protocols: Iterable) -> np.ndarray:
    """Per-node forwarded-DATA counts from routing-protocol instances."""
    return np.array([p.data_forwarded for p in protocols], dtype=float)


def load_concentration(values: Sequence[float] | np.ndarray, top_k: int = 5) -> float:
    """Fraction of total load carried by the ``top_k`` busiest nodes.

    >>> round(load_concentration([10, 1, 1, 1, 1], top_k=1), 4)
    0.7143
    """
    x = np.sort(np.asarray(values, dtype=float))[::-1]
    total = float(x.sum())
    if total == 0.0:
        return 0.0
    return float(x[:top_k].sum()) / total
