"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value"]


def format_value(v: Any, precision: int = 4) -> str:
    """Render one cell: floats to ``precision`` significant digits."""
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "nan"
        return f"{v:.{precision}g}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render an aligned monospaced table.

    >>> print(format_table(["a", "b"], [[1, 2.5], [10, 0.123456]]))
    a  | b
    ---+-------
    1  | 2.5
    10 | 0.1235
    """
    cells = [[format_value(v, precision) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[i])), max((len(r[i]) for r in cells), default=0))
        for i in range(len(headers))
    ]
    def fmt_row(vals: Sequence[str]) -> str:
        return " | ".join(v.ljust(widths[i]) for i, v in enumerate(vals)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)
