"""Measurement layer: per-flow stats, fairness, time series, summaries."""

from repro.metrics.asciichart import line_chart
from repro.metrics.collectors import network_totals
from repro.metrics.fairness import forwarding_load, jain_index
from repro.metrics.flowstats import FlowRecord, FlowStatsCollector
from repro.metrics.summary import format_table
from repro.metrics.timeseries import TimeSeries, bin_series

__all__ = [
    "FlowRecord",
    "FlowStatsCollector",
    "TimeSeries",
    "bin_series",
    "format_table",
    "forwarding_load",
    "jain_index",
    "line_chart",
    "network_totals",
]
