"""Periodic time-series sampling of arbitrary probes, plus re-binning.

:class:`TimeSeries` samples live probes inside a simulation;
:func:`bin_series` regrids any ``(times, values)`` pair — sampled series,
trace event streams — onto fixed-width bins for plotting and rate
computation (``repro-trace timeline`` is built on it).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["TimeSeries", "bin_series"]


def bin_series(
    times: Sequence[float],
    values: Sequence[float] | None = None,
    bin_s: float = 1.0,
    t0: float | None = None,
    t1: float | None = None,
    agg: str = "mean",
) -> tuple[list[float], list[float]]:
    """Regrid ``(times, values)`` onto fixed ``bin_s``-wide bins.

    Parameters
    ----------
    times:
        Sample timestamps (need not be sorted).
    values:
        Sample values; omit (``None``) to bin pure event streams — every
        event then counts 1 (use ``agg="count"`` or ``"sum"``).
    bin_s:
        Bin width in seconds (> 0).
    t0, t1:
        Range to cover; default spans the data.  Samples outside are
        ignored.  ``t1`` is exclusive except that a sample exactly at
        ``t1`` lands in the last bin (closed right edge, matching the
        engine's ``run(until=...)`` convention).
    agg:
        ``"mean"`` (empty bins → NaN), ``"sum"``, or ``"count"``
        (empty bins → 0).

    Returns
    -------
    (centers, binned):
        Bin-center timestamps and the aggregated values, one per bin.
        Empty input (or an empty range) yields ``([], [])``.
    """
    if bin_s <= 0:
        raise ValueError(f"bin_s must be positive, got {bin_s!r}")
    if agg not in ("mean", "sum", "count"):
        raise ValueError(f"agg must be mean/sum/count, got {agg!r}")
    t = np.asarray(times, dtype=float)
    if values is None:
        v = np.ones_like(t)
    else:
        if len(values) != len(t):
            raise ValueError(
                f"{len(t)} times but {len(values)} values"
            )
        v = np.asarray(values, dtype=float)
    lo = float(t.min()) if t0 is None and t.size else (t0 or 0.0)
    hi = float(t.max()) if t1 is None and t.size else (t1 or 0.0)
    if t.size == 0 and (t0 is None or t1 is None):
        return [], []
    if hi <= lo:
        hi = lo + bin_s  # degenerate range: one bin covering it
    n_bins = int(np.ceil((hi - lo) / bin_s))
    keep = (t >= lo) & (t <= hi)
    t, v = t[keep], v[keep]
    idx = np.minimum(((t - lo) / bin_s).astype(int), n_bins - 1)
    sums = np.bincount(idx, weights=v, minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    if agg == "count":
        binned = counts.astype(float)
    elif agg == "sum":
        binned = sums
    else:
        with np.errstate(invalid="ignore"):
            binned = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    centers = lo + (np.arange(n_bins) + 0.5) * bin_s
    return centers.tolist(), binned.tolist()


class TimeSeries:
    """Samples named probes at a fixed period.

    Parameters
    ----------
    sim:
        Event engine.
    period_s:
        Sampling period.

    Examples
    --------
    >>> sim = Simulator()
    >>> ts = TimeSeries(sim, period_s=1.0)
    >>> ts.add_probe("clock", lambda: sim.now)
    >>> ts.start(); sim.run(until=3.0); ts.stop()
    >>> ts.values("clock")
    [1.0, 2.0, 3.0]
    """

    def __init__(self, sim: Simulator, period_s: float = 1.0) -> None:
        self.sim = sim
        self._probes: dict[str, Callable[[], float]] = {}
        self._times: list[float] = []
        self._data: dict[str, list[float]] = {}
        self._proc = PeriodicProcess(sim, period_s, self._sample)

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register probe ``name`` sampled as ``fn()`` each period."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._data[name] = []

    def start(self) -> None:
        """Begin sampling."""
        self._proc.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._proc.stop()

    def _sample(self) -> None:
        self._times.append(self.sim.now)
        for name, fn in self._probes.items():
            self._data[name].append(float(fn()))

    @property
    def times(self) -> list[float]:
        """Sample timestamps."""
        return list(self._times)

    def values(self, name: str) -> list[float]:
        """Samples of probe ``name``."""
        return list(self._data[name])

    def as_array(self, name: str) -> np.ndarray:
        """Samples of probe ``name`` as a float array."""
        return np.asarray(self._data[name], dtype=float)

    def binned(
        self, name: str, bin_s: float, agg: str = "mean"
    ) -> tuple[list[float], list[float]]:
        """Probe ``name`` regridded onto ``bin_s`` bins (see :func:`bin_series`)."""
        return bin_series(self._times, self._data[name], bin_s, agg=agg)
