"""Periodic time-series sampling of arbitrary probes."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

__all__ = ["TimeSeries"]


class TimeSeries:
    """Samples named probes at a fixed period.

    Parameters
    ----------
    sim:
        Event engine.
    period_s:
        Sampling period.

    Examples
    --------
    >>> sim = Simulator()
    >>> ts = TimeSeries(sim, period_s=1.0)
    >>> ts.add_probe("clock", lambda: sim.now)
    >>> ts.start(); sim.run(until=3.0); ts.stop()
    >>> ts.values("clock")
    [1.0, 2.0, 3.0]
    """

    def __init__(self, sim: Simulator, period_s: float = 1.0) -> None:
        self.sim = sim
        self._probes: dict[str, Callable[[], float]] = {}
        self._times: list[float] = []
        self._data: dict[str, list[float]] = {}
        self._proc = PeriodicProcess(sim, period_s, self._sample)

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register probe ``name`` sampled as ``fn()`` each period."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._data[name] = []

    def start(self) -> None:
        """Begin sampling."""
        self._proc.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._proc.stop()

    def _sample(self) -> None:
        self._times.append(self.sim.now)
        for name, fn in self._probes.items():
            self._data[name].append(float(fn()))

    @property
    def times(self) -> list[float]:
        """Sample timestamps."""
        return list(self._times)

    def values(self, name: str) -> list[float]:
        """Samples of probe ``name``."""
        return list(self._data[name])

    def as_array(self, name: str) -> np.ndarray:
        """Samples of probe ``name`` as a float array."""
        return np.asarray(self._data[name], dtype=float)
