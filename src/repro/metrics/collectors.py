"""Network-wide counter aggregation from protocol/MAC instances."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import NodeStack

__all__ = ["network_totals"]


def network_totals(stacks: Iterable["NodeStack"]) -> dict[str, float]:
    """Sum routing/MAC counters across a network's node stacks.

    Returns a flat mapping with, among others:

    * ``rreq_tx`` / ``rrep_tx`` / ``rerr_tx`` / ``hello_tx`` — control
      packet transmissions by type;
    * ``control_packets`` / ``control_bytes`` — totals;
    * ``data_forwarded`` / ``data_originated`` — DATA plane activity;
    * ``drops_no_route`` / ``drops_ttl`` — routing drops;
    * ``mac_data_tx`` / ``mac_retries`` / ``mac_retry_drops`` /
      ``mac_queue_drops`` — link-layer activity (zero under PerfectMac);
    * ``normalized_routing_load`` — control packets per delivered-ish DATA
      transmission (control / max(1, data_forwarded + data_originated)).
    """
    totals = {
        "rreq_tx": 0.0,
        "rrep_tx": 0.0,
        "rerr_tx": 0.0,
        "hello_tx": 0.0,
        "control_packets": 0.0,
        "control_bytes": 0.0,
        "data_forwarded": 0.0,
        "data_originated": 0.0,
        "drops_no_route": 0.0,
        "drops_ttl": 0.0,
        "mac_data_tx": 0.0,
        "mac_retries": 0.0,
        "mac_retry_drops": 0.0,
        "mac_queue_drops": 0.0,
    }
    for stack in stacks:
        r = stack.routing
        for kind in ("rreq", "rrep", "rerr", "hello"):
            totals[f"{kind}_tx"] += r.control_tx[kind]
        totals["control_bytes"] += r.control_bytes_tx
        totals["data_forwarded"] += r.data_forwarded
        totals["data_originated"] += r.data_originated
        totals["drops_no_route"] += r.data_dropped_no_route
        totals["drops_ttl"] += r.data_dropped_ttl
        mac = stack.mac
        totals["mac_data_tx"] += getattr(mac, "data_tx", 0)
        totals["mac_retries"] += getattr(mac, "retries_total", 0)
        totals["mac_retry_drops"] += getattr(mac, "drops_retry", 0)
        queue = getattr(mac, "queue", None)
        if queue is not None:
            totals["mac_queue_drops"] += queue.dropped
    totals["control_packets"] = (
        totals["rreq_tx"] + totals["rrep_tx"] + totals["rerr_tx"] + totals["hello_tx"]
    )
    denom = max(1.0, totals["data_forwarded"] + totals["data_originated"])
    totals["normalized_routing_load"] = totals["control_packets"] / denom
    return totals
