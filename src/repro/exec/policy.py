"""Execution policy: how a campaign runs, plus the process-wide default.

:class:`ExecPolicy` bundles every knob of the campaign executor.  The
module also keeps one process-wide default policy so high-level entry
points (``replicate``, the figure sweeps) pick up CLI settings
(``--workers``, ``--resume``) without threading a parameter through every
call site: the CLI calls :func:`configure` once, everything downstream
calls :func:`current_policy`.

The shipped default is strictly serial with checkpointing off — exactly
the historical in-process behaviour, so library users and the test suite
see no change unless they opt in.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.adaptive import AdaptivePolicy

__all__ = ["ExecPolicy", "configure", "current_policy", "using"]

#: Backend names accepted by :attr:`ExecPolicy.backend` (see
#: :mod:`repro.exec.backends`); ``auto`` resolves to ``serial`` for one
#: worker and ``pool`` otherwise.
BACKEND_CHOICES = ("auto", "serial", "pool", "warm", "filestore")


@dataclass(slots=True, frozen=True)
class ExecPolicy:
    """Knobs governing one campaign execution.

    Attributes
    ----------
    workers:
        Process-pool size; ``1`` runs cells in-process in task order.
    task_timeout_s:
        Per-task wall-clock budget; a cell exceeding it is recorded as a
        timeout failure (and retried up to ``retries`` times).  ``None``
        disables the limit.
    retries:
        Re-attempts after an error/timeout failure (``1`` → two attempts
        total).  Worker crashes have their own small budget, see the
        scheduler.
    backoff_s:
        Base delay before re-attempting failed tasks; doubles per round.
    resume:
        Load finished cells from the checkpoint store instead of
        recomputing them.
    checkpoint:
        Persist each finished cell.  ``None`` (the default) auto-enables
        exactly when it is useful: parallel runs and resumed runs.
    progress:
        Emit progress lines on stderr and a JSONL run log.
    log_dir:
        Directory for JSONL run logs (default: ``results/cache/runs``).
    backend:
        Execution backend (see :mod:`repro.exec.backends`): ``auto``
        (serial for one worker, process pool otherwise), ``serial``,
        ``pool``, ``warm`` (persistent work-stealing pool), or
        ``filestore`` (cooperating launchers over the cell directory).
    claim_ttl_s:
        File-store backend only: age beyond which a claim whose owner
        cannot be probed (foreign host) is presumed dead and reaped.
        Same-host claims are reaped as soon as their PID is gone.
    adaptive:
        Optional :class:`~repro.exec.adaptive.AdaptivePolicy`.  When set,
        campaign entry points that understand replication (``replicate``,
        the figure sweeps, DSE evaluation) stop buying seeds for cells
        whose confidence interval is already tight.  ``None`` (default)
        keeps the fixed-budget behaviour byte-identical to before.
    """

    workers: int = 1
    task_timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.5
    resume: bool = False
    checkpoint: bool | None = None
    progress: bool = False
    log_dir: Path | None = None
    backend: str = "auto"
    claim_ttl_s: float = 600.0
    adaptive: "AdaptivePolicy | None" = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be ≥ 1, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be ≥ 0, got {self.retries}")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive or None")
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"backend must be one of {BACKEND_CHOICES}, got {self.backend!r}"
            )
        if self.claim_ttl_s <= 0:
            raise ValueError("claim_ttl_s must be positive")

    @property
    def effective_backend(self) -> str:
        """``auto`` resolved to a concrete backend name."""
        if self.backend == "auto":
            return "serial" if self.workers <= 1 else "pool"
        return self.backend

    @property
    def wants_checkpoint(self) -> bool:
        """Effective checkpointing switch (auto-on for parallel/resume/
        filestore — the latter communicates *through* checkpoints)."""
        if self.backend == "filestore":
            return True
        if self.checkpoint is not None:
            return self.checkpoint
        return self.resume or self.workers > 1


_default_policy = ExecPolicy()


def current_policy() -> ExecPolicy:
    """The process-wide default policy (immutable; replace via configure)."""
    return _default_policy


def configure(**overrides) -> ExecPolicy:
    """Replace fields of the process-wide default policy; returns it."""
    global _default_policy
    _default_policy = replace(_default_policy, **overrides)
    return _default_policy


@contextmanager
def using(**overrides) -> Iterator[ExecPolicy]:
    """Temporarily override the default policy (tests, nested tools)."""
    global _default_policy
    saved = _default_policy
    _default_policy = replace(saved, **overrides)
    try:
        yield _default_policy
    finally:
        _default_policy = saved
