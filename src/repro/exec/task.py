"""Task/Campaign model: content-addressed units of simulation work.

A :class:`Task` is one simulation run — a complete
:class:`~repro.experiments.scenario.ScenarioConfig` (the seed lives inside
the config).  Its ``task_id`` is a stable content hash of the full config,
reusing :func:`repro.experiments.cache.cache_key`, so the same cell always
maps to the same checkpoint file no matter which campaign, process, or
session computes it.

A :class:`Campaign` is an ordered list of tasks.  Order matters: the
executor reassembles results in task order (never completion order), which
is what makes parallel aggregates byte-identical to serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.experiments.cache import cache_key
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_to_dict

__all__ = ["Task", "Campaign"]


def task_id_for(config: ScenarioConfig) -> str:
    """Stable content hash identifying one simulation cell."""
    return cache_key("cell", config_to_dict(config))


@dataclass(slots=True)
class Task:
    """One simulation run plus an optional human-facing tag.

    ``tag`` is display-only (progress lines, failure reports); it does not
    enter the task id.
    """

    config: ScenarioConfig
    tag: str = ""
    task_id: str = field(init=False)

    def __post_init__(self) -> None:
        self.task_id = task_id_for(self.config)

    def describe(self) -> str:
        """Short label for progress/error lines."""
        if self.tag:
            return f"{self.tag} (seed {self.config.seed})"
        return f"{self.config.protocol} seed {self.config.seed}"


@dataclass(slots=True)
class Campaign:
    """A named, ordered set of independent tasks.

    Duplicate task ids are rejected: two identical configs in one campaign
    are almost always a seed-assignment bug, and they would race on the
    same checkpoint file.
    """

    name: str
    tasks: list[Task]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"campaign {self.name!r} has no tasks")
        seen: dict[str, Task] = {}
        for task in self.tasks:
            clash = seen.get(task.task_id)
            if clash is not None:
                raise ValueError(
                    f"campaign {self.name!r} contains duplicate task "
                    f"{task.describe()!r} (same config as {clash.describe()!r})"
                )
            seen[task.task_id] = task

    def __len__(self) -> int:
        return len(self.tasks)

    @classmethod
    def from_configs(
        cls,
        name: str,
        configs: Iterable[ScenarioConfig],
        tags: Sequence[str] | None = None,
    ) -> "Campaign":
        """Wrap ready-made configs (seeds already assigned) as a campaign."""
        configs = list(configs)
        if tags is not None and len(tags) != len(configs):
            raise ValueError("tags must match configs one-to-one")
        return cls(
            name,
            [
                Task(config, tag=tags[i] if tags is not None else "")
                for i, config in enumerate(configs)
            ],
        )

    @classmethod
    def replication(
        cls,
        name: str,
        config: ScenarioConfig,
        n_runs: int,
        base_seed: int | None = None,
    ) -> "Campaign":
        """The ``replicate()`` seed ladder as a campaign: seeds ``base + k``."""
        if n_runs < 1:
            raise ValueError(f"need ≥ 1 run, got {n_runs}")
        base = config.seed if base_seed is None else base_seed
        return cls.from_configs(
            name, [replace(config, seed=base + k) for k in range(n_runs)]
        )
