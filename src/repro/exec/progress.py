"""Campaign progress: throttled stderr lines + structured JSONL run log.

One :class:`ProgressReporter` observes one campaign.  It prints a
human-facing status line at most every ``min_interval_s`` seconds
(``[name] done/total ok, N failed, M cached | X ev/s | ETA Ys``) and, when
given a log path, appends one JSON object per event — machine-readable
telemetry that survives the run (throughput regressions, failure
forensics, resumability audits).

Events: ``campaign_start``, ``task_done``, ``campaign_end``.  The
``task_done`` record carries task id, status, attempts, duration, source
(fresh run vs checkpoint), and simulated events executed.

Durability: the log is held open for the campaign's lifetime and flushed
after every event, so a killed run leaves only whole lines behind;
``campaign_end`` additionally fsyncs before closing.  The log is the
post-mortem record — it must be parseable after any crash.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

__all__ = ["ProgressReporter"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.scheduler import CampaignResult, TaskOutcome
    from repro.exec.task import Campaign


class ProgressReporter:
    """Streams campaign progress to stderr and an optional JSONL log."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        log_path: str | Path | None = None,
        min_interval_s: float = 1.0,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.log_path = Path(log_path) if log_path is not None else None
        self.min_interval_s = min_interval_s
        self._name = ""
        self._total = 0
        self._ok = 0
        self._failed = 0
        self._cached = 0
        self._events = 0
        self._run_time_s = 0.0  # summed per-task durations (fresh runs)
        self._runs = 0
        self._workers = 1
        self._t0 = 0.0
        self._last_line = 0.0
        self._log_fh: IO[str] | None = None

    # ------------------------------------------------------------------ #
    # Event hooks (called by the executor)
    # ------------------------------------------------------------------ #
    def campaign_started(self, campaign: "Campaign", workers: int) -> None:
        self._name = campaign.name
        self._total = len(campaign)
        self._workers = max(1, workers)
        self._t0 = time.monotonic()
        self._last_line = 0.0
        self._log(
            {
                "event": "campaign_start",
                "campaign": campaign.name,
                "tasks": len(campaign),
                "workers": workers,
            }
        )

    def task_finished(self, outcome: "TaskOutcome") -> None:
        if outcome.status == "ok":
            self._ok += 1
            if outcome.result is not None:
                self._events += outcome.result.events_executed
        else:
            self._failed += 1
        if outcome.source == "checkpoint":
            self._cached += 1
        else:
            self._runs += 1
            self._run_time_s += outcome.duration_s
        self._log(
            {
                "event": "task_done",
                "campaign": self._name,
                "task_id": outcome.task.task_id,
                "task": outcome.task.describe(),
                "status": outcome.status,
                "source": outcome.source,
                "kind": outcome.kind,
                "attempts": outcome.attempts,
                "duration_s": round(outcome.duration_s, 6),
                "events_executed": (
                    outcome.result.events_executed if outcome.result else 0
                ),
                "error": outcome.error,
            }
        )
        self._line(final=self._ok + self._failed >= self._total)

    def campaign_finished(self, result: "CampaignResult") -> None:
        wall = max(time.monotonic() - self._t0, 1e-9)
        self._log(
            {
                "event": "campaign_end",
                "campaign": self._name,
                "ok": self._ok,
                "failed": self._failed,
                "cached": self._cached,
                "wall_s": round(wall, 3),
                "events_per_s": round(self._events / wall, 1),
            },
            durable=True,
        )
        self._close_log()
        self._line(final=True)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def _line(self, final: bool = False) -> None:
        now = time.monotonic()
        if not final and now - self._last_line < self.min_interval_s:
            return
        self._last_line = now
        wall = max(now - self._t0, 1e-9)
        done = self._ok + self._failed
        parts = [f"[{self._name}] {done}/{self._total} done"]
        if self._failed:
            parts.append(f"{self._failed} failed")
        if self._cached:
            parts.append(f"{self._cached} cached")
        parts.append(f"{self._events / wall:,.0f} ev/s")
        remaining = self._total - done
        if remaining and self._runs:
            eta = remaining * (self._run_time_s / self._runs) / self._workers
            parts.append(f"ETA {eta:,.0f}s")
        print(" | ".join(parts), file=self.stream, flush=True)

    def _log(self, record: dict[str, Any], durable: bool = False) -> None:
        if self.log_path is None:
            return
        record = {"t": round(time.time(), 3), **record}
        try:
            if self._log_fh is None or self._log_fh.closed:
                self.log_path.parent.mkdir(parents=True, exist_ok=True)
                self._log_fh = self.log_path.open("a")
            self._log_fh.write(json.dumps(record) + "\n")
            # Per-event flush: a SIGKILL mid-campaign loses at most the
            # event being written, never earlier lines.
            self._log_fh.flush()
            if durable:
                os.fsync(self._log_fh.fileno())
        except OSError:  # telemetry must never kill the campaign
            pass

    def _close_log(self) -> None:
        if self._log_fh is not None and not self._log_fh.closed:
            try:
                self._log_fh.close()
            except OSError:
                pass
        self._log_fh = None
