"""Parallel campaign executor for embarrassingly parallel sweeps.

Every reconstructed figure is a grid of independent ``(ScenarioConfig,
seed)`` cells whose results are aggregated afterwards.  This package turns
such a grid into a :class:`Campaign` of deterministic, content-addressed
:class:`Task`\\ s and executes it under an :class:`ExecPolicy`:

* ``workers=1`` (the default) runs cells in-process, in task order —
  bit-identical to the historical serial loops, so seed tests and
  determinism guarantees are untouched.
* ``workers>1`` fans cells out over a ``ProcessPoolExecutor`` with
  per-task wall-clock timeouts, bounded retry with backoff, and
  worker-crash isolation (a dead or hung cell is recorded as failed and
  the campaign continues).
* Completed cells are checkpointed one file each under
  ``results/cache/cells/`` so an interrupted campaign resumes from what
  finished instead of recomputing the whole sweep.
* Progress (completed/failed, ETA, simulated events/s) streams to stderr
  and to a structured JSONL run log.

Because each cell is simulated from its own seed in a fresh engine, the
aggregate of a parallel campaign is byte-identical to the serial one —
results are reassembled in task order, never completion order.

Execution is pluggable (:mod:`repro.exec.backends`): beyond the fresh
process pool there is a persistent *warm* work-stealing pool (amortises
spawn + import across campaigns — the dominant cost for short cells) and
a coordinator-free *filestore* backend where N independent launcher
processes cooperate over the content-addressed cell directory via atomic
claim files (kill-safe: stale claims from dead launchers are swept).  On
top, :mod:`repro.exec.adaptive` adds sequential-statistics early stopping:
campaigns declare a metric + CI half-width and stop buying seeds for
cells that already converged, with every stop decision audit-logged.

Quickstart::

    from repro.exec import ExecPolicy, run_configs

    results = run_configs("my-sweep", configs, ExecPolicy(workers=4))
    results = run_configs("warm", configs, ExecPolicy(workers=4, backend="warm"))

or process-wide (the experiments CLI does this for ``--workers``)::

    from repro.exec import configure

    configure(workers=4, resume=True)
"""

from repro.exec.adaptive import (
    AdaptiveDecision,
    AdaptivePolicy,
    AdaptiveReport,
    parse_adaptive_spec,
    run_adaptive_cells,
)
from repro.exec.backends import (
    BACKENDS,
    Backend,
    ClaimStore,
    FileStoreBackend,
    PoolBackend,
    SerialBackend,
    WarmPoolBackend,
    make_backend,
    shared_warm_pool,
    shutdown_shared_pools,
)
from repro.exec.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.exec.policy import ExecPolicy, configure, current_policy, using
from repro.exec.progress import ProgressReporter
from repro.exec.scheduler import (
    CampaignExecutor,
    CampaignResult,
    TaskOutcome,
    quarantine_dir,
    run_configs,
)
from repro.exec.task import Campaign, Task

__all__ = [
    "BACKENDS",
    "CHECKPOINT_SCHEMA",
    "AdaptiveDecision",
    "AdaptivePolicy",
    "AdaptiveReport",
    "Backend",
    "Campaign",
    "CampaignExecutor",
    "CampaignResult",
    "CheckpointStore",
    "ClaimStore",
    "ExecPolicy",
    "FileStoreBackend",
    "PoolBackend",
    "ProgressReporter",
    "SerialBackend",
    "Task",
    "TaskOutcome",
    "WarmPoolBackend",
    "configure",
    "current_policy",
    "make_backend",
    "parse_adaptive_spec",
    "quarantine_dir",
    "run_adaptive_cells",
    "run_configs",
    "shared_warm_pool",
    "shutdown_shared_pools",
    "using",
]
