"""Parallel campaign executor for embarrassingly parallel sweeps.

Every reconstructed figure is a grid of independent ``(ScenarioConfig,
seed)`` cells whose results are aggregated afterwards.  This package turns
such a grid into a :class:`Campaign` of deterministic, content-addressed
:class:`Task`\\ s and executes it under an :class:`ExecPolicy`:

* ``workers=1`` (the default) runs cells in-process, in task order —
  bit-identical to the historical serial loops, so seed tests and
  determinism guarantees are untouched.
* ``workers>1`` fans cells out over a ``ProcessPoolExecutor`` with
  per-task wall-clock timeouts, bounded retry with backoff, and
  worker-crash isolation (a dead or hung cell is recorded as failed and
  the campaign continues).
* Completed cells are checkpointed one file each under
  ``results/cache/cells/`` so an interrupted campaign resumes from what
  finished instead of recomputing the whole sweep.
* Progress (completed/failed, ETA, simulated events/s) streams to stderr
  and to a structured JSONL run log.

Because each cell is simulated from its own seed in a fresh engine, the
aggregate of a parallel campaign is byte-identical to the serial one —
results are reassembled in task order, never completion order.

Quickstart::

    from repro.exec import ExecPolicy, run_configs

    results = run_configs("my-sweep", configs, ExecPolicy(workers=4))

or process-wide (the experiments CLI does this for ``--workers``)::

    from repro.exec import configure

    configure(workers=4, resume=True)
"""

from repro.exec.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore
from repro.exec.policy import ExecPolicy, configure, current_policy, using
from repro.exec.progress import ProgressReporter
from repro.exec.scheduler import (
    CampaignExecutor,
    CampaignResult,
    TaskOutcome,
    run_configs,
)
from repro.exec.task import Campaign, Task

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Campaign",
    "CampaignExecutor",
    "CampaignResult",
    "CheckpointStore",
    "ExecPolicy",
    "ProgressReporter",
    "Task",
    "TaskOutcome",
    "configure",
    "current_policy",
    "run_configs",
    "using",
]
