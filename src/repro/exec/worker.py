"""Worker-side task execution: payload in, structured outcome out.

:func:`execute_payload` is the single entry point a pool worker (or the
serial path — same code, same semantics) runs for one task.  It never
raises for *task* problems: simulation errors and wall-clock timeouts come
back as structured failure dicts so the scheduler can retry or record them
without tearing the pool down.  Only genuine process death (segfault,
``os._exit``) surfaces as a broken pool, which the scheduler isolates.

Timeouts use ``SIGALRM``/``setitimer``: each pool worker is a
single-threaded process, so the alarm interrupts the simulation loop at
the next bytecode boundary.  On platforms without ``SIGALRM`` (or off the
main thread) the limit is simply not enforced.

Chaos hook: set ``REPRO_EXEC_FAULT=exit:<seed>`` (hard process death) or
``hang:<seed>`` (never returns) to make the worker misbehave for exactly
that seed — this is how the crash-isolation tests and the resumability
demo kill a worker mid-campaign deterministically.  The *once* variants
``error_once:<seed>:<dir>`` and ``hang_once:<seed>:<dir>`` misbehave only
on the first attempt (a marker file in ``<dir>`` records that the fault
fired), which is how retry-after-failure and retry-after-timeout ordering
are exercised across process boundaries.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Any, Iterator

from repro.experiments.runner import run_scenario
from repro.experiments.serialization import (
    config_from_dict,
    config_to_dict,
    result_to_dict,
)

__all__ = ["make_payload", "execute_payload", "watch_parent"]

#: Environment variable enabling deterministic fault injection (see above).
FAULT_ENV = "REPRO_EXEC_FAULT"


def watch_parent(parent_pid: int, poll_s: float = 1.0) -> None:
    """Pool-worker initializer: die when the orchestrating process does.

    A ``ProcessPoolExecutor`` worker blocks on its call queue forever if
    the parent is SIGKILLed mid-campaign — sibling workers hold the
    queue pipe's write end open, so no EOF ever arrives.  A daemon
    thread polling ``os.getppid()`` turns those would-be orphans into
    immediate exits; abandoning the in-flight cell loses nothing, since
    checkpoints are written by the (now dead) parent.
    """

    def _watch() -> None:
        while os.getppid() == parent_pid:
            time.sleep(poll_s)
        os._exit(0)

    threading.Thread(target=_watch, name="parent-watchdog", daemon=True).start()


class _TaskTimeout(Exception):
    """Raised inside the worker when the per-task wall-clock budget expires."""


@contextmanager
def _deadline(timeout_s: float | None) -> Iterator[None]:
    """Enforce a wall-clock budget via SIGALRM where possible."""
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise _TaskTimeout

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _maybe_inject_fault(seed: int) -> None:
    spec = os.environ.get(FAULT_ENV, "")
    if not spec:
        return
    kind, _, rest = spec.partition(":")
    target, _, arg = rest.partition(":")
    if target != str(seed):
        return
    if kind == "exit":
        os._exit(13)  # simulates a segfaulted worker: no cleanup, no result
    if kind == "hang":
        time.sleep(3600.0)
    if kind in ("error_once", "hang_once"):
        # One-shot faults coordinate across processes via a marker file in
        # the directory given as the third spec field: O_EXCL creation
        # means exactly one attempt — the first — sees the fault.
        marker = os.path.join(arg, f"fault-{kind}-{seed}.fired")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return  # already fired: behave normally on this attempt
        if kind == "error_once":
            raise RuntimeError(f"injected one-shot error for seed {seed}")
        time.sleep(3600.0)


def make_payload(config_dict: dict[str, Any], timeout_s: float | None) -> dict[str, Any]:
    """Self-contained, picklable work order for one task."""
    return {"config": config_dict, "timeout_s": timeout_s}


def payload_for_config(config, timeout_s: float | None) -> dict[str, Any]:
    """Convenience: build a payload straight from a ScenarioConfig."""
    return make_payload(config_to_dict(config), timeout_s)


def execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one task; return a structured ok/failure dict (never raises).

    Ok: ``{"ok": True, "result": <result dict>, "duration_s": …}``.
    Failure: ``{"ok": False, "kind": "timeout"|"error", "error": …,
    "duration_s": …}``.
    """
    t0 = time.perf_counter()
    try:
        config = config_from_dict(payload["config"])
        with _deadline(payload.get("timeout_s")):
            _maybe_inject_fault(config.seed)
            result = run_scenario(config)
        return {
            "ok": True,
            "result": result_to_dict(result),
            "duration_s": time.perf_counter() - t0,
        }
    except _TaskTimeout:
        return {
            "ok": False,
            "kind": "timeout",
            "error": f"task exceeded {payload.get('timeout_s')} s wall clock",
            "duration_s": time.perf_counter() - t0,
        }
    except Exception:
        return {
            "ok": False,
            "kind": "error",
            "error": traceback.format_exc(limit=10),
            "duration_s": time.perf_counter() - t0,
        }
