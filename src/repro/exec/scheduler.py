"""Campaign scheduler: orchestration over pluggable execution backends.

The :class:`CampaignExecutor` runs a :class:`~repro.exec.task.Campaign`
under an :class:`~repro.exec.policy.ExecPolicy`:

* ``backend="serial"`` (the ``auto`` default at ``workers == 1``): cells
  execute in-process, in task order — the historical serial behaviour,
  with the historical retry-in-place loop.
* Any other backend (``pool``, ``warm``, ``filestore`` — see
  :mod:`repro.exec.backends`): cells fan out in retry *rounds*.  Failure
  containment is layered: simulation errors and wall-clock timeouts are
  returned as structured failures by the worker (retried with exponential
  backoff up to ``retries`` times); hard process death is reported by the
  backend as a *crash suspect* under a separate, small crash budget, so
  one poisoned cell cannot sink its innocent neighbours, yet a cell that
  kills every worker it touches is eventually recorded as failed and the
  campaign completes without it.

Completed cells are checkpointed per-task (see
:mod:`repro.exec.checkpoint`); with ``resume=True`` they are loaded
instead of recomputed.  Cells that end up *failed* are written to the
quarantine directory (``results/cache/quarantine/<task_id>.json``) with
their full error record, so a post-mortem never depends on scrollback.
Outcomes are always reassembled in task order, so parallel aggregates are
byte-identical to serial ones.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.exec.backends import Backend, PoolBackend, make_backend
from repro.exec.checkpoint import CheckpointStore
from repro.exec.policy import ExecPolicy, current_policy
from repro.exec.progress import ProgressReporter
from repro.exec.task import Campaign, Task
from repro.exec.worker import execute_payload, payload_for_config
from repro.experiments.cache import atomic_write_json, cache_dir
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import result_from_dict, result_to_dict

__all__ = [
    "CampaignExecutor",
    "CampaignResult",
    "TaskOutcome",
    "quarantine_dir",
    "run_configs",
]


def quarantine_dir() -> Path:
    """Directory holding one JSON record per terminally failed cell."""
    return cache_dir() / "quarantine"


@dataclass(slots=True)
class TaskOutcome:
    """What happened to one task.

    ``status`` is ``"ok"`` or ``"failed"``; ``source`` says whether the
    result came from a fresh ``"run"`` or a ``"checkpoint"``; ``kind``
    classifies failures (``"error"``, ``"timeout"``, ``"crash"``).
    """

    task: Task
    status: str
    source: str = "run"
    result: ScenarioResult | None = None
    error: str | None = None
    kind: str | None = None
    attempts: int = 1
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class CampaignResult:
    """Outcomes of a finished campaign, in task order."""

    def __init__(
        self, campaign: Campaign, outcomes: list[TaskOutcome], wall_s: float
    ) -> None:
        self.campaign = campaign
        self.outcomes = outcomes
        self.wall_s = wall_s

    @property
    def ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.ok

    @property
    def failures(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def replicate_seconds(self) -> float:
        """Summed fresh-run wall time — the campaign's compute spend."""
        return sum(o.duration_s for o in self.outcomes if o.source == "run")

    def results(self, strict: bool = True) -> list[ScenarioResult]:
        """Results in task order; raises on any failure when ``strict``."""
        if strict and self.failed:
            lines = [
                f"  {o.task.describe()}: [{o.kind}] "
                f"{(o.error or '').strip().splitlines()[-1] if o.error else '?'}"
                for o in self.failures[:5]
            ]
            raise RuntimeError(
                f"campaign {self.campaign.name!r}: {self.failed} of "
                f"{len(self.outcomes)} tasks failed:\n" + "\n".join(lines)
            )
        return [o.result for o in self.outcomes if o.ok]


class CampaignExecutor:
    """Runs campaigns under a policy; see module docstring."""

    def __init__(
        self,
        policy: ExecPolicy | None = None,
        store: CheckpointStore | None = None,
        reporter: ProgressReporter | None = None,
        backend: Backend | None = None,
    ) -> None:
        self.policy = policy
        self.store = store
        self.reporter = reporter
        self.backend = backend

    # ------------------------------------------------------------------ #
    def run(self, campaign: Campaign) -> CampaignResult:
        policy = self.policy if self.policy is not None else current_policy()
        store = self.store
        if store is None and policy.wants_checkpoint:
            store = CheckpointStore()
        reporter = self.reporter
        if reporter is None and policy.progress:
            log_dir = policy.log_dir or cache_dir() / "runs"
            reporter = ProgressReporter(
                log_path=log_dir
                / f"{campaign.name}-{os.getpid()}-{int(time.time())}.jsonl"
            )

        t0 = time.monotonic()
        if reporter is not None:
            reporter.campaign_started(campaign, policy.workers)

        outcomes: dict[int, TaskOutcome] = {}

        def record(index: int, outcome: TaskOutcome) -> None:
            outcomes[index] = outcome
            if outcome.ok and outcome.source == "run" and store is not None:
                # Reserialising the reconstructed result is exact
                # (shortest-repr floats round-trip).
                store.store(outcome.task.task_id, result_to_dict(outcome.result))
            if not outcome.ok:
                self._quarantine(campaign, outcome)
            if reporter is not None:
                reporter.task_finished(outcome)

        # Resume pass: completed cells load instead of recomputing.
        pending: list[int] = []
        for i, task in enumerate(campaign.tasks):
            payload = store.load(task.task_id) if (policy.resume and store) else None
            if payload is not None:
                record(
                    i,
                    TaskOutcome(
                        task=task,
                        status="ok",
                        source="checkpoint",
                        result=result_from_dict(payload),
                        attempts=0,
                    ),
                )
            else:
                pending.append(i)

        if pending:
            backend = self.backend
            if backend is None:
                backend = make_backend(policy, store=store)
            try:
                if policy.effective_backend == "serial":
                    self._run_serial(campaign, pending, policy, record)
                else:
                    self._run_rounds(
                        campaign, pending, policy, record, backend
                    )
            finally:
                backend.close()

        ordered = [outcomes[i] for i in range(len(campaign.tasks))]
        result = CampaignResult(campaign, ordered, time.monotonic() - t0)
        if reporter is not None:
            reporter.campaign_finished(result)
        return result

    # ------------------------------------------------------------------ #
    def _run_serial(self, campaign, pending, policy, record) -> None:
        for i in pending:
            task = campaign.tasks[i]
            attempt = 0
            while True:
                attempt += 1
                out = execute_payload(
                    payload_for_config(task.config, policy.task_timeout_s)
                )
                if out["ok"]:
                    record(i, self._ok_outcome(task, out, attempt))
                    break
                if attempt <= policy.retries:
                    if policy.backoff_s > 0:
                        time.sleep(policy.backoff_s * (2 ** (attempt - 1)))
                    continue
                record(i, self._fail_outcome(task, out, attempt))
                break

    def _run_rounds(self, campaign, pending, policy, record, backend) -> None:
        # Crash containment: a backend that cannot attribute a hard worker
        # death to one cell (the fresh-pool backend: the whole pool breaks)
        # reports every unfinished in-flight cell as a *suspect*.  Suspects
        # re-run one per single-task batch, so a poisoned cell can only
        # break its own pool.  A cell that crashes ``crash_limit`` times
        # (once shared, then solo) is recorded as failed; innocents
        # complete solo on their first quarantined run.  Backends with
        # exact attribution (warm pool, filestore) simply report fewer
        # suspects.
        crash_limit = max(2, policy.retries + 1)
        solo_isolation = isinstance(backend, PoolBackend)
        queue: list[tuple[int, int, int]] = [(i, 1, 0) for i in pending]
        round_no = 0
        while queue:
            if round_no and policy.backoff_s > 0:
                time.sleep(min(policy.backoff_s * (2 ** (round_no - 1)), 30.0))
            round_no += 1
            batch, queue = queue, []
            retry: list[tuple[int, int, int]] = []

            def absorb(index: int, attempt: int, crashes: int, out: dict) -> None:
                task = campaign.tasks[index]
                if out["ok"]:
                    record(index, self._ok_outcome(task, out, attempt))
                elif attempt <= policy.retries:
                    retry.append((index, attempt + 1, crashes))
                else:
                    record(index, self._fail_outcome(task, out, attempt))

            def crashed(index: int, attempt: int, crashes: int) -> None:
                crashes += 1
                if crashes >= crash_limit:
                    record(
                        index,
                        TaskOutcome(
                            task=campaign.tasks[index],
                            status="failed",
                            kind="crash",
                            error=(
                                "worker process died repeatedly "
                                f"({crashes}×) while running this task"
                            ),
                            attempts=attempt,
                        ),
                    )
                else:
                    retry.append((index, attempt, crashes))

            if solo_isolation:
                fresh = [e for e in batch if e[2] == 0]
                suspects = [e for e in batch if e[2] > 0]
            else:
                fresh, suspects = list(batch), []

            if fresh:
                backend.run_batch(
                    campaign, fresh, policy,
                    min(policy.workers, len(fresh)), absorb, crashed,
                )
            for entry in suspects:
                backend.run_batch(
                    campaign, [entry], policy, 1, absorb, crashed
                )
            queue = retry

    # ------------------------------------------------------------------ #
    def _quarantine(self, campaign: Campaign, outcome: TaskOutcome) -> None:
        """Persist a terminally failed cell's forensics record."""
        try:
            atomic_write_json(
                quarantine_dir() / f"{outcome.task.task_id}.json",
                {
                    "campaign": campaign.name,
                    "task_id": outcome.task.task_id,
                    "task": outcome.task.describe(),
                    "kind": outcome.kind,
                    "error": outcome.error,
                    "attempts": outcome.attempts,
                    "seed": outcome.task.config.seed,
                    "protocol": outcome.task.config.protocol,
                },
            )
        except OSError:  # forensics must never kill the campaign
            pass

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ok_outcome(task: Task, out: dict, attempt: int) -> TaskOutcome:
        return TaskOutcome(
            task=task,
            status="ok",
            result=result_from_dict(out["result"]),
            attempts=attempt,
            duration_s=out.get("duration_s", 0.0),
        )

    @staticmethod
    def _fail_outcome(task: Task, out: dict, attempt: int) -> TaskOutcome:
        return TaskOutcome(
            task=task,
            status="failed",
            kind=out.get("kind", "error"),
            error=out.get("error"),
            attempts=attempt,
            duration_s=out.get("duration_s", 0.0),
        )


def run_configs(
    name: str,
    configs: Sequence[ScenarioConfig],
    policy: ExecPolicy | None = None,
    reporter: ProgressReporter | None = None,
    tags: Sequence[str] | None = None,
) -> list[ScenarioResult]:
    """Execute ready-made configs as one campaign; results in input order.

    The one-call entry point the figure sweeps use: policy defaults to the
    process-wide :func:`~repro.exec.policy.current_policy` (which the CLI
    configures from ``--workers``/``--resume``), and any failed cell
    raises with a summary of what went wrong.
    """
    campaign = Campaign.from_configs(name, configs, tags=tags)
    executor = CampaignExecutor(policy=policy, reporter=reporter)
    return executor.run(campaign).results()
