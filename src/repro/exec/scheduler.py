"""Campaign scheduler: serial or process-pool execution with isolation.

The :class:`CampaignExecutor` runs a :class:`~repro.exec.task.Campaign`
under an :class:`~repro.exec.policy.ExecPolicy`:

* ``workers == 1``: cells execute in-process, in task order — the
  historical serial behaviour.
* ``workers > 1``: cells fan out over a ``ProcessPoolExecutor``.  Failure
  containment is layered: simulation errors and wall-clock timeouts are
  returned as structured failures by the worker (retried with exponential
  backoff up to ``retries`` times); hard process death (segfault, OOM
  kill) breaks the pool, which the scheduler rebuilds — tasks that were
  in flight are requeued under a separate, small crash budget so one
  poisoned cell cannot sink its innocent neighbours, yet a cell that
  kills every worker it touches is eventually recorded as failed and the
  campaign completes without it.

Completed cells are checkpointed per-task (see
:mod:`repro.exec.checkpoint`); with ``resume=True`` they are loaded
instead of recomputed.  Outcomes are always reassembled in task order, so
parallel aggregates are byte-identical to serial ones.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Sequence

from repro.exec.checkpoint import CheckpointStore
from repro.exec.policy import ExecPolicy, current_policy
from repro.exec.progress import ProgressReporter
from repro.exec.task import Campaign, Task
from repro.exec.worker import (
    execute_payload,
    payload_for_config,
    watch_parent,
)
from repro.experiments.cache import cache_dir
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import result_from_dict, result_to_dict

__all__ = [
    "CampaignExecutor",
    "CampaignResult",
    "TaskOutcome",
    "run_configs",
]


@dataclass(slots=True)
class TaskOutcome:
    """What happened to one task.

    ``status`` is ``"ok"`` or ``"failed"``; ``source`` says whether the
    result came from a fresh ``"run"`` or a ``"checkpoint"``; ``kind``
    classifies failures (``"error"``, ``"timeout"``, ``"crash"``).
    """

    task: Task
    status: str
    source: str = "run"
    result: ScenarioResult | None = None
    error: str | None = None
    kind: str | None = None
    attempts: int = 1
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class CampaignResult:
    """Outcomes of a finished campaign, in task order."""

    def __init__(
        self, campaign: Campaign, outcomes: list[TaskOutcome], wall_s: float
    ) -> None:
        self.campaign = campaign
        self.outcomes = outcomes
        self.wall_s = wall_s

    @property
    def ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.ok

    @property
    def failures(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def results(self, strict: bool = True) -> list[ScenarioResult]:
        """Results in task order; raises on any failure when ``strict``."""
        if strict and self.failed:
            lines = [
                f"  {o.task.describe()}: [{o.kind}] "
                f"{(o.error or '').strip().splitlines()[-1] if o.error else '?'}"
                for o in self.failures[:5]
            ]
            raise RuntimeError(
                f"campaign {self.campaign.name!r}: {self.failed} of "
                f"{len(self.outcomes)} tasks failed:\n" + "\n".join(lines)
            )
        return [o.result for o in self.outcomes if o.ok]


class CampaignExecutor:
    """Runs campaigns under a policy; see module docstring."""

    def __init__(
        self,
        policy: ExecPolicy | None = None,
        store: CheckpointStore | None = None,
        reporter: ProgressReporter | None = None,
    ) -> None:
        self.policy = policy
        self.store = store
        self.reporter = reporter

    # ------------------------------------------------------------------ #
    def run(self, campaign: Campaign) -> CampaignResult:
        policy = self.policy if self.policy is not None else current_policy()
        store = self.store
        if store is None and policy.wants_checkpoint:
            store = CheckpointStore()
        reporter = self.reporter
        if reporter is None and policy.progress:
            log_dir = policy.log_dir or cache_dir() / "runs"
            reporter = ProgressReporter(
                log_path=log_dir
                / f"{campaign.name}-{os.getpid()}-{int(time.time())}.jsonl"
            )

        t0 = time.monotonic()
        if reporter is not None:
            reporter.campaign_started(campaign, policy.workers)

        outcomes: dict[int, TaskOutcome] = {}

        def record(index: int, outcome: TaskOutcome) -> None:
            outcomes[index] = outcome
            if outcome.ok and outcome.source == "run" and store is not None:
                # Reserialising the reconstructed result is exact
                # (shortest-repr floats round-trip).
                store.store(outcome.task.task_id, result_to_dict(outcome.result))
            if reporter is not None:
                reporter.task_finished(outcome)

        # Resume pass: completed cells load instead of recomputing.
        pending: list[int] = []
        for i, task in enumerate(campaign.tasks):
            payload = store.load(task.task_id) if (policy.resume and store) else None
            if payload is not None:
                record(
                    i,
                    TaskOutcome(
                        task=task,
                        status="ok",
                        source="checkpoint",
                        result=result_from_dict(payload),
                        attempts=0,
                    ),
                )
            else:
                pending.append(i)

        if pending:
            if policy.workers <= 1:
                self._run_serial(campaign, pending, policy, record)
            else:
                self._run_parallel(campaign, pending, policy, record)

        ordered = [outcomes[i] for i in range(len(campaign.tasks))]
        result = CampaignResult(campaign, ordered, time.monotonic() - t0)
        if reporter is not None:
            reporter.campaign_finished(result)
        return result

    # ------------------------------------------------------------------ #
    def _run_serial(self, campaign, pending, policy, record) -> None:
        for i in pending:
            task = campaign.tasks[i]
            attempt = 0
            while True:
                attempt += 1
                out = execute_payload(
                    payload_for_config(task.config, policy.task_timeout_s)
                )
                if out["ok"]:
                    record(i, self._ok_outcome(task, out, attempt))
                    break
                if attempt <= policy.retries:
                    if policy.backoff_s > 0:
                        time.sleep(policy.backoff_s * (2 ** (attempt - 1)))
                    continue
                record(i, self._fail_outcome(task, out, attempt))
                break

    def _run_parallel(self, campaign, pending, policy, record) -> None:
        # Crash containment: when a worker dies hard, the whole pool
        # breaks and every unfinished future is indistinguishable from the
        # victim.  All of them are requeued as *suspects* and re-run one
        # per single-task pool, so a poisoned cell can only break its own
        # pool.  A cell that crashes ``crash_limit`` times (once shared,
        # then solo) is recorded as failed; innocents complete solo on
        # their first quarantined run.
        crash_limit = max(2, policy.retries + 1)
        queue: list[tuple[int, int, int]] = [(i, 1, 0) for i in pending]
        round_no = 0
        while queue:
            if round_no and policy.backoff_s > 0:
                time.sleep(min(policy.backoff_s * (2 ** (round_no - 1)), 30.0))
            round_no += 1
            batch, queue = queue, []
            retry: list[tuple[int, int, int]] = []

            def absorb(index: int, attempt: int, crashes: int, out: dict) -> None:
                task = campaign.tasks[index]
                if out["ok"]:
                    record(index, self._ok_outcome(task, out, attempt))
                elif attempt <= policy.retries:
                    retry.append((index, attempt + 1, crashes))
                else:
                    record(index, self._fail_outcome(task, out, attempt))

            def crashed(index: int, attempt: int, crashes: int) -> None:
                crashes += 1
                if crashes >= crash_limit:
                    record(
                        index,
                        TaskOutcome(
                            task=campaign.tasks[index],
                            status="failed",
                            kind="crash",
                            error=(
                                "worker process died repeatedly "
                                f"({crashes}×) while running this task"
                            ),
                            attempts=attempt,
                        ),
                    )
                else:
                    retry.append((index, attempt, crashes))

            fresh = [entry for entry in batch if entry[2] == 0]
            suspects = [entry for entry in batch if entry[2] > 0]

            if fresh:
                self._run_pool(
                    campaign, fresh, policy, min(policy.workers, len(fresh)),
                    absorb, crashed,
                )
            for entry in suspects:
                self._run_pool(
                    campaign, [entry], policy, 1, absorb, crashed
                )
            queue = retry

    def _run_pool(
        self, campaign, batch, policy, workers, absorb, crashed
    ) -> None:
        """One pool over ``batch``; crash-suspect entries go to ``crashed``."""
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=watch_parent,
            initargs=(os.getpid(),),
        )
        futures = {
            pool.submit(
                execute_payload,
                payload_for_config(
                    campaign.tasks[i].config, policy.task_timeout_s
                ),
            ): (i, attempt, crashes)
            for i, attempt, crashes in batch
        }
        try:
            for fut in as_completed(futures):
                i, attempt, crashes = futures.pop(fut)
                try:
                    out = fut.result()
                except BrokenProcessPool:
                    futures[fut] = (i, attempt, crashes)
                    raise
                except Exception as exc:  # e.g. result unpickling
                    out = {
                        "ok": False,
                        "kind": "error",
                        "error": repr(exc),
                        "duration_s": 0.0,
                    }
                absorb(i, attempt, crashes, out)
        except BrokenProcessPool:
            # A worker died hard.  Finished futures that slipped through
            # before the break are absorbed normally; the rest (victim
            # plus in-flight/queued siblings) become crash suspects.
            for fut, (i, attempt, crashes) in futures.items():
                out = None
                if fut.done() and not fut.cancelled():
                    try:
                        out = fut.result()
                    except Exception:
                        out = None
                if out is not None:
                    absorb(i, attempt, crashes, out)
                else:
                    crashed(i, attempt, crashes)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _ok_outcome(task: Task, out: dict, attempt: int) -> TaskOutcome:
        return TaskOutcome(
            task=task,
            status="ok",
            result=result_from_dict(out["result"]),
            attempts=attempt,
            duration_s=out.get("duration_s", 0.0),
        )

    @staticmethod
    def _fail_outcome(task: Task, out: dict, attempt: int) -> TaskOutcome:
        return TaskOutcome(
            task=task,
            status="failed",
            kind=out.get("kind", "error"),
            error=out.get("error"),
            attempts=attempt,
            duration_s=out.get("duration_s", 0.0),
        )


def run_configs(
    name: str,
    configs: Sequence[ScenarioConfig],
    policy: ExecPolicy | None = None,
    reporter: ProgressReporter | None = None,
    tags: Sequence[str] | None = None,
) -> list[ScenarioResult]:
    """Execute ready-made configs as one campaign; results in input order.

    The one-call entry point the figure sweeps use: policy defaults to the
    process-wide :func:`~repro.exec.policy.current_policy` (which the CLI
    configures from ``--workers``/``--resume``), and any failed cell
    raises with a summary of what went wrong.
    """
    campaign = Campaign.from_configs(name, configs, tags=tags)
    executor = CampaignExecutor(policy=policy, reporter=reporter)
    return executor.run(campaign).results()
