"""Sequential-statistics early stopping for replicated campaigns.

Fixed seed budgets waste most of their replicates: at sweep scale the
easy cells (light load, small grids) converge after a handful of seeds
while the budget keeps buying more.  The classic Monte-Carlo remedy —
sequential confidence-interval stopping, as used throughout the
probabilistic-protocol evaluation literature — is safe here because every
replicate is a content-hashed, deterministic exec cell: stopping early
never changes *which* runs happen, only *how many*.

:class:`AdaptivePolicy` declares the contract — a target metric and the
confidence-interval half-width the campaign must reach — and
:func:`run_adaptive_cells` schedules replicates in waves:

1. every cell runs ``min_reps`` seeds (one campaign over all cells, so a
   worker pool parallelises across the whole grid);
2. each cell's Student-t half-width on the target metric is tested
   against the declared precision; converged cells *stop*;
3. surviving cells buy ``wave`` more seeds each (again one campaign),
   until they converge or hit ``max_reps`` — the fixed budget is the
   worst case, never exceeded.

Seeds are always the ``base, base+1, …`` ladder, so an adaptive cell's
replicates are a strict prefix of the full-budget cell's — which is what
makes the accuracy claim auditable: the adaptive mean must lie within the
declared half-width of the full-budget mean.

Every stop decision is recorded as an :class:`AdaptiveDecision` (and
appended to a JSONL audit log when a path is given): cell key, seeds
bought, mean, half-width, target, and why sampling ended.  ``--no-adaptive``
paths never enter this module, so they stay byte-identical to the
fixed-budget behaviour.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.analysis.stats import sequential_halfwidth
from repro.experiments.runner import ScenarioResult
from repro.experiments.scenario import ScenarioConfig

__all__ = [
    "AdaptiveDecision",
    "AdaptivePolicy",
    "AdaptiveReport",
    "parse_adaptive_spec",
    "run_adaptive_cells",
]


@dataclass(slots=True, frozen=True)
class AdaptivePolicy:
    """Declared precision contract for adaptive replication.

    Attributes
    ----------
    metric:
        Key of :meth:`ScenarioResult.as_dict` the half-width is tested on
        (e.g. ``"pdr"``).
    ci_halfwidth:
        Absolute half-width target.  A cell stops once its Student-t CI
        half-width on ``metric`` is ≤ this value.
    rel_halfwidth:
        Optional *relative* target: half-width ≤ ``rel_halfwidth·|mean|``.
        When both are set, either satisfies the stop test.
    level:
        Confidence level of the interval (default 0.95).
    min_reps:
        Seeds every cell buys before the first stop test.  Student-t needs
        ≥ 2; below 3 the t quantile is so wide that stopping is rare.
    max_reps:
        Hard budget per cell; ``None`` means "use the campaign's full
        budget" (resolved per call site).
    wave:
        Seeds added per surviving cell between stop tests.
    """

    metric: str = "pdr"
    ci_halfwidth: float | None = 0.01
    rel_halfwidth: float | None = None
    level: float = 0.95
    min_reps: int = 5
    max_reps: int | None = None
    wave: int = 2

    def __post_init__(self) -> None:
        if self.ci_halfwidth is None and self.rel_halfwidth is None:
            raise ValueError("need ci_halfwidth and/or rel_halfwidth")
        for name in ("ci_halfwidth", "rel_halfwidth"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive, got {v}")
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {self.level}")
        if self.min_reps < 2:
            raise ValueError(f"min_reps must be ≥ 2, got {self.min_reps}")
        if self.max_reps is not None and self.max_reps < self.min_reps:
            raise ValueError("max_reps must be ≥ min_reps")
        if self.wave < 1:
            raise ValueError(f"wave must be ≥ 1, got {self.wave}")

    # ------------------------------------------------------------------ #
    def resolve(self, budget: int) -> "AdaptivePolicy":
        """Pin ``max_reps`` to the call site's full budget (never above)."""
        cap = budget if self.max_reps is None else min(self.max_reps, budget)
        return replace(
            self, max_reps=max(cap, 2), min_reps=min(self.min_reps, max(cap, 2))
        )

    def converged(self, mean: float, halfwidth: float) -> bool:
        """The declared stop test."""
        if math.isinf(halfwidth) or math.isnan(halfwidth):
            return False
        if self.ci_halfwidth is not None and halfwidth <= self.ci_halfwidth:
            return True
        return (
            self.rel_halfwidth is not None
            and not math.isnan(mean)
            and halfwidth <= self.rel_halfwidth * abs(mean)
        )

    def describe(self) -> str:
        parts = [f"metric={self.metric}"]
        if self.ci_halfwidth is not None:
            parts.append(f"hw≤{self.ci_halfwidth:g}")
        if self.rel_halfwidth is not None:
            parts.append(f"hw≤{self.rel_halfwidth:g}·|mean|")
        parts.append(f"reps {self.min_reps}..{self.max_reps}")
        return " ".join(parts)


@dataclass(slots=True)
class AdaptiveDecision:
    """Audit record: why one cell stopped buying seeds."""

    key: str
    metric: str
    n_used: int
    n_budget: int
    mean: float
    halfwidth: float
    target_halfwidth: float | None
    stopped_early: bool
    reason: str  # "converged" | "budget" | "degenerate"
    waves: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "metric": self.metric,
            "n_used": self.n_used,
            "n_budget": self.n_budget,
            "mean": self.mean,
            "halfwidth": self.halfwidth,
            "target_halfwidth": self.target_halfwidth,
            "stopped_early": self.stopped_early,
            "reason": self.reason,
            "waves": self.waves,
        }


@dataclass(slots=True)
class AdaptiveReport:
    """Outcome of one adaptive campaign: results + the audit trail."""

    results: dict[str, list[ScenarioResult]]
    decisions: list[AdaptiveDecision] = field(default_factory=list)
    waves: int = 0

    @property
    def replicates_used(self) -> int:
        return sum(len(v) for v in self.results.values())

    @property
    def replicates_budget(self) -> int:
        return sum(d.n_budget for d in self.decisions)

    @property
    def saved_fraction(self) -> float:
        """Fraction of the fixed seed budget the stopping rule returned."""
        budget = self.replicates_budget
        if budget <= 0:
            return 0.0
        return 1.0 - self.replicates_used / budget


def parse_adaptive_spec(spec: str) -> AdaptivePolicy:
    """CLI syntax ``METRIC:HALFWIDTH[:MIN_REPS]`` → :class:`AdaptivePolicy`.

    >>> parse_adaptive_spec("pdr:0.01").metric
    'pdr'
    >>> parse_adaptive_spec("mean_delay_s:0.002:3").min_reps
    3
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not parts[0]:
        raise ValueError(
            f"bad adaptive spec {spec!r}; expected METRIC:HALFWIDTH[:MIN_REPS]"
        )
    kwargs: dict[str, Any] = {
        "metric": parts[0],
        "ci_halfwidth": float(parts[1]),
    }
    if len(parts) == 3:
        kwargs["min_reps"] = int(parts[2])
    return AdaptivePolicy(**kwargs)


# --------------------------------------------------------------------- #
# Wave scheduler
# --------------------------------------------------------------------- #
def _metric_values(runs: Sequence[ScenarioResult], metric: str) -> list[float]:
    return [float(r.as_dict()[metric]) for r in runs]


def run_adaptive_cells(
    name: str,
    cells: Sequence[tuple[str, ScenarioConfig]],
    n_budget: int,
    adaptive: AdaptivePolicy,
    policy: Any = None,
    audit_path: str | Path | None = None,
    run_fn: Callable[..., list[ScenarioResult]] | None = None,
) -> AdaptiveReport:
    """Replicate every ``(key, config)`` cell under the stopping rule.

    ``n_budget`` is the fixed budget the non-adaptive path would spend per
    cell; adaptive never exceeds it.  Each wave is ONE executor campaign
    over every surviving cell, so worker pools parallelise across the
    grid exactly like the fixed-budget path.  Cell keys must be unique.

    Returns the per-cell result lists (seed-ladder order, a prefix of the
    fixed-budget ladder) plus the audit trail.
    """
    if n_budget < 2:
        raise ValueError(
            f"adaptive stopping needs a budget ≥ 2 replicates, got {n_budget}"
        )
    if run_fn is None:
        from repro.exec.scheduler import run_configs as run_fn
    keys = [k for k, _ in cells]
    if len(set(keys)) != len(keys):
        raise ValueError(f"adaptive cells need unique keys, got {keys!r}")
    pol = adaptive.resolve(n_budget)
    results: dict[str, list[ScenarioResult]] = {k: [] for k in keys}
    active: dict[str, ScenarioConfig] = dict(cells)
    decisions: list[AdaptiveDecision] = []
    wave_no = 0

    def n_next(k: str) -> int:
        have = len(results[k])
        if have == 0:
            return min(pol.min_reps, pol.max_reps)
        return min(have + pol.wave, pol.max_reps)

    while active:
        wave_no += 1
        wave_keys: list[str] = []
        wave_configs: list[ScenarioConfig] = []
        wave_tags: list[str] = []
        for k, base in active.items():
            for rep in range(len(results[k]), n_next(k)):
                wave_keys.append(k)
                wave_configs.append(replace(base, seed=base.seed + rep))
                wave_tags.append(f"{k} w{wave_no}")
        wave_results = run_fn(
            f"{name}-wave{wave_no}", wave_configs, policy=policy,
            tags=wave_tags,
        )
        for k, result in zip(wave_keys, wave_results):
            results[k].append(result)

        for k in list(active):
            runs = results[k]
            values = _metric_values(runs, pol.metric)
            hw = sequential_halfwidth(values, pol.level)
            finite = [v for v in values if not math.isnan(v)]
            mean = sum(finite) / len(finite) if finite else math.nan
            if pol.converged(mean, hw):
                reason = "degenerate" if hw == 0.0 else "converged"
                stopped = len(runs) < n_budget
            elif len(runs) >= pol.max_reps:
                reason, stopped = "budget", len(runs) < n_budget
            else:
                continue  # buys another wave
            del active[k]
            decisions.append(
                AdaptiveDecision(
                    key=k, metric=pol.metric, n_used=len(runs),
                    n_budget=n_budget, mean=mean, halfwidth=hw,
                    target_halfwidth=pol.ci_halfwidth,
                    stopped_early=stopped, reason=reason, waves=wave_no,
                )
            )

    report = AdaptiveReport(results=results, decisions=decisions, waves=wave_no)
    if audit_path is not None:
        _append_audit(Path(audit_path), name, pol, report)
    return report


def _append_audit(
    path: Path, name: str, pol: AdaptivePolicy, report: AdaptiveReport
) -> None:
    """One JSONL record per stop decision plus a campaign summary line."""
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            base = {
                "t": round(time.time(), 3),
                "campaign": name,
                "pid": os.getpid(),
            }
            for d in report.decisions:
                fh.write(json.dumps(
                    {**base, "event": "stop", **d.to_dict()}) + "\n")
            fh.write(json.dumps({
                **base,
                "event": "summary",
                "policy": pol.describe(),
                "replicates_used": report.replicates_used,
                "replicates_budget": report.replicates_budget,
                "saved_fraction": round(report.saved_fraction, 4),
                "waves": report.waves,
            }) + "\n")
    except OSError:  # audit must never kill the campaign
        pass
