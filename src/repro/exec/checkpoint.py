"""Per-cell checkpoints: one JSON file per completed simulation task.

The whole-sweep cache (:mod:`repro.experiments.cache`) is all-or-nothing —
a crash halfway through a 40-cell sweep used to lose everything.  The
:class:`CheckpointStore` persists every finished cell individually under
``results/cache/cells/<task_id>.json``; a resumed campaign loads finished
cells and only recomputes the rest.

Entries carry a schema version; corrupt or stale files are deleted and
read as misses (the cell simply recomputes), never raised to the caller.
Writes reuse the cache's unique-temp-file + atomic-replace path, so
concurrent workers finishing the same cell cannot interleave bytes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.experiments.cache import atomic_write_json, cache_dir

__all__ = ["CHECKPOINT_SCHEMA", "CheckpointStore"]

#: Bump when the stored result payload layout changes.
CHECKPOINT_SCHEMA = 1


class CheckpointStore:
    """Content-addressed store of finished-cell result payloads."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else cache_dir() / "cells"
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, task_id: str) -> Path:
        """Checkpoint file for ``task_id``."""
        return self.root / f"{task_id}.json"

    def load(self, task_id: str) -> dict[str, Any] | None:
        """Stored result payload, or ``None`` on miss/corruption/stale schema.

        A bad entry is deleted so the cell recomputes cleanly.
        """
        path = self.path(task_id)
        try:
            with path.open() as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != CHECKPOINT_SCHEMA
            or not isinstance(data.get("result"), dict)
        ):
            path.unlink(missing_ok=True)
            return None
        return data["result"]

    def store(self, task_id: str, result_payload: dict[str, Any]) -> None:
        """Persist one finished cell (atomic, concurrency-safe)."""
        atomic_write_json(
            self.path(task_id),
            {"schema": CHECKPOINT_SCHEMA, "task_id": task_id,
             "result": result_payload},
        )

    def __contains__(self, task_id: str) -> bool:
        return self.path(task_id).exists()

    def clear(self) -> int:
        """Delete every checkpoint; returns how many were removed."""
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink(missing_ok=True)
            n += 1
        return n
