"""Pluggable campaign execution backends.

The :class:`~repro.exec.scheduler.CampaignExecutor` owns *orchestration* —
resume, retry rounds, crash budgets, outcome ordering — and delegates the
actual running of a batch of cells to a :class:`Backend`:

``serial``
    Cells execute in-process, in order.  The historical behaviour, and the
    reference every other backend must match byte-for-byte.

``pool``
    A fresh ``ProcessPoolExecutor`` per batch (the pre-backend parallel
    path).  Hard worker death breaks the whole pool, so the scheduler
    re-runs every in-flight sibling as a crash suspect.

``warm``
    A *persistent* worker pool that survives across batches and campaigns
    within the process.  Workers keep their interpreter + numpy state warm
    and steal work from one shared queue, which amortises the per-campaign
    process spawn and import cost — the dominant overhead when cells are
    short (replicate waves, DSE generations).  Worker death is attributed
    to exactly the cell the worker had claimed; siblings are unaffected
    and the dead worker is respawned.

``filestore``
    No worker processes at all: N *independent launcher processes* (e.g.
    on different hosts sharing a filesystem) cooperate over the
    content-addressed cell directory.  Each launcher atomically claims a
    cell by creating ``claims/<task_id>.claim`` with ``O_EXCL``, runs it
    in-process, checkpoints the result, and releases the claim.  Cells
    claimed by someone else are polled for their checkpoint.  A launcher
    that dies mid-claim leaves a stale claim file; the sweep in
    :class:`ClaimStore` (same-host dead PID, or mtime beyond a TTL)
    releases it so a resumed or surviving launcher finishes the work —
    kill-safe with no coordinator.

Backend instances are cheap veneers; the warm pool's processes are shared
process-wide (see :func:`shared_warm_pool`) so repeated campaigns reuse
them.
"""

from __future__ import annotations

import json
import os
import socket
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

import multiprocessing as mp

from repro.exec.checkpoint import CheckpointStore
from repro.exec.worker import execute_payload, payload_for_config, watch_parent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.policy import ExecPolicy
    from repro.exec.task import Campaign

__all__ = [
    "BACKENDS",
    "Backend",
    "ClaimStore",
    "FileStoreBackend",
    "PoolBackend",
    "SerialBackend",
    "WarmPoolBackend",
    "make_backend",
    "shared_warm_pool",
    "shutdown_shared_pools",
]

#: ``(index, attempt, crashes)`` — the scheduler's retry-queue entry.
Entry = tuple[int, int, int]
#: ``absorb(index, attempt, crashes, out_dict)`` — structured completion.
Absorb = Callable[[int, int, int, dict], None]
#: ``crashed(index, attempt, crashes)`` — hard worker death on this cell.
Crashed = Callable[[int, int, int], None]


class Backend(ABC):
    """Executes one batch of cells; orchestration stays in the scheduler."""

    #: Registry key; also what ``ExecPolicy.backend`` names.
    name: str = "abstract"

    @abstractmethod
    def run_batch(
        self,
        campaign: "Campaign",
        batch: Sequence[Entry],
        policy: "ExecPolicy",
        workers: int,
        absorb: Absorb,
        crashed: Crashed,
    ) -> None:
        """Run ``batch``; report every entry via ``absorb`` or ``crashed``."""

    def close(self) -> None:
        """Release per-campaign resources (shared pools stay warm)."""


# --------------------------------------------------------------------- #
# serial
# --------------------------------------------------------------------- #
class SerialBackend(Backend):
    """In-process, in-order execution — the byte-identity reference."""

    name = "serial"

    def run_batch(self, campaign, batch, policy, workers, absorb, crashed):
        for i, attempt, crashes in batch:
            out = execute_payload(
                payload_for_config(campaign.tasks[i].config, policy.task_timeout_s)
            )
            absorb(i, attempt, crashes, out)


# --------------------------------------------------------------------- #
# pool (fresh ProcessPoolExecutor per batch)
# --------------------------------------------------------------------- #
class PoolBackend(Backend):
    """One ``ProcessPoolExecutor`` per batch; broken pools crash-suspect
    every unfinished entry (the pool cannot say which cell killed it)."""

    name = "pool"

    def run_batch(self, campaign, batch, policy, workers, absorb, crashed):
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=watch_parent,
            initargs=(os.getpid(),),
        )
        futures = {
            pool.submit(
                execute_payload,
                payload_for_config(
                    campaign.tasks[i].config, policy.task_timeout_s
                ),
            ): (i, attempt, crashes)
            for i, attempt, crashes in batch
        }
        try:
            for fut in as_completed(futures):
                i, attempt, crashes = futures.pop(fut)
                try:
                    out = fut.result()
                except BrokenProcessPool:
                    futures[fut] = (i, attempt, crashes)
                    raise
                except Exception as exc:  # e.g. result unpickling
                    out = {
                        "ok": False,
                        "kind": "error",
                        "error": repr(exc),
                        "duration_s": 0.0,
                    }
                absorb(i, attempt, crashes, out)
        except BrokenProcessPool:
            # A worker died hard.  Finished futures that slipped through
            # before the break are absorbed normally; the rest (victim
            # plus in-flight/queued siblings) become crash suspects.
            for fut, (i, attempt, crashes) in futures.items():
                out = None
                if fut.done() and not fut.cancelled():
                    try:
                        out = fut.result()
                    except Exception:
                        out = None
                if out is not None:
                    absorb(i, attempt, crashes, out)
                else:
                    crashed(i, attempt, crashes)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------- #
# warm (persistent work-stealing pool)
# --------------------------------------------------------------------- #
def _warm_worker_main(
    parent_pid: int, task_q: "mp.Queue", result_q
) -> None:
    """Persistent worker loop: claim → execute → report, until sentinel.

    The ``("claim", wid, key)`` message *before* execution is what lets the
    parent attribute a hard death to exactly one cell; everything the
    worker has not claimed is untouched by its demise.  ``result_q`` is a
    ``SimpleQueue`` deliberately: its ``put`` is a synchronous pipe write
    (no feeder thread), so a worker that dies the instant after claiming —
    ``os._exit`` inside the cell — cannot lose the claim in an unflushed
    buffer.  Only the claim→execute window itself (no user code) is
    unattributable.
    """
    watch_parent(parent_pid)
    wid = os.getpid()
    while True:
        item = task_q.get()
        if item is None:  # shutdown sentinel
            break
        key, payload = item
        result_q.put(("claim", wid, key))
        out = execute_payload(payload)
        result_q.put(("done", wid, key, out))


class _WarmPool:
    """The shared persistent worker processes behind ``warm`` backends."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._ctx = mp.get_context("spawn")
        self.task_q: mp.Queue = self._ctx.Queue()
        # SimpleQueue: synchronous writes, so claims survive worker death.
        self.result_q = self._ctx.SimpleQueue()
        self._procs: list = []
        for _ in range(workers):
            self._spawn_one()

    def _spawn_one(self) -> None:
        proc = self._ctx.Process(
            target=_warm_worker_main,
            args=(os.getpid(), self.task_q, self.result_q),
            daemon=True,
        )
        proc.start()
        self._procs.append(proc)

    # ------------------------------------------------------------------ #
    def run(
        self,
        items: dict[int, dict[str, Any]],
        absorb_out: Callable[[int, dict], None],
        crashed_key: Callable[[int], None],
        poll_s: float = 0.2,
    ) -> None:
        """Push ``items`` (key → payload) and drain until all accounted for.

        A worker that dies holding a claim gets its cell reported via
        ``crashed_key`` and is replaced; unclaimed cells stay queued for
        the survivors — work stealing makes the reassignment automatic.
        """
        outstanding = set(items)
        for key, payload in items.items():
            self.task_q.put((key, payload))
        claimed: dict[int, int] = {}  # worker pid → cell key
        while outstanding:
            # SimpleQueue has no timeout; poll its read pipe directly so
            # corpse detection still runs while the queue is quiet.
            if not self.result_q._reader.poll(poll_s):
                for proc in list(self._procs):
                    if proc.is_alive():
                        continue
                    self._procs.remove(proc)
                    victim = claimed.pop(proc.pid, None)
                    self._spawn_one()
                    if victim is not None and victim in outstanding:
                        outstanding.discard(victim)
                        crashed_key(victim)
                continue
            msg = self.result_q.get()
            if msg[0] == "claim":
                _, wid, key = msg
                claimed[wid] = key
            else:
                _, wid, key, out = msg
                claimed.pop(wid, None)
                if key in outstanding:
                    outstanding.discard(key)
                    absorb_out(key, out)

    def shutdown(self) -> None:
        for _ in self._procs:
            self.task_q.put(None)
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
        self._procs.clear()


_shared_pools: dict[int, _WarmPool] = {}


def shared_warm_pool(workers: int) -> _WarmPool:
    """Process-wide warm pool of ``workers`` processes (created once).

    Sharing is what amortises spawn + import cost across campaigns: a DSE
    search or figure regeneration issues many small campaigns, and all of
    them reuse the same warm interpreters.
    """
    pool = _shared_pools.get(workers)
    if pool is None or not pool._procs:
        pool = _WarmPool(workers)
        _shared_pools[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Tear down every shared warm pool (tests, interpreter exit)."""
    for pool in _shared_pools.values():
        pool.shutdown()
    _shared_pools.clear()


class WarmPoolBackend(Backend):
    """Persistent work-stealing pool; see module docstring."""

    name = "warm"

    def run_batch(self, campaign, batch, policy, workers, absorb, crashed):
        pool = shared_warm_pool(max(workers, 1))
        meta = {i: (attempt, crashes) for i, attempt, crashes in batch}
        items = {
            i: payload_for_config(
                campaign.tasks[i].config, policy.task_timeout_s
            )
            for i in meta
        }
        pool.run(
            items,
            lambda i, out: absorb(i, *meta[i], out),
            lambda i: crashed(i, *meta[i]),
        )


# --------------------------------------------------------------------- #
# filestore (cooperating launchers over the cell directory)
# --------------------------------------------------------------------- #
class ClaimStore:
    """Atomic per-cell claim files plus the stale-lock sweep.

    A claim is ``claims/<task_id>.claim`` holding ``{pid, host, t}``,
    created with ``O_CREAT | O_EXCL`` so exactly one launcher wins.  The
    sweep releases claims whose owner provably died (same host, PID gone)
    and, as the cross-host fallback, claims whose file mtime is older than
    ``ttl_s`` — a launcher SIGKILLed mid-cell can therefore never wedge a
    resumed campaign.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.host = socket.gethostname()

    def path(self, task_id: str) -> Path:
        return self.root / f"{task_id}.claim"

    def try_claim(self, task_id: str) -> bool:
        """Atomically claim ``task_id``; False if someone else holds it."""
        try:
            fd = os.open(
                self.path(task_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump(
                {"pid": os.getpid(), "host": self.host, "t": time.time()}, fh
            )
        return True

    def release(self, task_id: str) -> None:
        self.path(task_id).unlink(missing_ok=True)

    def is_stale(self, task_id: str, ttl_s: float) -> bool:
        """Heuristic: same-host dead PID, unreadable claim, or old mtime."""
        path = self.path(task_id)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # already released
        try:
            with path.open() as fh:
                data = json.load(fh)
            pid = int(data["pid"])
            host = data["host"]
        except (OSError, ValueError, KeyError, TypeError):
            # Torn write (claimant died inside the claim itself): give the
            # file a grace period in case it is mid-write, then reap it.
            return age > 5.0
        if host == self.host:
            try:
                os.kill(pid, 0)  # signal 0: existence probe only
            except ProcessLookupError:
                return True
            except PermissionError:  # alive, owned by someone else
                return False
            return False
        # Foreign host: PID liveness is unknowable; fall back to the TTL.
        return age > ttl_s

    def sweep_stale(self, task_ids: Sequence[str], ttl_s: float) -> list[str]:
        """Release every stale claim among ``task_ids``; returns the reaped."""
        reaped = []
        for task_id in task_ids:
            if self.is_stale(task_id, ttl_s):
                self.release(task_id)
                reaped.append(task_id)
        return reaped


class FileStoreBackend(Backend):
    """Coordinator-free multi-launcher execution over the cell directory.

    Every launcher runs the *same* campaign with this backend; the claim
    files partition the cells dynamically (a filesystem-level work-stealing
    queue), the content-addressed checkpoints carry the results, and each
    launcher's aggregate — assembled in task order from checkpoints — is
    byte-identical to a single-launcher run.
    """

    name = "filestore"

    def __init__(
        self,
        store: CheckpointStore | None = None,
        claims: ClaimStore | None = None,
        poll_s: float = 0.25,
    ) -> None:
        self.store = store if store is not None else CheckpointStore()
        self.claims = (
            claims
            if claims is not None
            else ClaimStore(self.store.root / "claims")
        )
        self.poll_s = poll_s

    def run_batch(self, campaign, batch, policy, workers, absorb, crashed):
        pending: dict[int, Entry] = {entry[0]: entry for entry in batch}
        ttl = policy.claim_ttl_s
        last_sweep = 0.0
        while pending:
            progressed = False
            for i in list(pending):
                entry = pending[i]
                task = campaign.tasks[i]
                payload = self.store.load(task.task_id)
                if payload is not None:
                    # Finished — by us earlier, or by a peer launcher.
                    absorb(i, entry[1], entry[2],
                           {"ok": True, "result": payload, "duration_s": 0.0})
                    self.claims.release(task.task_id)
                    del pending[i]
                    progressed = True
                    continue
                if self.claims.try_claim(task.task_id):
                    out = execute_payload(
                        payload_for_config(task.config, policy.task_timeout_s)
                    )
                    if out["ok"]:
                        # Checkpoint BEFORE releasing the claim: a peer that
                        # sees no claim must either see the checkpoint or
                        # get to (re)claim the cell.
                        self.store.store(task.task_id, out["result"])
                    absorb(i, entry[1], entry[2], out)
                    self.claims.release(task.task_id)
                    del pending[i]
                    progressed = True
            if not pending:
                break
            if not progressed:
                # Everything left is claimed by peers: wait for their
                # checkpoints, periodically reaping claims whose owners died.
                now = time.monotonic()
                if now - last_sweep >= max(self.poll_s, 1.0):
                    last_sweep = now
                    self.claims.sweep_stale(
                        [campaign.tasks[i].task_id for i in pending], ttl
                    )
                time.sleep(self.poll_s)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
BACKENDS: dict[str, type[Backend]] = {
    SerialBackend.name: SerialBackend,
    PoolBackend.name: PoolBackend,
    WarmPoolBackend.name: WarmPoolBackend,
    FileStoreBackend.name: FileStoreBackend,
}


def make_backend(policy: "ExecPolicy", store: CheckpointStore | None = None) -> Backend:
    """Instantiate the backend ``policy`` names (``auto`` → serial/pool)."""
    name = policy.backend
    if name == "auto":
        name = "serial" if policy.workers <= 1 else "pool"
    if name == "filestore":
        return FileStoreBackend(store=store)
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown backend {policy.backend!r}; "
            f"expected one of {['auto', *BACKENDS]}"
        ) from None
