"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_positive", "require_in_range"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``.

    >>> require(True, "fine")
    >>> require(False, "boom")
    Traceback (most recent call last):
        ...
    ValueError: boom
    """
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_in_range(
    value: float, name: str, lo: float, hi: float, inclusive: bool = True
) -> float:
    """Validate ``lo ≤ value ≤ hi`` (or strict) and return it."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def require_type(value: Any, name: str, *types: type) -> Any:
    """Validate ``isinstance(value, types)`` and return it."""
    if not isinstance(value, types):
        names = ", ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
    return value
