"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any

__all__ = [
    "require",
    "require_positive",
    "require_in_range",
    "canonical_json_value",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition``.

    >>> require(True, "fine")
    >>> require(False, "boom")
    Traceback (most recent call last):
        ...
    ValueError: boom
    """
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_in_range(
    value: float, name: str, lo: float, hi: float, inclusive: bool = True
) -> float:
    """Validate ``lo ≤ value ≤ hi`` (or strict) and return it."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def canonical_json_value(value: Any, name: str = "value") -> Any:
    """Deep-normalise ``value`` to plain JSON-native Python.

    Tuples become lists, numpy scalars become ``int``/``float``/``bool``,
    and anything JSON cannot represent raises :class:`TypeError` naming
    the offending path.  Declarative specs (fault plans, trace specs,
    DSE parameter points) pass through here at construction time so that
    a config equals its own serialise→deserialise round-trip and content
    hashes are computed over what actually persists.

    >>> canonical_json_value({"a": (1, 2)})
    {'a': [1, 2]}
    """
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    # Numpy scalars (np.float64, np.int64, np.bool_) expose .item();
    # duck-type so this module stays dependency-free.
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return canonical_json_value(value.item(), name)
    if isinstance(value, (list, tuple)):
        return [
            canonical_json_value(v, f"{name}[{i}]") for i, v in enumerate(value)
        ]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"{name} has non-string key {k!r}; JSON objects need "
                    "string keys"
                )
            out[k] = canonical_json_value(v, f"{name}.{k}")
        return out
    raise TypeError(
        f"{name} contains non-JSON value {value!r} "
        f"({type(value).__name__})"
    )


def require_type(value: Any, name: str, *types: type) -> Any:
    """Validate ``isinstance(value, types)`` and return it."""
    if not isinstance(value, types):
        names = ", ".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
    return value
