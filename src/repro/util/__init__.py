"""Small shared utilities."""

from repro.util.validation import require, require_in_range, require_positive

__all__ = ["require", "require_in_range", "require_positive"]
