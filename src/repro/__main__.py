"""Single-scenario CLI: ``python -m repro``.

Runs one simulation and prints the headline metrics, optionally with a
topology map and per-node forwarding distribution.  For the full
evaluation harness use ``python -m repro.experiments``.

Examples::

    python -m repro --protocol nlr --grid 5x5 --flows 10 \\
        --pattern gateway --gateways 2 --rate 50 --time 30 --map
    python -m repro --protocol aodv --topology random --nodes 20 --seed 3
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import PROTOCOLS, ScenarioConfig
from repro.metrics.fairness import jain_index, load_concentration
from repro.metrics.summary import format_table
from repro.topology.render import render_topology


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run one wireless-mesh routing scenario.",
    )
    parser.add_argument("--protocol", default="nlr",
                        choices=sorted(PROTOCOLS), help="routing scheme")
    parser.add_argument("--topology", default="grid",
                        choices=["grid", "random", "chain"])
    parser.add_argument("--grid", default="5x5", metavar="NXxNY",
                        help="grid dimensions, e.g. 5x5")
    parser.add_argument("--spacing", type=float, default=230.0,
                        help="grid spacing in metres")
    parser.add_argument("--nodes", type=int, default=25,
                        help="node count for random/chain topologies")
    parser.add_argument("--flows", type=int, default=10)
    parser.add_argument("--pattern", default="gateway",
                        choices=["random", "gateway"])
    parser.add_argument("--gateways", type=int, default=2)
    parser.add_argument("--rate", type=float, default=30.0,
                        help="per-flow packet rate (pps)")
    parser.add_argument("--payload", type=int, default=512)
    parser.add_argument("--time", type=float, default=25.0,
                        help="simulated seconds")
    parser.add_argument("--warmup", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mobility", default="static",
                        choices=["static", "rwp"])
    parser.add_argument("--map", action="store_true",
                        help="print the topology map")
    parser.add_argument("--loads", action="store_true",
                        help="print the per-node forwarding distribution")
    parser.add_argument("--config", metavar="FILE",
                        help="load the full scenario from a JSON file "
                             "(other scenario flags are ignored)")
    parser.add_argument("--save-config", metavar="FILE",
                        help="write the effective scenario JSON before running")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.config:
        from repro.experiments.serialization import load_config

        try:
            config = load_config(args.config)
        except (OSError, ValueError) as exc:
            print(f"cannot load --config {args.config!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        try:
            nx, ny = (int(v) for v in args.grid.lower().split("x"))
        except ValueError:
            print(f"bad --grid {args.grid!r}; expected e.g. 5x5",
                  file=sys.stderr)
            return 2
        config = ScenarioConfig(
            protocol=args.protocol,
            topology=args.topology,
            grid_nx=nx, grid_ny=ny, spacing_m=args.spacing,
            n_nodes=args.nodes,
            n_flows=args.flows,
            flow_pattern=args.pattern,
            n_gateways=args.gateways,
            flow_rate_pps=args.rate,
            payload_bytes=args.payload,
            sim_time_s=args.time,
            warmup_s=args.warmup,
            seed=args.seed,
            mobility=args.mobility,
        )
    if args.save_config:
        from repro.experiments.serialization import save_config

        save_config(config, args.save_config)
        print(f"wrote {args.save_config}")
    result = run_scenario(config)
    print(
        format_table(
            ["metric", "value"],
            [
                ["protocol", config.protocol],
                ["nodes", config.node_count],
                ["flows", f"{config.n_flows} ({config.flow_pattern})"],
                ["offered load",
                 f"{config.flow_rate_pps:g} pps/flow × {config.payload_bytes} B"],
                ["pdr", round(result.pdr, 4)],
                ["mean delay", f"{result.mean_delay_s * 1000:.2f} ms"],
                ["throughput", f"{result.throughput_bps / 1e3:.1f} kb/s"],
                ["mean hops", round(result.mean_hops, 2)],
                ["rreq tx", int(result.rreq_tx)],
                ["norm. routing load", round(result.normalized_routing_load, 3)],
                ["jain fairness", round(result.jain_fairness, 4)],
                ["events", result.events_executed],
                ["wallclock", f"{result.wallclock_s:.1f} s"],
            ],
            title=f"{config.protocol} on {config.node_count} nodes, seed {config.seed}",
        )
    )
    if args.map:
        from repro.experiments.scenario import build_network

        net = build_network(config)
        print()
        print(
            render_topology(
                net.positions,
                gateways=net.gateways,
                sources=[f.src for f in net.flows],
                destinations=[f.dst for f in net.flows],
            )
        )
    if args.loads:
        per_node = result.per_node_forwarded
        print()
        print(
            format_table(
                ["node", "forwarded"],
                [[i, int(v)] for i, v in enumerate(per_node) if v > 0],
                title=(
                    f"forwarding load (top-3 share "
                    f"{load_concentration(per_node, 3):.2f}, "
                    f"jain {jain_index(per_node):.3f})"
                ),
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
