"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``.  This shim
exists so ``pip install -e . --no-use-pep517`` works on environments whose
setuptools lacks the ``wheel`` package required for PEP-517 editable
installs (e.g. offline boxes).
"""

from setuptools import setup

setup()
