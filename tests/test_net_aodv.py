"""Behavioural tests for the AODV engine over the ideal MAC."""

import pytest

from repro.net.aodv import AodvConfig, AodvRouting
from repro.net.gossip import FixedProbabilityGossip

from tests.conftest import chain_adjacency, make_perfect_net, DIAMOND


def aodv_factory(config=None):
    def make(node_id, streams):
        return AodvRouting(
            config or AodvConfig(), streams.stream(f"routing.{node_id}")
        )

    return make


def start_all(sim, stacks, settle_s=0.0):
    for s in stacks:
        s.start()
    if settle_s:
        sim.run(until=settle_s)


class TestRouteDiscovery:
    def test_multihop_delivery(self):
        sim, stacks = make_perfect_net(chain_adjacency(5), aodv_factory())
        start_all(sim, stacks)
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=100, flow_id=0, seq=0)
        sim.run(until=3.0)
        assert len(got) == 1
        assert got[0].hops == 4

    def test_forward_and_reverse_routes_installed(self):
        sim, stacks = make_perfect_net(chain_adjacency(4), aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=3, payload_bytes=10)
        sim.run(until=2.0)
        assert stacks[0].routing.table.lookup(3).next_hop == 1
        # intermediate node has routes both ways
        mid = stacks[1].routing.table
        assert mid.lookup(3) is not None
        assert mid.lookup(0) is not None

    def test_buffered_packets_flush_on_route(self):
        sim, stacks = make_perfect_net(chain_adjacency(4), aodv_factory())
        start_all(sim, stacks)
        got = []
        stacks[3].receive_callback = got.append
        for k in range(5):
            stacks[0].send_data(dst=3, payload_bytes=10, seq=k)
        sim.run(until=3.0)
        assert sorted(p.seq for p in got) == [0, 1, 2, 3, 4]

    def test_second_packet_uses_cached_route(self):
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=2.0)
        rreqs_after_first = stacks[0].routing.control_tx["rreq"]
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=4.0)
        assert stacks[0].routing.control_tx["rreq"] == rreqs_after_first

    def test_loopback_delivery(self):
        sim, stacks = make_perfect_net(chain_adjacency(2), aodv_factory())
        start_all(sim, stacks)
        got = []
        stacks[0].receive_callback = got.append
        stacks[0].send_data(dst=0, payload_bytes=10)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_unreachable_destination_drops_after_retries(self):
        adj = {0: [1], 1: [0], 2: []}  # node 2 isolated
        cfg = AodvConfig(rreq_retries=1, rreq_wait_s=0.2)
        sim, stacks = make_perfect_net(adj, aodv_factory(cfg))
        start_all(sim, stacks)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=5.0)
        r = stacks[0].routing
        assert r.discoveries_failed == 1
        assert r.data_dropped_no_route == 1
        # initial flood + one retry
        assert r.control_tx["rreq"] == 2

    def test_rreq_dedupe_limits_flood(self):
        # In a clique every node hears the RREQ from several neighbours but
        # must rebroadcast at most once.
        n = 5
        adj = {i: [j for j in range(n) if j != i] for i in range(n)}
        sim, stacks = make_perfect_net(adj, aodv_factory())
        start_all(sim, stacks)
        stacks[0].send_data(dst=4, payload_bytes=10)
        sim.run(until=2.0)
        total_rreq = sum(s.routing.control_tx["rreq"] for s in stacks)
        assert total_rreq <= n  # origin + ≤1 per other node

    def test_intermediate_reply(self):
        cfg = AodvConfig(intermediate_reply=True)
        sim, stacks = make_perfect_net(chain_adjacency(5), aodv_factory(cfg))
        start_all(sim, stacks)
        # Prime a fresh route 2→4 by a discovery from node 2.
        stacks[2].send_data(dst=4, payload_bytes=10)
        sim.run(until=2.0)
        rreq_before = sum(s.routing.control_tx["rreq"] for s in stacks)
        fwd3_before = stacks[3].routing.rreq_forwarded
        # Node 0 discovers 4: node 2 can answer from its table.
        stacks[0].send_data(dst=4, payload_bytes=10)
        sim.run(until=4.0)
        # The second flood stopped at node 2: node 3 forwarded nothing new.
        assert stacks[3].routing.rreq_forwarded == fwd3_before
        assert sum(s.routing.control_tx["rreq"] for s in stacks) <= rreq_before + 3


class TestSequenceNumbers:
    def test_fresher_route_replaces_stale(self):
        # Intermediate replies echo the cached seqno, so disable them: the
        # destination itself must answer (and bump its seqno) both times.
        cfg = AodvConfig(intermediate_reply=False)
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=2.0)
        first_seq = stacks[0].routing.table.lookup(2).seqno
        # Second discovery (forced): destination bumps its seqno.
        stacks[0].routing.table.invalidate(2)
        stacks[0].send_data(dst=2, payload_bytes=10)
        sim.run(until=4.0)
        assert stacks[0].routing.table.lookup(2).seqno > first_seq


class TestLinkFailure:
    def test_failure_triggers_rerr_and_rediscovery(self):
        adj = chain_adjacency(4)
        sim, stacks = make_perfect_net(adj, aodv_factory())
        start_all(sim, stacks)
        got = []
        stacks[3].receive_callback = got.append
        stacks[0].send_data(dst=3, payload_bytes=10, seq=0)
        sim.run(until=2.0)
        assert len(got) == 1
        # Sever link 1-2 (PerfectMac consults adjacency live).
        adj[1] = [0]
        adj[2] = [3]
        stacks[0].send_data(dst=3, payload_bytes=10, seq=1)
        sim.run(until=4.0)
        r1 = stacks[1].routing
        assert r1.control_tx["rerr"] >= 0  # failure handled without crash
        # node 1's route to 3 must be gone
        assert r1.table.lookup(3) is None

    def test_gossip_policy_reduces_rreq(self):
        # statistically: p=0.5 gossip forwards fewer RREQs than blind
        n = 12
        adj = chain_adjacency(n)

        def gossip_factory(node_id, streams):
            rng = streams.stream(f"routing.{node_id}")
            return AodvRouting(
                AodvConfig(), rng,
                rreq_policy=FixedProbabilityGossip(0.5, rng, always_first_hops=0),
            )

        sim_b, stacks_b = make_perfect_net(adj, aodv_factory())
        start_all(sim_b, stacks_b)
        stacks_b[0].send_data(dst=n - 1, payload_bytes=10)
        sim_b.run(until=3.0)
        blind_rreq = sum(s.routing.control_tx["rreq"] for s in stacks_b)

        sim_g, stacks_g = make_perfect_net(adj, gossip_factory)
        start_all(sim_g, stacks_g)
        stacks_g[0].send_data(dst=n - 1, payload_bytes=10)
        sim_g.run(until=3.0)
        gossip_rreq = sum(s.routing.control_tx["rreq"] for s in stacks_g)
        assert gossip_rreq < blind_rreq


class TestHello:
    def test_neighbours_learned_from_hellos(self):
        cfg = AodvConfig(hello_interval_s=0.5)
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks, settle_s=2.0)
        assert set(stacks[1].routing.neighbour_table.ids()) == {0, 2}
        assert set(stacks[0].routing.neighbour_table.ids()) == {1}

    def test_hello_disabled(self):
        cfg = AodvConfig(hello_enabled=False)
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks, settle_s=3.0)
        assert stacks[0].routing.control_tx["hello"] == 0

    def test_hello_counted_as_overhead(self):
        cfg = AodvConfig(hello_interval_s=0.5)
        sim, stacks = make_perfect_net(chain_adjacency(2), aodv_factory(cfg))
        start_all(sim, stacks, settle_s=3.0)
        r = stacks[0].routing
        assert r.control_tx["hello"] >= 4
        assert r.control_bytes_tx >= 4 * 20


class TestPeriodicRediscovery:
    def test_origin_refresh_off_causes_rediscovery(self):
        cfg = AodvConfig(
            origin_refresh_on_use=False, active_route_timeout_s=0.5,
            hello_enabled=False,
        )
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks)
        got = []
        stacks[2].receive_callback = got.append
        for k in range(20):
            sim.schedule(0.1 + 0.2 * k, stacks[0].send_data, 2, 10, 0, k)
        sim.run(until=6.0)
        r = stacks[0].routing
        assert r.discoveries_started >= 3  # re-discovers as routes age out
        assert len(got) == 20              # without losing data

    def test_origin_refresh_on_keeps_single_discovery(self):
        cfg = AodvConfig(
            origin_refresh_on_use=True, active_route_timeout_s=0.5,
            hello_enabled=False,
        )
        sim, stacks = make_perfect_net(chain_adjacency(3), aodv_factory(cfg))
        start_all(sim, stacks)
        for k in range(20):
            sim.schedule(0.1 + 0.2 * k, stacks[0].send_data, 2, 10, 0, k)
        sim.run(until=6.0)
        assert stacks[0].routing.discoveries_started == 1
