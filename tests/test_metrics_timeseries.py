"""Coverage for metrics/timeseries.py binning and asciichart determinism.

The re-binning helper backs ``repro-trace timeline``; its edge cases
(empty input, degenerate ranges, right-edge samples, NaN means) decide
whether charts are trustworthy, so they get explicit tests here.
"""

from __future__ import annotations

import math

import pytest

from repro.metrics.asciichart import line_chart
from repro.metrics.timeseries import TimeSeries, bin_series
from repro.sim.engine import Simulator


class TestBinSeries:
    def test_event_counting(self):
        centers, counts = bin_series(
            [0.1, 0.2, 1.5, 2.9], None, bin_s=1.0, t0=0.0, t1=3.0, agg="count"
        )
        assert centers == [0.5, 1.5, 2.5]
        assert counts == [2.0, 1.0, 1.0]

    def test_mean_aggregation(self):
        _, binned = bin_series(
            [0.0, 0.5, 1.5], [2.0, 4.0, 10.0], bin_s=1.0, t0=0.0, t1=2.0
        )
        assert binned == [3.0, 10.0]

    def test_sum_aggregation(self):
        _, binned = bin_series(
            [0.0, 0.5, 1.5], [2.0, 4.0, 10.0],
            bin_s=1.0, t0=0.0, t1=2.0, agg="sum",
        )
        assert binned == [6.0, 10.0]

    def test_empty_input(self):
        assert bin_series([], None) == ([], [])
        assert bin_series([], []) == ([], [])

    def test_empty_bins_nan_for_mean_zero_for_count(self):
        _, mean = bin_series([0.5], [1.0], bin_s=1.0, t0=0.0, t1=3.0)
        assert mean[0] == 1.0 and all(math.isnan(v) for v in mean[1:])
        _, counts = bin_series([0.5], None, bin_s=1.0, t0=0.0, t1=3.0,
                               agg="count")
        assert counts == [1.0, 0.0, 0.0]

    def test_sample_exactly_at_t1_lands_in_last_bin(self):
        # Closed right edge, matching the engine's run(until=...) events.
        _, counts = bin_series([3.0], None, bin_s=1.0, t0=0.0, t1=3.0,
                               agg="count")
        assert counts == [0.0, 0.0, 1.0]

    def test_samples_outside_range_ignored(self):
        _, counts = bin_series(
            [-1.0, 0.5, 9.9], None, bin_s=1.0, t0=0.0, t1=1.0, agg="count"
        )
        assert counts == [1.0]

    def test_degenerate_range_single_bin(self):
        centers, counts = bin_series([2.0, 2.0], None, bin_s=1.0, agg="count")
        assert len(centers) == 1
        assert counts == [2.0]

    def test_unsorted_times(self):
        _, counts = bin_series([2.5, 0.5, 1.5], None, bin_s=1.0,
                               t0=0.0, t1=3.0, agg="count")
        assert counts == [1.0, 1.0, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_series([1.0], None, bin_s=0.0)
        with pytest.raises(ValueError):
            bin_series([1.0], None, agg="median")
        with pytest.raises(ValueError):
            bin_series([1.0, 2.0], [1.0])  # length mismatch


class TestTimeSeriesBinned:
    def test_binned_probe(self):
        sim = Simulator()
        ts = TimeSeries(sim, period_s=0.25)
        ts.add_probe("clock", lambda: sim.now)
        ts.start()
        sim.run(until=2.0)
        ts.stop()
        centers, binned = ts.binned("clock", bin_s=1.0)
        assert len(centers) == 2
        # Mean of samples {0.25..1.0} and {1.25..2.0}.
        assert binned[0] == pytest.approx(0.625)
        assert binned[1] == pytest.approx(1.625)

    def test_duplicate_probe_rejected(self):
        ts = TimeSeries(Simulator())
        ts.add_probe("p", lambda: 0.0)
        with pytest.raises(ValueError):
            ts.add_probe("p", lambda: 1.0)


class TestChartDeterminism:
    def test_same_input_same_output(self):
        x = [float(i) for i in range(30)]
        series = {
            "a": [math.sin(v / 3) for v in x],
            "b": [math.cos(v / 3) for v in x],
        }
        first = line_chart(x, series, width=40, height=10, title="det")
        for _ in range(3):
            assert line_chart(x, series, width=40, height=10, title="det") \
                == first

    def test_binned_trace_chart_renders(self):
        centers, counts = bin_series(
            [0.1 * i for i in range(100)], None, bin_s=1.0, agg="count"
        )
        out = line_chart(centers, {"events": counts}, width=30, height=6)
        assert "o=events" in out

    def test_all_nan_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [math.nan, math.nan]}, width=20, height=6)
