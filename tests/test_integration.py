"""End-to-end integration tests across the full stack (real PHY + MAC).

These validate system-level behaviours the paper's evaluation relies on:
delivery over multi-hop CSMA paths, congestion collapse at saturation,
oracle bounds, overhead ordering between suppression schemes, and exact
replay determinism.
"""

import math
from dataclasses import replace

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig


def cfg(**kw):
    defaults = dict(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=3,
        flow_rate_pps=4.0, sim_time_s=12.0, warmup_s=2.0, seed=17,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


class TestEndToEnd:
    def test_light_load_near_perfect_delivery(self):
        for proto in ("aodv", "gossip", "counter", "nlr", "oracle"):
            r = run_scenario(cfg(protocol=proto))
            assert r.pdr > 0.95, f"{proto} lost packets at light load"

    def test_delay_sane_at_light_load(self):
        r = run_scenario(cfg())
        assert 0.0005 < r.mean_delay_s < 0.2

    def test_saturation_collapses_aodv(self):
        light = run_scenario(cfg(flow_rate_pps=5.0, n_flows=4))
        heavy = run_scenario(
            cfg(flow_rate_pps=150.0, n_flows=8, flow_pattern="gateway")
        )
        assert heavy.pdr < light.pdr
        assert heavy.pdr < 0.9
        assert heavy.totals["mac_queue_drops"] > 0

    def test_oracle_minimises_hops(self):
        oracle = run_scenario(cfg(protocol="oracle", seed=23))
        aodv = run_scenario(cfg(protocol="aodv", seed=23))
        assert not math.isnan(oracle.mean_hops)
        assert oracle.mean_hops <= aodv.mean_hops + 1e-9

    def test_oracle_zero_control_overhead(self):
        r = run_scenario(cfg(protocol="oracle"))
        assert r.control_packets == 0
        assert r.normalized_routing_load == 0.0

    def test_gossip_cuts_rreq_overhead(self):
        # Larger grid so the flood has room to be suppressed.
        base = cfg(grid_nx=5, grid_ny=5, n_flows=6, seed=29, gossip_p=0.55)
        blind = run_scenario(replace(base, protocol="aodv"))
        gossip = run_scenario(replace(base, protocol="gossip"))
        assert gossip.rreq_tx < blind.rreq_tx

    def test_hello_overhead_accounted(self):
        r = run_scenario(cfg())
        # 9 nodes × ~1 HELLO/s × 12 s ≈ 100 hellos
        assert r.totals["hello_tx"] > 50

    def test_exact_replay(self):
        a = run_scenario(cfg(protocol="nlr", seed=31))
        b = run_scenario(cfg(protocol="nlr", seed=31))
        assert a.events_executed == b.events_executed
        assert a.totals == b.totals
        assert a.per_node_forwarded.tolist() == b.per_node_forwarded.tolist()

    def test_perfect_mac_path(self):
        r = run_scenario(cfg(mac="perfect"))
        assert r.pdr > 0.99
        assert r.totals["mac_retries"] == 0

    def test_poisson_and_onoff_traffic(self):
        for traffic in ("poisson", "onoff"):
            r = run_scenario(cfg(traffic=traffic))
            assert r.packets_sent > 0
            assert r.pdr > 0.8

    def test_random_topology_end_to_end(self):
        r = run_scenario(
            cfg(topology="random", n_nodes=14, seed=37, n_flows=3)
        )
        assert r.pdr > 0.8

    def test_shadowing_still_delivers(self):
        r = run_scenario(cfg(shadowing_sigma_db=3.0, seed=41))
        assert r.pdr > 0.5  # lossier links, but the mesh still works

    def test_nlr_ablation_variants_run(self):
        for proto in ("nlr-queue", "nlr-busy", "nlr-own", "nlr-noprob",
                      "nlr-noselect"):
            r = run_scenario(cfg(protocol=proto))
            assert r.pdr > 0.9, proto


class TestLoadBalancingShape:
    """The paper's headline claims, asserted at a discriminating point."""

    POINT = dict(
        grid_nx=5, grid_ny=5, spacing_m=230.0, n_flows=10,
        flow_pattern="gateway", n_gateways=2, flow_rate_pps=50.0,
        sim_time_s=20.0, warmup_s=5.0, seed=50,
    )

    @pytest.fixture(scope="class")
    def results(self):
        return {
            proto: run_scenario(ScenarioConfig(protocol=proto, **self.POINT))
            for proto in ("aodv", "nlr")
        }

    def test_nlr_delivers_at_least_as_much_as_aodv(self, results):
        assert results["nlr"].pdr >= results["aodv"].pdr - 0.02

    def test_nlr_spreads_load_more_fairly(self, results):
        assert results["nlr"].jain_fairness > results["aodv"].jain_fairness

    def test_both_schemes_saturated(self, results):
        # the point is past the knee: some loss must exist somewhere
        assert results["aodv"].pdr < 1.0
