"""Property-based fuzzing of the ASCII chart and topology renderers."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics.asciichart import GLYPHS, line_chart
from repro.topology.render import render_topology

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(
    xs=st.lists(finite_floats, min_size=1, max_size=30),
    n_series=st.integers(min_value=1, max_value=4),
    width=st.integers(min_value=10, max_value=80),
    height=st.integers(min_value=4, max_value=25),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_line_chart_never_crashes_and_bounds_output(
    xs, n_series, width, height, data
):
    series = {
        f"s{i}": data.draw(
            st.lists(finite_floats, min_size=len(xs), max_size=len(xs))
        )
        for i in range(n_series)
    }
    out = line_chart(xs, series, width=width, height=height)
    lines = out.splitlines()
    # plot rows + axis + x labels + legend
    assert len(lines) == height + 3
    # no plot row exceeds margin + frame + width
    body = [ln for ln in lines if "|" in ln]
    assert len(body) == height
    for ln in body:
        after_bar = ln.split("|", 1)[1]
        assert len(after_bar) <= width
    # every series appears in the legend
    for i in range(n_series):
        assert f"s{i}" in lines[-1]
    # only known glyphs are plotted
    plotted = {c for ln in body for c in ln.split("|", 1)[1]} - {" "}
    assert plotted <= set(GLYPHS)


@given(
    n=st.integers(min_value=1, max_value=40),
    width=st.integers(min_value=8, max_value=60),
    height=st.integers(min_value=4, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_render_topology_never_crashes(n, width, height, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 1000, size=(n, 2))
    gateways = list(range(0, n, 7))
    out = render_topology(pos, gateways=gateways, width=width, height=height)
    lines = out.splitlines()
    assert lines[0] == "+" + "-" * width + "+"
    # interior rows framed and width-bounded
    for ln in lines[1:height + 1]:
        assert ln.startswith("|") and ln.endswith("|")
        assert len(ln) == width + 2
    # every node glyph is within the map (count of non-space glyphs ≤ n)
    glyphs = sum(
        1 for ln in lines[1:height + 1] for c in ln[1:-1] if c != " "
    )
    assert 1 <= glyphs <= n
