"""Tests for the Bianchi model and the saturation validation harness."""

import pytest

from repro.analysis.bianchi import (
    saturation_throughput_bps,
    timing_for,
    transmission_probability,
)
from repro.experiments.validation import run_saturation, saturation_comparison
from repro.mac.csma import MacConfig
from repro.phy.radio import PhyConfig


class TestBianchiModel:
    def test_fixed_point_solves(self):
        tau, p = transmission_probability(10, MacConfig())
        assert 0.0 < tau < 1.0
        assert 0.0 < p < 1.0
        # consistency: p = 1-(1-tau)^(n-1)
        assert p == pytest.approx(1.0 - (1.0 - tau) ** 9)

    def test_tau_decreases_with_n(self):
        taus = [transmission_probability(n, MacConfig())[0]
                for n in (2, 5, 10, 20, 50)]
        assert all(a > b for a, b in zip(taus, taus[1:]))

    def test_collision_probability_increases_with_n(self):
        ps = [transmission_probability(n, MacConfig())[1]
              for n in (2, 5, 10, 20, 50)]
        assert all(a < b for a, b in zip(ps, ps[1:]))

    def test_throughput_declines_at_large_n(self):
        assert saturation_throughput_bps(50) < saturation_throughput_bps(5)

    def test_larger_cwmin_helps_at_high_n(self):
        crowded = 50
        small_cw = saturation_throughput_bps(crowded, MacConfig())
        big_cw = saturation_throughput_bps(
            crowded, MacConfig(cw_min=255, cw_max=1023)
        )
        assert big_cw > small_cw

    def test_bigger_payload_more_efficient(self):
        assert saturation_throughput_bps(
            10, payload_bytes=1400
        ) > saturation_throughput_bps(10, payload_bytes=128)

    def test_needs_two_stations(self):
        with pytest.raises(ValueError):
            transmission_probability(1, MacConfig())

    def test_timing_components(self):
        t = timing_for(MacConfig(), PhyConfig(), 512)
        assert t.slot_s == 20e-6
        assert t.success_s > t.slot_s
        assert t.payload_bits == 512 * 8


class TestSaturationHarness:
    def test_simulation_matches_model_small_n(self):
        for n in (2, 5):
            sim_bps = run_saturation(n, duration_s=2.0)
            model_bps = saturation_throughput_bps(n)
            assert sim_bps == pytest.approx(model_bps, rel=0.08), n

    def test_comparison_rows_structure(self):
        rows = saturation_comparison(station_counts=[2, 4], duration_s=1.0)
        assert [int(r["n"]) for r in rows] == [2, 4]
        for r in rows:
            assert r["simulated_bps"] > 0
            assert r["bianchi_bps"] > 0
            assert abs(r["error_pct"]) < 25.0

    def test_needs_two_stations(self):
        with pytest.raises(ValueError):
            run_saturation(1)

    def test_deterministic(self):
        a = run_saturation(3, duration_s=1.0, seed=9)
        b = run_saturation(3, duration_s=1.0, seed=9)
        assert a == b
