"""End-to-end observability tests: traced runs, artifacts, CLI, campaigns.

The acceptance criteria for the obs subsystem live here:

* a 50-node NLR run with ``trace_spec=`` produces a schema-valid JSONL
  artifact plus a metrics snapshot;
* ``repro-trace summary`` reproduces the run's RREQ and PDR counters
  exactly from the artifact alone;
* a ``workers=2`` campaign yields byte-identical per-cell metrics
  snapshots to the same campaign run serially.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import replace

import pytest

from repro.exec import ExecPolicy, run_configs
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig, build_network
from repro.experiments.serialization import result_from_dict, result_to_dict
from repro.obs.schema import validate_trace_line
from repro.obs.spec import TraceSpec, artifact_root
from repro.obs import trace_cli


def small_config(**overrides) -> ScenarioConfig:
    base = dict(
        protocol="nlr", seed=5, grid_nx=3, grid_ny=3,
        sim_time_s=10.0, warmup_s=2.0, n_flows=3, flow_rate_pps=2.0,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def read_jsonl(path):
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt") as fh:
        return [json.loads(line) for line in fh]


# ---------------------------------------------------------------------- #
# TraceSpec parsing
# ---------------------------------------------------------------------- #
class TestTraceSpec:
    def test_unknown_keys_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown trace_spec"):
            small_config(trace_spec={"pth": "x.jsonl"})

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            TraceSpec.from_dict({"ring": 0})
        with pytest.raises(ValueError):
            TraceSpec.from_dict({"categories": []})
        with pytest.raises(ValueError):
            TraceSpec.from_dict({"max_records": -1})
        with pytest.raises(ValueError):
            TraceSpec.from_dict("not a dict")

    def test_placeholders_and_root_anchoring(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        spec = TraceSpec.from_dict({"path": "{protocol}-s{seed}/t.jsonl"})
        path = spec.resolve_path(small_config(seed=9))
        assert path == tmp_path / "nlr-s9" / "t.jsonl"
        assert artifact_root() == tmp_path

    def test_task_id_placeholder(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        spec = TraceSpec.from_dict({"path": "{task_id}/t.jsonl"})
        cfg = small_config()
        p1, p2 = spec.resolve_path(cfg), spec.resolve_path(replace(cfg))
        assert p1 == p2  # content-addressed: same config, same cell path
        assert p1 != spec.resolve_path(replace(cfg, seed=6))


# ---------------------------------------------------------------------- #
# Traced run end-to-end
# ---------------------------------------------------------------------- #
class TestTracedRun:
    @pytest.fixture()
    def artifacts(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        cfg = small_config(
            trace_spec={"path": "run/trace.jsonl.gz", "ring": 64},
            profile=True,
        )
        result = run_scenario(cfg)
        return tmp_path / "run", result

    def test_every_line_schema_valid(self, artifacts):
        root, _ = artifacts
        lines = read_jsonl(root / "trace.jsonl.gz")
        assert lines[0]["kind"] == "header"
        assert lines[-1]["kind"] == "footer"
        for i, obj in enumerate(lines):
            assert validate_trace_line(obj, i + 1) == []

    def test_metrics_snapshot_written_and_matches_result(self, artifacts):
        root, result = artifacts
        on_disk = json.loads((root / "trace.metrics.json").read_text())
        assert on_disk == result.metrics_snapshot
        assert on_disk["repro_flows_pdr"] == pytest.approx(result.pdr)
        # RREQ accounting: originations + forwards == the headline counter.
        originated = (
            on_disk['repro_net_control_tx_total{kind="rreq"}']
        )
        assert originated == result.rreq_tx

    def test_profile_artifacts_written(self, artifacts):
        root, _ = artifacts
        profile = json.loads((root / "trace.profile.json").read_text())
        assert profile["events"] > 0
        assert profile["callbacks"]
        assert "engine profile" in (root / "trace.profile.txt").read_text()

    def test_ring_holds_recent_records(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        net = build_network(small_config(trace_spec={"ring": 32}))
        net.start()
        net.sim.run(until=5.0)
        net.stop()
        assert net.trace_ring is not None
        assert len(net.trace_ring) == 32
        assert net.trace_ring.seen > 32

    def test_category_filter_respected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        cfg = small_config(
            trace_spec={"path": "f/trace.jsonl", "categories": ["app"]}
        )
        run_scenario(cfg)
        cats = {
            ln["cat"] for ln in read_jsonl(tmp_path / "f" / "trace.jsonl")
            if "kind" not in ln
        }
        assert cats == {"app"}

    def test_streaming_run_keeps_memory_bounded(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        cfg = small_config(trace_spec={"path": "b/trace.jsonl"})
        net = build_network(cfg)
        net.start()
        net.sim.run(until=cfg.sim_time_s)
        net.stop()
        # Default for streaming runs: nothing retained in process memory,
        # every record on disk.
        assert len(net.tracer) == 0
        assert net.tracer.recorded > 0
        net.trace_sink.close()
        records = [
            ln for ln in read_jsonl(tmp_path / "b" / "trace.jsonl")
            if "kind" not in ln
        ]
        assert len(records) == net.tracer.recorded

    def test_plain_trace_flag_unchanged(self):
        result = run_scenario(small_config(trace=True))
        assert result.metrics_snapshot["repro_flows_pdr"] >= 0.0

    def test_snapshot_round_trips_serialization(self):
        result = run_scenario(small_config())
        back = result_from_dict(result_to_dict(result))
        assert back.metrics_snapshot == result.metrics_snapshot
        # Legacy payloads (pre-obs) default to an empty snapshot.
        payload = result_to_dict(result)
        del payload["metrics_snapshot"]
        assert result_from_dict(payload).metrics_snapshot == {}


# ---------------------------------------------------------------------- #
# Acceptance: 50-node traced NLR run + CLI reproduction
# ---------------------------------------------------------------------- #
class TestAcceptance50Node:
    @pytest.fixture(scope="class")
    def run50(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs50")
        cfg = ScenarioConfig(
            protocol="nlr", seed=11, topology="grid",
            grid_nx=10, grid_ny=5, spacing_m=200.0,
            sim_time_s=12.0, warmup_s=2.0, n_flows=5, flow_rate_pps=2.0,
            trace_spec={
                "path": str(tmp / "nlr50" / "trace.jsonl.gz"), "ring": 128
            },
        )
        result = run_scenario(cfg)
        return tmp / "nlr50", result

    def test_schema_valid_jsonl_and_metrics(self, run50):
        root, result = run50
        assert result.config.node_count == 50
        lines = read_jsonl(root / "trace.jsonl.gz")
        for i, obj in enumerate(lines):
            assert validate_trace_line(obj, i + 1) == []
        assert lines[-1]["kind"] == "footer"
        snapshot = json.loads((root / "trace.metrics.json").read_text())
        assert snapshot == result.metrics_snapshot

    def test_cli_summary_reproduces_counters(self, run50, capsys):
        root, result = run50
        path = root / "trace.jsonl.gz"
        header, records, _ = trace_cli.load_trace(path)
        # RREQ tx from the artifact alone == the run's headline counter.
        assert trace_cli.rreq_tx_count(records) == result.rreq_tx
        # PDR window logic from the artifact alone == the collector's.
        sent, received, pdr = trace_cli.pdr_from_trace(
            records, trace_cli.window_of(header)
        )
        assert sent == result.packets_sent
        assert received == result.packets_received
        assert pdr == pytest.approx(result.pdr)
        # And the console command agrees.
        assert trace_cli.main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"rreq tx           | {int(result.rreq_tx)}" in out

    def test_cli_validate_strict_passes(self, run50, capsys):
        root, _ = run50
        code = trace_cli.main(
            ["validate", "--strict", str(root / "trace.jsonl.gz")]
        )
        assert code == 0
        assert "ok:" in capsys.readouterr().out


# ---------------------------------------------------------------------- #
# repro-trace CLI behaviours
# ---------------------------------------------------------------------- #
class TestTraceCli:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        cfg = ScenarioConfig(
            protocol="nlr", seed=5, grid_nx=3, grid_ny=3,
            sim_time_s=10.0, warmup_s=2.0, n_flows=3, flow_rate_pps=2.0,
            trace_spec={"path": str(tmp / "trace.jsonl")},
        )
        run_scenario(cfg)
        return tmp / "trace.jsonl"

    def test_timeline(self, trace_path, capsys):
        assert trace_cli.main(
            ["timeline", str(trace_path), "--bin", "1", "--category", "net"]
        ) == 0
        assert "o=net" in capsys.readouterr().out

    def test_nodes(self, trace_path, capsys):
        assert trace_cli.main(["nodes", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "records per node" in out and "app" in out

    def test_storms(self, trace_path, capsys):
        assert trace_cli.main(["storms", str(trace_path)]) == 0
        assert "discovery storms" in capsys.readouterr().out

    def test_csv(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "out.csv"
        assert trace_cli.main(
            ["csv", str(trace_path), "-o", str(out_path)]
        ) == 0
        lines = out_path.read_text().splitlines()
        assert lines[0].startswith("t,cat,node,ev")
        header, records, _ = trace_cli.load_trace(trace_path)
        assert len(lines) == len(records) + 1

    def test_validate_flags_corruption(self, trace_path, tmp_path, capsys):
        corrupted = tmp_path / "bad.jsonl"
        lines = trace_path.read_text().splitlines()
        lines[3] = '{"t": "not-a-number", "cat": 5}'
        corrupted.write_text("\n".join(lines) + "\n")
        assert trace_cli.main(["validate", str(corrupted)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_rejects_foreign_jsonl(self, tmp_path, capsys):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"hello": "world"}\n')
        assert trace_cli.main(["summary", str(foreign)]) == 2
        assert "not a v1 trace artifact" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert trace_cli.main(["summary", str(tmp_path / "nope.jsonl")]) == 2


# ---------------------------------------------------------------------- #
# Campaigns: per-cell artifacts, parallel == serial snapshots
# ---------------------------------------------------------------------- #
class TestCampaignObservability:
    def test_workers2_metrics_byte_identical_to_serial(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        configs = [
            small_config(
                seed=s,
                sim_time_s=6.0, warmup_s=1.0,
                trace_spec={"path": "{task_id}/trace.jsonl"},
            )
            for s in (5, 6, 7)
        ]
        serial = run_configs(
            "obs-serial", configs, ExecPolicy(workers=1, checkpoint=False)
        )
        parallel = run_configs(
            "obs-parallel", configs, ExecPolicy(workers=2, checkpoint=False)
        )
        for a, b in zip(serial, parallel):
            assert json.dumps(a.metrics_snapshot, sort_keys=True) == \
                json.dumps(b.metrics_snapshot, sort_keys=True)

    def test_worker_cells_write_artifacts(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        configs = [
            small_config(
                seed=s, sim_time_s=6.0, warmup_s=1.0,
                trace_spec={"path": "{task_id}/trace.jsonl.gz"},
            )
            for s in (5, 6)
        ]
        results = run_configs(
            "obs-cells", configs, ExecPolicy(workers=2, checkpoint=False)
        )
        cell_dirs = sorted((tmp_path / "obs").iterdir())
        assert len(cell_dirs) == 2  # one artifact tree per cell
        for d in cell_dirs:
            lines = read_jsonl(d / "trace.jsonl.gz")
            assert lines[-1]["kind"] == "footer"
            snapshot = json.loads((d / "trace.metrics.json").read_text())
            assert snapshot in [r.metrics_snapshot for r in results]
