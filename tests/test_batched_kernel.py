"""Batched kernel (DESIGN.md §8): engine block events, vectorised
SINR/capture decisions, array busy monitor, pair propagation, plan
warming — each verified byte-identical to its scalar reference — plus
the end-to-end 3-seed × {static, mobility, faults} equality matrix."""

import json
import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig, build_network
from repro.mac.busy_monitor import ArrayBusyMonitor, BusyMonitor
from repro.phy import sinr_kernel
from repro.phy.channel import Channel
from repro.phy.error_models import (
    Dsss11ErrorModel,
    PskErrorModel,
    SinrThresholdErrorModel,
)
from repro.phy.frame import PhyFrame
from repro.phy.propagation import (
    FreeSpace,
    LogDistance,
    LogNormalShadowing,
    TwoRayGround,
)
from repro.phy.radio import PhyConfig, Radio, rx_end_block, rx_start_block
from repro.sim.engine import Simulator
from repro.sim.errors import SchedulingError
from repro.sim.process import Timer
from repro.sim.rng import RandomStreams


# --------------------------------------------------------------------- #
# Engine: block events and batch handlers
# --------------------------------------------------------------------- #
class TestEngineBlocks:
    def test_schedule_block_requires_batch_mode(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule_block(1.0, 3, lambda: None)

    def test_block_counts_logical_events(self):
        sim = Simulator()
        sim.enable_batching()
        hits = []
        sim.schedule_block(1.0, 5, hits.append, "x")
        sim.run()
        assert hits == ["x"]  # handler fires once for the whole block
        assert sim.events_executed == 5

    def test_block_cancel(self):
        sim = Simulator()
        sim.enable_batching()
        hits = []
        h = sim.schedule_block(1.0, 4, hits.append, "x")
        h.cancel()
        sim.run()
        assert hits == []
        assert sim.events_executed == 0

    def test_blocks_interleave_with_scalar_events_in_time_order(self):
        sim = Simulator()
        sim.enable_batching()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule_block(2.0, 3, order.append, "block")
        sim.schedule(3.0, order.append, "b")
        sim.run()
        assert order == ["a", "block", "b"]
        assert sim.events_executed == 5

    def test_batch_handler_coalesces_same_instant_events(self):
        sim = Simulator()
        batches = []

        def marker():
            pass

        def handler(s, batch):
            batches.append(len(batch))
            for fn, args in batch:
                fn(*args)

        sim.register_batch_handler(marker, handler)
        for _ in range(4):
            sim.schedule(1.0, marker)
        sim.schedule(2.0, marker)
        sim.run()
        assert batches == [4, 1]
        assert sim.events_executed == 5

    def test_batch_handler_preserves_cross_kind_order(self):
        sim = Simulator()
        order = []

        def marker(tag):
            order.append(tag)

        def handler(s, batch):
            for fn, args in batch:
                fn(*args)

        sim.register_batch_handler(marker, handler)
        sim.schedule(1.0, marker, "k1")
        sim.schedule(1.0, order.append, "plain")
        sim.schedule(1.0, marker, "k2")
        sim.run()
        # The plain event splits the batch: coalescing never crosses a
        # different event kind, so execution order matches the scalar heap.
        assert order == ["k1", "plain", "k2"]


# --------------------------------------------------------------------- #
# SINR/capture kernel vs the scalar branch logic
# --------------------------------------------------------------------- #
def _scalar_action(p, state, cur_p, thr, ratio, cap_en):
    if state == sinr_kernel.ST_IDLE:
        return sinr_kernel.ACT_LOCK if p >= thr else sinr_kernel.ACT_NONE
    if state == sinr_kernel.ST_RX:
        if cap_en and p >= thr and p >= cur_p * ratio:
            return sinr_kernel.ACT_CAPTURE
        return sinr_kernel.ACT_RESEED
    return sinr_kernel.ACT_NONE


class TestCaptureActions:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_branches(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        powers = rng.uniform(1e-12, 1e-3, n)
        states = rng.integers(0, 3, n).astype(np.int8)
        cur_powers = rng.uniform(1e-12, 1e-3, n)
        thr = rng.uniform(1e-10, 1e-6)
        ratio = rng.uniform(1.0, 20.0)
        cap_en = bool(rng.integers(0, 2))
        got = sinr_kernel.capture_actions(
            powers, states, cur_powers, thr, ratio, cap_en
        )
        want = [
            _scalar_action(powers[k], states[k], cur_powers[k], thr, ratio,
                           cap_en)
            for k in range(n)
        ]
        assert got.tolist() == want

    def test_threshold_edge_is_inclusive(self):
        acts = sinr_kernel.capture_actions(
            np.array([1e-9]), np.array([sinr_kernel.ST_IDLE], dtype=np.int8),
            np.array([np.inf]), 1e-9, 10.0, True,
        )
        assert acts.tolist() == [sinr_kernel.ACT_LOCK]


class TestFrameSuccessMany:
    @pytest.mark.parametrize("model", [
        SinrThresholdErrorModel(10.0),
        PskErrorModel(1),
        PskErrorModel(2),
        Dsss11ErrorModel(11e6),
    ])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_matches_scalar_product(self, model, seed):
        rng = np.random.default_rng(seed)
        n_frames = int(rng.integers(1, 12))
        seg_counts = rng.integers(0, 5, n_frames)
        sinr, bits, offsets = [], [], []
        for c in seg_counts:
            offsets.append(len(sinr))
            for _ in range(c):
                sinr.append(float(rng.uniform(0.01, 100.0)))
                bits.append(int(rng.integers(1, 5000)))
        got = sinr_kernel.frame_success_many(
            model, np.array(sinr), np.array(bits), np.array(offsets, dtype=int)
        )
        k = 0
        for i, c in enumerate(seg_counts):
            segs = [(sinr[k + j], bits[k + j]) for j in range(c)]
            k += c
            want = model.frame_success_probability(segs)
            if isinstance(model, SinrThresholdErrorModel):
                assert got[i] == want  # exact model: bit-identical
            else:
                assert got[i] == pytest.approx(want, rel=1e-12, abs=1e-300)

    def test_threshold_many_is_bit_exact(self):
        m = SinrThresholdErrorModel(10.0)
        sinr = np.array([9.999999, 10.0, 10.000001, 1e6])
        lin = m._threshold_linear
        probe = np.array([lin * (1 - 1e-15), lin, lin * (1 + 1e-15)])
        got = m.segment_success_probability_many(probe, np.ones(3))
        want = [m.segment_success_probability(float(s), 1) for s in probe]
        assert got.tolist() == want

    def test_frame_ok_many_matches_product_semantics(self):
        m = SinrThresholdErrorModel(10.0)
        lin = m._threshold_linear
        min_sinrs = np.array([lin - 1e-9, lin, lin + 1.0, np.inf])
        # inf = no closed segments = empty product = success
        assert m.frame_ok_many(min_sinrs).tolist() == [False, True, True, True]


# --------------------------------------------------------------------- #
# ArrayBusyMonitor ≡ BusyMonitor
# --------------------------------------------------------------------- #
class TestArrayBusyMonitor:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_ratio_sequence(self, seed):
        rng = np.random.default_rng(seed)
        sim_a, sim_b = Simulator(), Simulator()
        window = float(rng.uniform(0.05, 2.0))
        a = BusyMonitor(sim_a, window)
        b = ArrayBusyMonitor(sim_b, window)
        now = 0.0
        for _ in range(int(rng.integers(10, 300))):
            now += float(rng.uniform(0.0, window / 3))
            sim_a._now = sim_b._now = now
            busy = bool(rng.integers(0, 2))
            a.on_medium_state(busy)
            b.on_medium_state(busy)
            ra, rb = a.busy_ratio(), b.busy_ratio()
            assert ra == rb  # bit-identical, not approx
            assert a.currently_busy == b.currently_busy

    def test_ring_compaction_and_growth(self):
        sim = Simulator()
        m = ArrayBusyMonitor(sim, window_s=1e6)  # nothing ever prunes
        ref = BusyMonitor(Simulator(), window_s=1e6)
        ref.sim._now = 0.0
        now = 0.0
        for k in range(500):  # > initial capacity, forces growth
            now += 0.5
            sim._now = ref.sim._now = now
            m.on_medium_state(True)
            ref.on_medium_state(True)
            now += 0.25
            sim._now = ref.sim._now = now
            m.on_medium_state(False)
            ref.on_medium_state(False)
        assert m.busy_ratio() == ref.busy_ratio()
        assert m._tail - m._head == 500

    def test_prune_resets_ring_when_empty(self):
        sim = Simulator()
        m = ArrayBusyMonitor(sim, window_s=0.1)
        sim._now = 0.0
        m.on_medium_state(True)
        sim._now = 0.01
        m.on_medium_state(False)
        sim._now = 10.0
        m.on_medium_state(True)  # prunes the aged-out interval
        assert (m._head, m._tail) == (0, 0)


# --------------------------------------------------------------------- #
# rx_power_pairs ≡ rx_power_many (bit-exact per model)
# --------------------------------------------------------------------- #
class TestRxPowerPairs:
    @pytest.mark.parametrize("model", [
        FreeSpace(), TwoRayGround(), LogDistance(exponent=3.1),
    ])
    def test_bit_identical_to_many(self, model):
        rng = np.random.default_rng(3)
        tx_pos = rng.uniform(0, 1000, (40, 2))
        rx_pos = rng.uniform(0, 1000, (40, 2))
        power = rng.uniform(0.01, 0.2, 40)
        pairs = model.rx_power_pairs(power, tx_pos, rx_pos)
        for k in range(40):
            many = model.rx_power_many(
                float(power[k]), tx_pos[k], rx_pos[k : k + 1]
            )
            assert pairs[k] == many[0]

    def test_shadowing_applies_pair_offsets(self):
        streams = RandomStreams(9)
        model = LogNormalShadowing(TwoRayGround(), 6.0, streams)
        rng = np.random.default_rng(4)
        tx_pos = rng.uniform(0, 500, (10, 2))
        rx_pos = rng.uniform(0, 500, (10, 2))
        power = np.full(10, 0.1)
        tx_ids = np.arange(10)
        rx_ids = np.arange(10, 20)
        pairs = model.rx_power_pairs(
            power, tx_pos, rx_pos, tx_ids=tx_ids, rx_ids=rx_ids
        )
        for k in range(10):
            model.set_transmitter(int(tx_ids[k]))
            many = model.rx_power_many(
                0.1, tx_pos[k], rx_pos[k : k + 1], rx_ids=rx_ids[k : k + 1]
            )
            assert pairs[k] == many[0]


# --------------------------------------------------------------------- #
# Channel: warm_plans ≡ lazy plans (including invalidation registration)
# --------------------------------------------------------------------- #
def _make_channel(positions, **kw):
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False, **kw)
    rs = RandomStreams(1)
    for i, pos in enumerate(positions):
        r = Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"),
                  error_model=SinrThresholdErrorModel(10.0))
        ch.register(r, tuple(pos))
    return ch


def _plan_sig(ch, tx, power):
    rxs, pws, dls = ch._dispatch_plan(tx, power)
    return [r.node_id for r in rxs], pws, dls


class TestWarmPlans:
    def test_warmed_plans_bit_identical_to_lazy(self):
        rng = np.random.default_rng(11)
        pos = rng.uniform(0, 1500, (60, 2))
        warm = _make_channel(pos)
        lazy = _make_channel(pos)
        power = PhyConfig().tx_power_w
        pairs = [(tx, power) for tx in range(0, 60, 2)]
        warm.warm_plans(pairs)
        for tx, p in pairs:
            assert (tx, p) in warm._dispatch_cache
            assert _plan_sig(warm, tx, p) == _plan_sig(lazy, tx, p)

    def test_warmed_plans_invalidate_on_move(self):
        rng = np.random.default_rng(12)
        pos = rng.uniform(0, 1500, (40, 2))
        warm = _make_channel(pos)
        lazy = _make_channel(pos)
        power = PhyConfig().tx_power_w
        warm.warm_plans([(tx, power) for tx in range(40)])
        for ch in (warm, lazy):
            ch.set_position(7, (10.0, 10.0))
        for tx in range(40):
            assert _plan_sig(warm, tx, power) == _plan_sig(lazy, tx, power)

    def test_single_pair_and_shadowing_fall_back(self):
        rng = np.random.default_rng(13)
        pos = rng.uniform(0, 800, (20, 2))
        power = PhyConfig().tx_power_w
        ch = _make_channel(pos)
        ch.warm_plans([(3, power)])
        assert (3, power) in ch._dispatch_cache

        sim = Simulator()
        streams = RandomStreams(2)
        shadow = Channel(
            sim, LogNormalShadowing(TwoRayGround(), 4.0, streams),
            propagation_delay=False,
        )
        rs = RandomStreams(1)
        for i, p in enumerate(pos):
            shadow.register(
                Radio(sim, i, PhyConfig(), rs.stream(f"p{i}")), tuple(p)
            )
        lazy_sig = None
        shadow.warm_plans([(0, power), (1, power)])
        assert (0, power) in shadow._dispatch_cache


# --------------------------------------------------------------------- #
# Block reception handlers vs scalar on randomized concurrent sets
# --------------------------------------------------------------------- #
def _reception_state(radios):
    out = []
    for r in radios:
        out.append((
            r.state.value, r._impinging_w, sorted(r._arriving),
            r.frames_received, r.frames_corrupted, r.frames_captured,
            r._cca_busy,
            None if r._current is None else (
                r._current.frame.uid, r._current.rx_power_w,
                r._current.min_sinr, list(r._current.segments),
            ),
        ))
    return out


class TestBlockHandlersMatchScalar:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_randomized_concurrent_receptions(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 25))

        def build():
            sim = Simulator()
            rs = RandomStreams(7)
            radios = [
                Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"),
                      error_model=SinrThresholdErrorModel(10.0))
                for i in range(n)
            ]
            return sim, radios

        sim_a, scalar_radios = build()
        sim_b, block_radios = build()
        thr = PhyConfig().rx_threshold_w
        # Overlapping frames with randomized powers spanning weak
        # interference to capture-strength arrivals.
        frames = []
        for f in range(int(rng.integers(1, 5))):
            powers = (thr * 10 ** rng.uniform(-2.0, 3.0, n)).tolist()
            frame = PhyFrame(payload=("pkt", f), bits=2048, rate_bps=11e6,
                             preamble_s=192e-6, tx_power_w=0.1, tx_node=100 + f)
            frames.append((frame, powers))
        # Random interleaving of starts, then matching ends.
        t = 0.0
        for frame, powers in frames:
            t += float(rng.uniform(0.0, 2e-4))
            sim_a._now = sim_b._now = t
            for k, r in enumerate(scalar_radios):
                r.on_rx_start(frame, powers[k])
            rx_start_block(block_radios, frame, powers)
            assert _reception_state(scalar_radios) == \
                _reception_state(block_radios)
        for frame, powers in frames:
            t += float(rng.uniform(1e-4, 1e-3))
            sim_a._now = sim_b._now = t
            for r in scalar_radios:
                r.on_rx_end(frame)
            rx_end_block(block_radios, frame)
            assert _reception_state(scalar_radios) == \
                _reception_state(block_radios)

    def test_unpowered_receiver_falls_back(self):
        sim = Simulator()
        rs = RandomStreams(7)
        radios = [
            Radio(sim, i, PhyConfig(), rs.stream(f"p{i}"))
            for i in range(6)
        ]
        radios[2].set_power_state(False)
        frame = PhyFrame(payload="x", bits=2048, rate_bps=11e6,
                         preamble_s=192e-6, tx_power_w=0.1, tx_node=99)
        powers = [1e-6] * 6
        rx_start_block(radios, frame, powers)
        assert frame.uid in radios[2]._ignore_rx_end
        assert frame.uid not in radios[2]._arriving
        rx_end_block(radios, frame)
        assert frame.uid not in radios[2]._ignore_rx_end
        for i in (0, 1, 3, 4, 5):
            assert frame.uid not in radios[i]._arriving


# --------------------------------------------------------------------- #
# End-to-end byte equality: batched_kernel=True vs scalar
# --------------------------------------------------------------------- #
def _result_blob(config: ScenarioConfig) -> str:
    r = run_scenario(config)
    blob = dict(r.as_dict())
    blob["per_node_forwarded"] = r.per_node_forwarded.tolist()
    blob["events_executed"] = r.events_executed
    blob["totals"] = r.totals
    blob["metrics"] = r.metrics_snapshot
    return json.dumps(blob, sort_keys=True)


class TestBatchedKernelByteEquality:
    """The acceptance matrix: 3 seeds × {static, mobility, faults}."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("variant", ["static", "mobility", "faults"])
    def test_run_scenario_identical(self, seed, variant):
        base = ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
            flow_rate_pps=4.0, sim_time_s=5.0, warmup_s=1.0, seed=seed,
        )
        if variant == "mobility":
            base = replace(base, mobility="rwp", speed_range=(2.0, 8.0),
                           pause_s=0.5)
        elif variant == "faults":
            base = replace(base, fault_spec={
                "kind": "poisson_crashes", "rate_per_s": 0.2, "mttr_s": 2.0,
            })
        scalar = _result_blob(replace(base, batched_kernel=False))
        batched = _result_blob(replace(base, batched_kernel=True))
        assert scalar == batched

    def test_trace_summary_identical(self):
        base = ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, n_flows=2,
            flow_rate_pps=4.0, sim_time_s=4.0, warmup_s=1.0, seed=5,
            trace=True,
        )
        summaries = []
        for flag in (False, True):
            net = build_network(replace(base, batched_kernel=flag))
            for s in net.stacks:
                s.start()
            for src in net.sources:
                src.start()
            net.sim.run(until=base.sim_time_s)
            summaries.append(net.tracer.summary())
        assert summaries[0] == summaries[1]

    def test_zero_delay_regime_identical(self):
        # propagation_delay=False collapses every fan-out into one delay
        # group — the maximal-block regime the perf numbers come from.
        base = ScenarioConfig(
            protocol="nlr", grid_nx=4, grid_ny=4, n_flows=4,
            flow_rate_pps=8.0, sim_time_s=4.0, warmup_s=1.0, seed=2,
            propagation_delay=False,
        )
        assert _result_blob(replace(base, batched_kernel=False)) == \
            _result_blob(replace(base, batched_kernel=True))

    def test_timer_batch_handler_registered(self):
        net = build_network(ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, batched_kernel=True,
        ))
        key = Timer._fire.__func__ if hasattr(Timer._fire, "__func__") \
            else Timer._fire
        assert key in net.sim._batch_handlers
        assert isinstance(net.stacks[0].mac.busy_monitor, ArrayBusyMonitor)

    def test_scalar_config_keeps_scalar_types(self):
        net = build_network(ScenarioConfig(
            protocol="nlr", grid_nx=3, grid_ny=3, batched_kernel=False,
        ))
        assert not net.sim.batching
        assert type(net.stacks[0].mac.busy_monitor) is BusyMonitor
