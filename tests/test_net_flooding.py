"""Tests for the broadcast dissemination service."""

import numpy as np
import pytest

from repro.net.addressing import BROADCAST_ADDR
from repro.net.flooding import BroadcastService
from repro.net.gossip import BlindFlooding, CounterBasedPolicy, FixedProbabilityGossip
from repro.net.packet import Packet, PacketKind

from tests.conftest import chain_adjacency, make_perfect_net


def flood_factory(policy_for):
    def make(node_id, streams):
        rng = streams.stream(f"policy.{node_id}")
        return BroadcastService(policy_for(rng), rng)

    return make


def broadcast(stacks, src, seq, ttl=32):
    packet = Packet(
        kind=PacketKind.DATA, src=src, dst=BROADCAST_ADDR, ttl=ttl,
        payload_bytes=32, seq=seq, created_at=0.0,
    )
    stacks[src].routing.send_data(packet)


class TestBlindFlooding:
    def test_reaches_every_node_in_chain(self):
        sim, stacks = make_perfect_net(
            chain_adjacency(8), flood_factory(lambda rng: BlindFlooding())
        )
        got = {i: [] for i in range(8)}
        for i, s in enumerate(stacks):
            s.receive_callback = lambda p, _i=i: got[_i].append(p.seq)
        broadcast(stacks, src=0, seq=1)
        sim.run(until=2.0)
        assert all(got[i] == [1] for i in range(1, 8))

    def test_each_node_rebroadcasts_once(self):
        n = 6
        adj = {i: [j for j in range(n) if j != i] for i in range(n)}  # clique
        sim, stacks = make_perfect_net(
            adj, flood_factory(lambda rng: BlindFlooding())
        )
        broadcast(stacks, src=0, seq=0)
        sim.run(until=2.0)
        total = sum(s.routing.rebroadcasts for s in stacks)
        assert total == n - 1  # everyone but the origin, exactly once

    def test_ttl_limits_depth(self):
        sim, stacks = make_perfect_net(
            chain_adjacency(8), flood_factory(lambda rng: BlindFlooding())
        )
        got = {i: [] for i in range(8)}
        for i, s in enumerate(stacks):
            s.receive_callback = lambda p, _i=i: got[_i].append(p.seq)
        broadcast(stacks, src=0, seq=5, ttl=3)
        sim.run(until=2.0)
        assert got[3] == [5]
        assert got[4] == []  # beyond the ttl horizon

    def test_duplicate_not_redelivered(self):
        n = 4
        adj = {i: [j for j in range(n) if j != i] for i in range(n)}
        sim, stacks = make_perfect_net(
            adj, flood_factory(lambda rng: BlindFlooding())
        )
        got = []
        stacks[3].receive_callback = lambda p: got.append(p.seq)
        broadcast(stacks, src=0, seq=9)
        sim.run(until=2.0)
        assert got == [9]

    def test_unicast_send_rejected(self):
        sim, stacks = make_perfect_net(
            chain_adjacency(2), flood_factory(lambda rng: BlindFlooding())
        )
        packet = Packet(kind=PacketKind.DATA, src=0, dst=1, ttl=4)
        with pytest.raises(ValueError):
            stacks[0].routing.send_data(packet)


class TestSuppressionPolicies:
    def test_gossip_suppresses_some(self):
        n = 8
        adj = {i: [j for j in range(n) if j != i] for i in range(n)}
        sim, stacks = make_perfect_net(
            adj,
            flood_factory(
                lambda rng: FixedProbabilityGossip(0.3, rng, always_first_hops=0)
            ),
            seed=3,
        )
        for k in range(10):
            broadcast(stacks, src=0, seq=k)
        sim.run(until=5.0)
        suppressed = sum(s.routing.suppressed for s in stacks)
        rebroadcast = sum(s.routing.rebroadcasts for s in stacks)
        assert suppressed > 0
        assert rebroadcast < 10 * (n - 1)

    def test_counter_policy_suppresses_in_dense_clique(self):
        n = 10
        adj = {i: [j for j in range(n) if j != i] for i in range(n)}
        sim, stacks = make_perfect_net(
            adj,
            flood_factory(lambda rng: CounterBasedPolicy(3, rng, rad_max_s=0.05)),
            seed=5,
        )
        got = {i: 0 for i in range(n)}
        for i, s in enumerate(stacks):
            s.receive_callback = lambda p, _i=i: got.__setitem__(_i, got[_i] + 1)
        broadcast(stacks, src=0, seq=0)
        sim.run(until=3.0)
        # everyone still gets the flood (it is a clique) ...
        assert all(got[i] == 1 for i in range(1, n))
        # ... while most rebroadcasts are suppressed by the counter.
        assert sum(s.routing.suppressed for s in stacks) >= n // 2
