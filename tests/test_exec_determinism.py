"""Cross-process determinism: the property the executor stands on.

The engine docstring promises that fixed-seed runs are bit-identical
across processes and platforms; the campaign executor depends on it to
make parallel sweep aggregates byte-identical to serial ones.  These
tests pin the promise down: the same ``(config, seed)`` run in a fresh
subprocess must serialise to exactly the same bytes as an in-process run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.serialization import config_to_dict

_SUBPROCESS_SCRIPT = """\
import json, sys
from repro.experiments.runner import run_scenario
from repro.experiments.serialization import config_from_dict, result_to_dict

config = config_from_dict(json.load(sys.stdin))
print(json.dumps(result_to_dict(run_scenario(config)), sort_keys=True))
"""


def _src_path() -> str:
    return str(Path(__file__).resolve().parents[1] / "src")


def _run_in_subprocess(config: ScenarioConfig) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_path() + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        input=json.dumps(config_to_dict(config)),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def test_subprocess_result_bit_identical():
    config = ScenarioConfig(
        protocol="nlr", grid_nx=3, grid_ny=3, n_flows=3,
        sim_time_s=10.0, warmup_s=1.0, seed=42,
    )
    local = run_scenario(config)
    remote = _run_in_subprocess(config)

    from repro.experiments.serialization import result_to_dict

    local_payload = result_to_dict(local)
    # Wall-clock is telemetry, not simulation output — the only field
    # allowed to differ between the two processes.
    local_payload["wallclock_s"] = remote["wallclock_s"] = 0.0
    local_blob = json.dumps(local_payload, sort_keys=True)
    remote_blob = json.dumps(remote, sort_keys=True)
    assert local_blob == remote_blob

    # Spot-check the scalar metrics really are exact, not just close.
    assert remote["metrics"] == local.as_dict()
    assert remote["events_executed"] == local.events_executed


def test_serialized_result_roundtrips_exactly():
    from repro.experiments.serialization import (
        result_from_dict,
        result_to_dict,
    )

    config = ScenarioConfig(
        protocol="aodv", grid_nx=3, grid_ny=3, n_flows=2,
        sim_time_s=8.0, warmup_s=1.0, seed=5,
    )
    result = run_scenario(config)
    blob = json.dumps(result_to_dict(result), sort_keys=True)
    rebuilt = result_from_dict(json.loads(blob))
    assert rebuilt.as_dict() == result.as_dict()
    assert list(rebuilt.per_node_forwarded) == list(result.per_node_forwarded)
    assert rebuilt.totals == result.totals
    # And re-serialising the reconstruction is byte-stable (what makes a
    # checkpointed cell indistinguishable from a freshly computed one).
    assert json.dumps(result_to_dict(rebuilt), sort_keys=True) == blob
