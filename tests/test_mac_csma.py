"""Unit/behavioural tests for the DCF MAC over the real PHY."""

import pytest

from repro.mac.csma import CsmaMac, MacConfig
from repro.mac.mac_types import BROADCAST_MAC, MacFrame, MacFrameKind
from repro.phy.channel import Channel
from repro.phy.propagation import TwoRayGround
from repro.phy.radio import PhyConfig, Radio
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_macs(positions, mac_config=None, seed=1, phy_config=None):
    sim = Simulator()
    ch = Channel(sim, TwoRayGround(), propagation_delay=False)
    rs = RandomStreams(seed)
    macs = []
    for i, pos in enumerate(positions):
        radio = Radio(sim, i, phy_config or PhyConfig(), rs.stream(f"phy{i}"))
        ch.register(radio, pos)
        macs.append(
            CsmaMac(sim, radio, mac_config or MacConfig(), rs.stream(f"mac{i}"))
        )
    return sim, macs


class TestUnicast:
    def test_delivery_with_ack(self):
        sim, macs = make_macs([(0, 0), (150, 0)])
        got, results = [], []
        macs[1].rx_upper_callback = lambda p, s, i: got.append((p, s))
        macs[0].send_done_callback = lambda p, d, ok: results.append(ok)
        macs[0].send("pkt", 1, 512)
        sim.run(until=0.5)
        assert got == [("pkt", 0)]
        assert results == [True]
        assert macs[1].ack_tx == 1

    def test_out_of_range_fails_after_retries(self):
        cfg = MacConfig(retry_limit=2)
        sim, macs = make_macs([(0, 0), (2000, 0)], mac_config=cfg)
        results = []
        macs[0].send_done_callback = lambda p, d, ok: results.append(ok)
        macs[0].send("pkt", 1, 512)
        sim.run(until=2.0)
        assert results == [False]
        assert macs[0].drops_retry == 1
        assert macs[0].retries_total == 3  # initial + 2 retries, all timed out

    def test_queue_serves_in_order(self):
        sim, macs = make_macs([(0, 0), (150, 0)])
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append(p)
        for k in range(5):
            macs[0].send(k, 1, 100)
        sim.run(until=1.0)
        assert got == [0, 1, 2, 3, 4]

    def test_queue_overflow_drops(self):
        cfg = MacConfig(queue_capacity=2)
        sim, macs = make_macs([(0, 0), (150, 0)], mac_config=cfg)
        accepted = [macs[0].send(k, 1, 100) for k in range(5)]
        # one frame is immediately pulled into service, two are queued
        assert accepted.count(False) >= 1
        assert macs[0].queue.dropped >= 1

    def test_duplicate_suppressed_but_acked(self):
        # Force an ACK loss by parking the receiver out of ACK range?
        # Simpler: deliver the same MAC frame twice via the dedupe path.
        sim, macs = make_macs([(0, 0), (150, 0)])
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append(p)
        frame = MacFrame(
            kind=MacFrameKind.DATA, src=0, dst=1, seq=7, payload="x",
            payload_bytes=64,
        )
        from repro.phy.frame import RxInfo

        info = RxInfo(1e-9, 100.0, 0.0, 0.0, 0)
        macs[1]._on_phy_rx(frame, info)
        macs[1]._on_phy_rx(frame, info)
        assert got == ["x"]
        assert macs[1].duplicates_rx == 1

    def test_cross_layer_signals_exposed(self):
        sim, macs = make_macs([(0, 0), (150, 0)])
        assert macs[0].queue_occupancy == 0.0
        assert 0.0 <= macs[0].channel_busy_ratio() <= 1.0


class TestBroadcast:
    def test_broadcast_reaches_all_in_range(self):
        sim, macs = make_macs([(0, 0), (150, 0), (0, 150), (2000, 2000)])
        got = {i: [] for i in range(4)}
        for i, m in enumerate(macs):
            m.rx_upper_callback = (
                lambda p, s, info, _i=i: got[_i].append(p)
            )
        macs[0].send("bc", BROADCAST_MAC, 64)
        sim.run(until=0.5)
        assert got[1] == ["bc"] and got[2] == ["bc"]
        assert got[3] == []  # out of range

    def test_broadcast_no_ack_no_retry(self):
        sim, macs = make_macs([(0, 0), (150, 0)])
        results = []
        macs[0].send_done_callback = lambda p, d, ok: results.append(ok)
        macs[0].send("bc", BROADCAST_MAC, 64)
        sim.run(until=0.5)
        assert results == [True]
        assert macs[0].retries_total == 0
        assert macs[1].ack_tx == 0


class TestContention:
    def test_two_senders_share_medium(self):
        # Both flood 20 frames at one receiver; with working
        # carrier-sense + backoff essentially everything is delivered.
        sim, macs = make_macs([(0, 0), (100, 0), (50, 90)], seed=3)
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append((s, p))
        for k in range(20):
            macs[0].send(f"a{k}", 1, 512)
            macs[2].send(f"c{k}", 1, 512)
        sim.run(until=5.0)
        froms = {s for s, _ in got}
        assert froms == {0, 2}
        assert len(got) >= 38  # ≥95 % delivery

    def test_hidden_terminal_losses_recovered_by_retries(self):
        # With the default thresholds the 550 m carrier-sense range covers
        # every pair of nodes within mutual unicast reach — by design.  To
        # manufacture hidden terminals, shrink carrier sense to the rx
        # range: senders 400 m apart (mutually deaf), receiver centred.
        hidden_phy = PhyConfig(cs_threshold_w=PhyConfig().rx_threshold_w)
        sim, macs = make_macs(
            [(0, 0), (200, 0), (400, 0)], seed=4, phy_config=hidden_phy
        )
        got = []
        macs[1].rx_upper_callback = lambda p, s, i: got.append(p)
        ok = []
        macs[0].send_done_callback = lambda p, d, s: ok.append(s)
        macs[2].send_done_callback = lambda p, d, s: ok.append(s)
        for k in range(10):
            macs[0].send(f"a{k}", 1, 512)
            macs[2].send(f"c{k}", 1, 512)
        sim.run(until=5.0)
        assert macs[0].retries_total + macs[2].retries_total > 0
        assert len(got) >= 16  # most frames eventually get through

    def test_backoff_consumes_rng(self):
        sim, macs = make_macs([(0, 0), (150, 0)])
        macs[0].send("p", 1, 128)
        sim.run(until=0.2)
        # deterministic engine: rerunning the same seed reproduces exactly
        sim2, macs2 = make_macs([(0, 0), (150, 0)])
        macs2[0].send("p", 1, 128)
        sim2.run(until=0.2)
        assert sim.events_executed == sim2.events_executed


class TestMacConfigValidation:
    def test_sifs_must_be_less_than_difs(self):
        with pytest.raises(ValueError):
            MacConfig(sifs_s=60e-6, difs_s=50e-6)

    def test_cw_ordering(self):
        with pytest.raises(ValueError):
            MacConfig(cw_min=100, cw_max=50)

    def test_negative_retry_limit(self):
        with pytest.raises(ValueError):
            MacConfig(retry_limit=-1)

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            MacFrame(kind=MacFrameKind.ACK, src=0, dst=BROADCAST_MAC, seq=0)
        with pytest.raises(ValueError):
            MacFrame(kind=MacFrameKind.DATA, src=0, dst=1, seq=0,
                     payload_bytes=-1)

    def test_frame_sizes(self):
        data = MacFrame(kind=MacFrameKind.DATA, src=0, dst=1, seq=0,
                        payload_bytes=512)
        ack = MacFrame(kind=MacFrameKind.ACK, src=1, dst=0, seq=0)
        assert data.size_bytes == 512 + 34
        assert ack.size_bytes == 14
        assert data.size_bits == data.size_bytes * 8
