"""Execute the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.metrics.fairness
import repro.metrics.summary
import repro.metrics.timeseries
import repro.net.addressing
import repro.sim.engine
import repro.sim.process
import repro.sim.rng
import repro.sim.units
import repro.topology.gateway
import repro.topology.placement
import repro.util.validation

MODULES = [
    repro.metrics.fairness,
    repro.metrics.summary,
    repro.metrics.timeseries,
    repro.net.addressing,
    repro.sim.engine,
    repro.sim.process,
    repro.sim.rng,
    repro.sim.units,
    repro.topology.gateway,
    repro.topology.placement,
    repro.util.validation,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} failures"
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"
