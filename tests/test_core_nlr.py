"""Behavioural tests for NLR — the paper's contribution — over the ideal MAC."""

import pytest

from repro.core.nlr import NlrConfig, NlrRouting
from repro.net.aodv import AodvConfig

from tests.conftest import DIAMOND, chain_adjacency, make_perfect_net


class FakeLoadSource:
    """Stand-in MAC signal source pinning a node's load."""

    def __init__(self, queue=0.0, busy=0.0):
        self.queue = queue
        self.busy = busy

    @property
    def queue_occupancy(self):
        return self.queue

    def channel_busy_ratio(self):
        return self.busy


def nlr_factory(config=None):
    def make(node_id, streams):
        return NlrRouting(
            config or NlrConfig(), streams.stream(f"routing.{node_id}")
        )

    return make


def diamond_net(hop_weight, loaded_node=1, load=0.9, seed=9):
    """Diamond with a pinned queue load on ``loaded_node``."""
    cfg = NlrConfig(
        aodv=AodvConfig(dest_reply_wait_s=0.05, intermediate_reply=False),
        hop_weight=hop_weight,
        queue_weight=1.0,  # load := queue EWMA only (deterministic here)
    )
    sim, stacks = make_perfect_net(DIAMOND, nlr_factory(cfg), seed=seed)
    stacks[loaded_node].routing.bus.source = FakeLoadSource(queue=load)
    for s in stacks:
        s.start()
    sim.run(until=3.0)  # hellos propagate advertised loads
    return sim, stacks


class TestLoadAwareSelection:
    def test_low_hop_weight_detours_around_load(self):
        sim, stacks = diamond_net(hop_weight=0.25)
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=100, seq=0)
        sim.run(until=6.0)
        assert len(got) == 1
        assert got[0].hops == 3  # long, unloaded path 0-2-3-4

    def test_high_hop_weight_keeps_short_path(self):
        sim, stacks = diamond_net(hop_weight=2.0)
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=100, seq=0)
        sim.run(until=6.0)
        assert len(got) == 1
        assert got[0].hops == 2  # short path despite the loaded relay

    def test_unloaded_network_takes_shortest_path(self):
        sim, stacks = diamond_net(hop_weight=0.25, load=0.0)
        got = []
        stacks[4].receive_callback = got.append
        stacks[0].send_data(dst=4, payload_bytes=100, seq=0)
        sim.run(until=6.0)
        assert got[0].hops == 2

    def test_rrep_echoes_winning_path_load(self):
        sim, stacks = diamond_net(hop_weight=0.25)
        stacks[0].send_data(dst=4, payload_bytes=100, seq=0)
        sim.run(until=6.0)
        route = stacks[0].routing.table.lookup(4)
        assert route is not None
        # detour cost: ≈0 load + 0.25·3 hops (plus tiny residual loads)
        assert route.cost == pytest.approx(0.75, abs=0.3)


class TestCrossLayerPlumbing:
    def test_hello_advertises_estimator_load(self):
        cfg = NlrConfig(queue_weight=1.0)
        sim, stacks = make_perfect_net(chain_adjacency(3), nlr_factory(cfg))
        stacks[1].routing.bus.source = FakeLoadSource(queue=0.8)
        for s in stacks:
            s.start()
        sim.run(until=4.0)
        # neighbours 0 and 2 have learned node 1's load from HELLOs
        ewma_target = stacks[1].routing.estimator.load()
        for observer in (0, 2):
            n = stacks[observer].routing.neighbour_table.get(1)
            assert n is not None
            assert n.load == pytest.approx(ewma_target, abs=0.15)
            assert n.load > 0.5

    def test_neighbourhood_load_blends_neighbours(self):
        cfg = NlrConfig(queue_weight=1.0, own_weight=0.5)
        sim, stacks = make_perfect_net(chain_adjacency(3), nlr_factory(cfg))
        stacks[1].routing.bus.source = FakeLoadSource(queue=0.8)
        for s in stacks:
            s.start()
        sim.run(until=4.0)
        # Node 0 is idle but sits next to loaded node 1: NL0 = α·0 + (1-α)·L1.
        nl0 = stacks[0].routing.neighbourhood.value()
        assert nl0 == pytest.approx(0.4, abs=0.1)
        # Node 1 blends its own load with two idle neighbours: α·L1 + 0.
        nl1 = stacks[1].routing.neighbourhood.value()
        assert nl1 == pytest.approx(0.4, abs=0.1)
        # Node 2's view mirrors node 0's (symmetry).
        nl2 = stacks[2].routing.neighbourhood.value()
        assert nl2 == pytest.approx(nl0, abs=0.02)

    def test_bus_samples_periodically(self):
        cfg = NlrConfig(sample_interval_s=0.25)
        sim, stacks = make_perfect_net(chain_adjacency(2), nlr_factory(cfg))
        for s in stacks:
            s.start()
        sim.run(until=2.0)
        assert stacks[0].routing.bus.samples_taken == 8

    def test_stop_halts_bus(self):
        sim, stacks = make_perfect_net(chain_adjacency(2), nlr_factory())
        for s in stacks:
            s.start()
        sim.run(until=1.0)
        for s in stacks:
            s.stop()
        taken = stacks[0].routing.bus.samples_taken
        sim.run(until=5.0)
        assert stacks[0].routing.bus.samples_taken == taken


class TestNlrConfig:
    def test_defaults_enable_contribution_mechanisms(self):
        cfg = NlrConfig()
        assert cfg.aodv.dest_reply_wait_s > 0
        assert not cfg.aodv.intermediate_reply
        assert not cfg.aodv.origin_refresh_on_use
        assert cfg.adaptive_forwarding

    def test_load_extension_flag(self):
        import numpy as np

        r = NlrRouting(NlrConfig(), np.random.default_rng(0))
        assert r.uses_load_extension
        assert r.name == "nlr"

    def test_validation(self):
        with pytest.raises(ValueError):
            NlrConfig(hop_weight=-1.0)
        with pytest.raises(ValueError):
            NlrConfig(sample_interval_s=0.0)

    def test_adaptive_forwarding_off_uses_blind(self):
        import numpy as np

        r = NlrRouting(
            NlrConfig(adaptive_forwarding=False), np.random.default_rng(0)
        )
        assert r.rreq_policy.name == "blind"


class TestPeriodicReselection:
    def test_route_re_selected_when_load_moves(self):
        # Start with node 1 loaded → detour via 2-3; then load moves to
        # node 3 → after the route ages out, traffic returns to 0-1-4.
        cfg = NlrConfig(
            aodv=AodvConfig(
                dest_reply_wait_s=0.05, intermediate_reply=False,
                origin_refresh_on_use=False, active_route_timeout_s=1.0,
            ),
            hop_weight=0.25, queue_weight=1.0,
        )
        sim, stacks = make_perfect_net(DIAMOND, nlr_factory(cfg), seed=11)
        src1 = FakeLoadSource(queue=0.9)
        src3 = FakeLoadSource(queue=0.0)
        stacks[1].routing.bus.source = src1
        stacks[3].routing.bus.source = src3
        for s in stacks:
            s.start()
        sim.run(until=3.0)
        got = []
        stacks[4].receive_callback = got.append
        for k in range(30):
            sim.schedule(3.0 + 0.2 * k, stacks[0].send_data, 4, 100, 0, k)
        # Swap the hotspot at t = 5 s.
        def swap():
            src1.queue = 0.0
            src3.queue = 0.9
        sim.schedule(5.0, swap)
        sim.run(until=12.0)
        hops_by_seq = {p.seq: p.hops for p in got}
        early = [hops_by_seq[k] for k in range(3) if k in hops_by_seq]
        late = [hops_by_seq[k] for k in range(25, 30) if k in hops_by_seq]
        assert early and all(h == 3 for h in early)   # detour first
        assert late and all(h == 2 for h in late)     # short path after swap
